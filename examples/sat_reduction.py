"""The NP-hardness reduction as a working program (Lemma 17).

The paper proves Why-Provenance[LDat] NP-hard by turning a 3CNF formula
``phi`` into a fixed linear query plus a database ``D_phi`` so that phi is
satisfiable iff the *whole* database is a member of the why-provenance.
This example runs the reduction both ways on a concrete formula and
cross-checks against a brute-force SAT oracle — the complexity theory made
executable.

Run with:  python examples/sat_reduction.py
"""

from repro.core.decision import decide_why
from repro.reductions.three_sat import (
    brute_force_3sat,
    three_sat_instance,
)


def show(clauses, num_vars, label):
    def lit(l):
        return f"x{abs(l)}" if l > 0 else f"!x{abs(l)}"

    text = " & ".join("(" + " | ".join(lit(l) for l in c) + ")" for c in clauses)
    print(f"{label}: {text}")

    query, database, tup = three_sat_instance(clauses, num_vars)
    print(f"  reduction database: {len(database)} facts over "
          f"{sorted(database.predicates())}")

    member = decide_why(query, database, tup, database.facts())
    assignment = brute_force_3sat(clauses, num_vars)
    print(f"  D_phi in why((v1), D_phi, Q)?   {member}")
    print(f"  brute-force satisfiable?        {assignment is not None}")
    assert member == (assignment is not None)
    if assignment:
        values = ", ".join(f"x{v}={int(b)}" for v, b in sorted(assignment.items()))
        print(f"  a satisfying assignment: {values}")
    print()


def main() -> None:
    # Satisfiable: (x1 | x2 | x3) & (!x1 | x2 | !x3)
    show([(1, 2, 3), (-1, 2, -3)], 3, "phi_1")

    # Unsatisfiable: all eight sign patterns over three variables.
    clauses = [
        (1, 2, 3), (1, 2, -3), (1, -2, 3), (1, -2, -3),
        (-1, 2, 3), (-1, 2, -3), (-1, -2, 3), (-1, -2, -3),
    ]
    show(clauses, 3, "phi_2")

    print("membership of the full database tracks satisfiability exactly, "
          "as Lemma 17 promises.")


if __name__ == "__main__":
    main()
