"""Explaining a points-to analysis result (the Andersen scenario).

A static analyser reports that pointer ``user_input`` may alias the buffer
``secret``. Which program statements are responsible? Why-provenance over
the 4-rule Andersen Datalog program answers exactly that: each member of
the why-provenance is a minimal-by-construction set of statements that
together establish the points-to fact.

Run with:  python examples/program_analysis.py
"""

from repro import Atom, Database, why_provenance_unambiguous
from repro.scenarios.andersen import andersen_query

# A tiny C-like program, one fact per statement:
#
#   p  = &secret;          addressof(p, secret)
#   q  = p;                assign(q, p)
#   r  = q;                assign(r, q)
#   user_input = r;        assign(user_input, r)
#   user_input = &public;  addressof(user_input, public)
#   s  = &secret;          addressof(s, secret)
#   user_input = s;        assign(user_input, s)
STATEMENTS = [
    Atom("addressof", ("p", "secret")),
    Atom("assign", ("q", "p")),
    Atom("assign", ("r", "q")),
    Atom("assign", ("user_input", "r")),
    Atom("addressof", ("user_input", "public")),
    Atom("addressof", ("s", "secret")),
    Atom("assign", ("user_input", "s")),
]

STATEMENT_TEXT = {
    Atom("addressof", ("p", "secret")): "p = &secret",
    Atom("assign", ("q", "p")): "q = p",
    Atom("assign", ("r", "q")): "r = q",
    Atom("assign", ("user_input", "r")): "user_input = r",
    Atom("addressof", ("user_input", "public")): "user_input = &public",
    Atom("addressof", ("s", "secret")): "s = &secret",
    Atom("assign", ("user_input", "s")): "user_input = s",
}


def main() -> None:
    query = andersen_query()
    database = Database(STATEMENTS)

    finding = ("user_input", "secret")
    print(f"analysis finding: pt{finding} — user_input may point to secret\n")

    family = why_provenance_unambiguous(query, database, finding)
    print(f"{len(family)} independent explanations:\n")
    for i, member in enumerate(sorted(family, key=lambda m: (len(m), sorted(map(str, m)))), 1):
        print(f"explanation {i} ({len(member)} statements):")
        for fact in sorted(member, key=str):
            print(f"    {STATEMENT_TEXT[fact]:<24}  [{fact}]")
        print()

    # The irrelevant statement never appears in any explanation.
    noise = Atom("addressof", ("user_input", "public"))
    assert all(noise not in member for member in family)
    print(f"note: '{STATEMENT_TEXT[noise]}' is in no explanation — "
          "removing it cannot break the finding.")


if __name__ == "__main__":
    main()
