"""Smallest explanations: cardinality-minimal members of the why-provenance.

A security analyst asks "which network rules let this host reach the
database server — and what is the *tightest* set of rules to audit?"
The full why-provenance may be huge; this example extracts just the
cardinality-minimum member and the subset-minimal members straight from
the SAT encoding (Section 5 plus cardinality constraints), then contrasts
them with a Souffle-style single witness and the full enumeration.

Run with:  python examples/smallest_explanation.py
"""

from repro import (
    Database,
    DatalogQuery,
    WhyProvenanceEnumerator,
    minimal_members,
    parse_database,
    parse_program,
    single_witness_why,
    smallest_member,
)


def main() -> None:
    # Firewall reachability: a flow exists along permitted hops; some
    # hosts are grouped, and group rules open hops for all members.
    program = parse_program(
        """
        hop(X, Y) :- rule(X, Y).
        hop(X, Y) :- group_rule(G, Y), member(X, G).
        flow(X, Y) :- hop(X, Y).
        flow(X, Y) :- flow(X, Z), hop(Z, Y).
        """
    )
    query = DatalogQuery(program, "flow")
    database = Database(parse_database(
        """
        rule(web, app). rule(app, db).
        rule(web, cache). rule(cache, app).
        group_rule(frontends, db). member(web, frontends).
        """
    ))
    tup = ("web", "db")
    print(f"why is flow{tup} permitted?\n")

    # --- The tightest single explanation ---------------------------------
    smallest = smallest_member(query, database, tup)
    print("cardinality-minimum explanation "
          f"({len(smallest)} facts):")
    for fact in sorted(map(str, smallest)):
        print(f"  {fact}")

    # --- All irredundant explanations ------------------------------------
    print("\nall subset-minimal explanations:")
    for member in minimal_members(query, database, tup):
        print(f"  {{{', '.join(sorted(map(str, member)))}}}")

    # --- What a single-witness engine would report ------------------------
    witness = single_witness_why(query, database, tup)
    print("\nSouffle-style single witness (one member, minimal depth):")
    print(f"  {{{', '.join(sorted(map(str, witness)))}}}")

    # --- The full family, for contrast ------------------------------------
    members = [r.support for r in WhyProvenanceEnumerator(query, database, tup).enumerate()]
    print(f"\nfull whyUN family: {len(members)} members "
          f"(sizes {sorted(len(m) for m in members)})")
    smallest_size = min(len(m) for m in members)
    assert len(smallest) == smallest_size
    print(f"sanity: smallest_member matches the family minimum ({smallest_size})")


if __name__ == "__main__":
    main()
