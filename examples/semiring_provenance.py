"""Semiring provenance: why-provenance as one row of a bigger picture.

The paper studies why-provenance; the semiring framework generalizes it.
This example annotates a small supply-chain database and computes, for
the same answer, its provenance in six semirings — from plain query
answering to the full why-provenance of Definition 2 — all from the same
downward closure.

Run with:  python examples/semiring_provenance.py
"""

from repro import Database, DatalogQuery, parse_database, parse_program
from repro.semiring import (
    INFINITY,
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    MinWhySemiring,
    TropicalSemiring,
    WhySemiring,
    count_proof_trees,
    semiring_provenance,
)


def main() -> None:
    # Which warehouses can ship to which cities, through a relay network.
    program = parse_program(
        """
        reach(X, Y) :- link(X, Y).
        reach(X, Y) :- reach(X, Z), link(Z, Y).
        ships(W, C) :- warehouse(W), city(C), reach(W, C).
        """
    )
    query = DatalogQuery(program, "ships")
    database = Database(parse_database(
        """
        warehouse(antwerp). city(milan).
        link(antwerp, basel). link(basel, milan).
        link(antwerp, lyon). link(lyon, milan).
        link(basel, lyon).
        """
    ))
    tup = ("antwerp", "milan")
    print(f"query: ships{tup} — {query.classify()} Datalog\n")

    # --- Boolean: is it an answer at all? --------------------------------
    holds = semiring_provenance(query, database, tup, BooleanSemiring())
    print(f"boolean   : {holds}  (plain query answering)")

    # --- Counting: how many proof trees? ---------------------------------
    count = semiring_provenance(query, database, tup, CountingSemiring())
    rendered = "infinite" if count == INFINITY else count
    print(f"counting  : {rendered}  (number of proof trees)")
    for height in (3, 5, 7):
        bounded = count_proof_trees(query, database, tup, height)
        print(f"            height <= {height}: {bounded} trees")

    # --- Tropical: the cheapest derivation -------------------------------
    cheapest = semiring_provenance(query, database, tup, TropicalSemiring())
    print(f"tropical  : {cheapest}  (leaves of the cheapest proof tree)")

    # --- Lineage: every fact used by some derivation ---------------------
    lineage = semiring_provenance(query, database, tup, LineageSemiring())
    print(f"lineage   : {sorted(map(str, lineage))}")

    # --- Why-provenance: the paper's Definition 2 ------------------------
    why = semiring_provenance(query, database, tup, WhySemiring())
    print(f"why       : {len(why)} members")
    for member in sorted(why, key=lambda m: (len(m), sorted(map(str, m)))):
        print(f"            {{{', '.join(sorted(map(str, member)))}}}")

    # --- Min-why: just the subset-minimal explanations -------------------
    min_why = semiring_provenance(query, database, tup, MinWhySemiring())
    print(f"min-why   : {len(min_why)} minimal members")
    for member in sorted(min_why, key=lambda m: sorted(map(str, m))):
        print(f"            {{{', '.join(sorted(map(str, member)))}}}")


if __name__ == "__main__":
    main()
