"""Quickstart: why-provenance for the paper's running example.

Reproduces Examples 1-4 of the paper on the path-accessibility program,
driven through the library's front-door API: a
:class:`~repro.core.session.ProvenanceSession`. The session evaluates the
program exactly once (with the engine instrumented to record every ground
rule instance), then serves every downstream request — enumeration,
membership decisions, minimal explanations, proof trees — from shared
caches: one graph of rule instances, per-fact downward closures, per-fact
CNF encodings, warm incremental SAT solvers.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    DatalogQuery,
    ProvenanceSession,
    parse_database,
    parse_program,
)


def main() -> None:
    # The path-accessibility program of Example 1 (Cook 1974): s marks
    # source nodes, t(y, z, x) says "if y and z are accessible, so is x".
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    print(f"query class: {query.classify()} (non-linear, recursive)\n")

    database = Database(parse_database(
        "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
    ))

    # One session per (query, database): everything below shares a single
    # evaluation and a single graph of rule instances.
    session = ProvenanceSession(query, database)
    print(f"answers: {session.answers()}\n")

    # --- Enumerate whyUN((d), D, Q) incrementally via SAT ----------------
    print("why-provenance of a(d) relative to unambiguous proof trees:")
    enumerator = session.enumerator(("d",))
    for record in enumerator.enumerate():
        facts = ", ".join(sorted(map(str, record.support)))
        print(f"  member #{record.index}: {{{facts}}}  "
              f"(delay {record.delay_seconds * 1000:.2f} ms)")
    print(f"  closure served in {enumerator.closure_seconds * 1000:.1f} ms, "
          f"formula in {enumerator.formula_seconds * 1000:.1f} ms\n")

    # --- Decide membership for candidate explanations --------------------
    minimal = frozenset(parse_database("s(a). t(a, a, d)."))
    full = database.facts()
    for name, candidate in (("minimal witness", minimal), ("whole database", full)):
        for tree_class in ("arbitrary", "unambiguous"):
            verdict = session.decide(("d",), candidate, tree_class)
            print(f"  {name} in why_{tree_class}((d))?  {verdict}")
    print()

    # --- Minimal explanations --------------------------------------------
    smallest = session.smallest_member(("d",))
    print(f"smallest member of whyUN((d)): {sorted(map(str, smallest))}\n")

    # --- Materialize the witnessing proof tree ---------------------------
    from repro.sat.solver import CDCLSolver

    encoding = session.encoding(("d",))
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    assert solver.solve()
    dag = encoding.decode_compressed_dag(solver.model())
    tree = dag.unravel(program)
    print("one unambiguous proof tree of a(d):")
    for line in tree.pretty().splitlines():
        print(f"  {line}")

    # The whole script cost exactly one fixpoint evaluation:
    stats = session.stats
    print(f"\nsession stats: {stats.as_dict()}")
    assert stats.evaluations == 1


if __name__ == "__main__":
    main()
