"""Quickstart: why-provenance for the paper's running example.

Reproduces Examples 1-4 of the paper on the path-accessibility program:
evaluate a recursive Datalog query, enumerate the why-provenance of an
answer relative to unambiguous proof trees (via the SAT pipeline), decide
membership for candidate explanations, and inspect an actual proof tree.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    DatalogQuery,
    WhyProvenanceEnumerator,
    decide_membership,
    parse_database,
    parse_program,
)


def main() -> None:
    # The path-accessibility program of Example 1 (Cook 1974): s marks
    # source nodes, t(y, z, x) says "if y and z are accessible, so is x".
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    print(f"query class: {query.classify()} (non-linear, recursive)\n")

    database = Database(parse_database(
        "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
    ))

    # --- Enumerate whyUN((d), D, Q) incrementally via SAT ----------------
    print("why-provenance of a(d) relative to unambiguous proof trees:")
    enumerator = WhyProvenanceEnumerator(query, database, ("d",))
    for record in enumerator.enumerate():
        facts = ", ".join(sorted(map(str, record.support)))
        print(f"  member #{record.index}: {{{facts}}}  "
              f"(delay {record.delay_seconds * 1000:.2f} ms)")
    print(f"  closure built in {enumerator.closure_seconds * 1000:.1f} ms, "
          f"formula in {enumerator.formula_seconds * 1000:.1f} ms\n")

    # --- Decide membership for candidate explanations --------------------
    minimal = frozenset(parse_database("s(a). t(a, a, d)."))
    full = database.facts()
    for name, candidate in (("minimal witness", minimal), ("whole database", full)):
        for tree_class in ("arbitrary", "unambiguous"):
            verdict = decide_membership(query, database, ("d",), candidate, tree_class)
            print(f"  {name} in why_{tree_class}((d))?  {verdict}")
    print()

    # --- Materialize the witnessing proof tree ---------------------------
    from repro.core.encoder import encode_why_provenance
    from repro.sat.solver import CDCLSolver

    encoding = encode_why_provenance(query, database, ("d",))
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    assert solver.solve()
    dag = encoding.decode_compressed_dag(solver.model())
    tree = dag.unravel(program)
    print("one unambiguous proof tree of a(d):")
    for line in tree.pretty().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
