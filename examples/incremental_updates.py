"""Live sessions: incremental view maintenance under database updates.

A :class:`~repro.core.session.ProvenanceSession` is a materialized view
over one ``(query, database)`` pair. This example shows the view staying
*live* while the database changes: facts are inserted and deleted through
:meth:`ProvenanceSession.update`, which patches the evaluation with
delta-semi-naive insertion rounds and DRed-style deletion maintenance —
the program is evaluated exactly once, ever — instead of the
sledgehammer ``invalidate()`` + re-evaluate path.

Watch three things in the output:

* inserting an edge makes a **new witness appear** for an existing answer
  (and brand-new answers materialize);
* deleting an edge makes a **cached witness retire** — and retractions
  cascade through the transitive closure, exactly as a fresh evaluation
  would compute;
* the session's ``stats`` stay at one evaluation throughout, while the
  update receipts show how few cached closures each delta really costs.

Run with:  python examples/incremental_updates.py
"""

from repro import (
    Atom,
    Database,
    DatalogQuery,
    Delta,
    ProvenanceSession,
    parse_database,
    parse_program,
)


def show_witnesses(session: ProvenanceSession, tup) -> None:
    """Print the members of ``whyUN(tup)`` (or note a non-answer)."""
    members = session.why(tup)
    if not members:
        print(f"  tc{tup}: not an answer (no witnesses)")
        return
    for index, member in enumerate(members):
        facts = " ".join(sorted(str(f) for f in member))
        print(f"  tc{tup} witness {index}: {facts}")


def main() -> None:
    program = parse_program(
        """
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- tc(X, Y), e(Y, Z).
        """
    )
    query = DatalogQuery(program, "tc")
    database = Database(parse_database("e(a, b). e(b, c). e(c, d)."))
    session = ProvenanceSession(query, database)

    print("== initial database: a -> b -> c -> d ==")
    show_witnesses(session, ("a", "c"))
    show_witnesses(session, ("a", "d"))

    # -- insertion: a new witness appears -----------------------------------
    print("\n== insert e(a, c): a shortcut derivation ==")
    receipt = session.update(Delta.insert(Atom("e", ("a", "c"))))
    print(
        f"  update receipt: +{len(receipt.added_facts)} model facts, "
        f"{receipt.invalidated_closures} closures invalidated, "
        f"{receipt.retained_closures} retained"
    )
    show_witnesses(session, ("a", "c"))  # now two witnesses

    # -- deletion: the cached witness is retired ----------------------------
    print("\n== delete e(b, c): the chain through b is severed ==")
    receipt = session.update(Delta.delete(Atom("e", ("b", "c"))))
    print(
        f"  update receipt: -{len(receipt.removed_facts)} model facts "
        f"(DRed overdeleted {receipt.overdeleted}, rederived {receipt.rederived})"
    )
    show_witnesses(session, ("a", "c"))  # the b-chain witness is gone
    show_witnesses(session, ("b", "d"))  # retracted transitively

    # -- the headline invariant ---------------------------------------------
    cold = ProvenanceSession(query, session.database.copy())
    assert session.answers() == cold.answers()
    assert all(
        session.why(t) == cold.why(t) for t in session.answers()
    ), "maintained session must match a cold session, witness order included"
    print(
        f"\nsession stats: {session.stats.evaluations} evaluation(s), "
        f"{session.stats.updates} update(s), version v{session.version}"
    )
    print("identical to a cold session over the updated database: yes")


if __name__ == "__main__":
    main()
