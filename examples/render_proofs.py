"""Render proof objects to Graphviz DOT.

Produces, for the paper's running example, DOT renderings of (1) a
minimal-depth proof tree, (2) the compressed DAG behind one whyUN
member, (3) the downward closure hypergraph that the SAT encoding
searches, and (4) the provenance circuit of a non-recursive variant.
Files are written next to this script as ``proof_*.dot``; render them
with ``dot -Tsvg proof_tree.dot -o proof_tree.svg`` if Graphviz is
installed (the DOT text itself is also printed).

Run with:  python examples/render_proofs.py
"""

import os

from repro import Database, DatalogQuery, parse_database, parse_program
from repro.baselines import SouffleStyleProvenance
from repro.core.encoder import encode_why_provenance
from repro.datalog.parser import parse_atom
from repro.provenance import downward_closure
from repro.provenance.render import (
    circuit_to_dot,
    closure_to_dot,
    compressed_dag_to_dot,
    proof_tree_to_dot,
)
from repro.sat.solver import CDCLSolver
from repro.semiring import provenance_circuit

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def _write(name: str, dot: str) -> None:
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as handle:
        handle.write(dot)
    print(f"--- {name} ({len(dot.splitlines())} lines) ---")
    print(dot)


def main() -> None:
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(parse_database(
        "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
    ))

    # (1) A minimal-depth proof tree of a(d), Souffle-style.
    tree = SouffleStyleProvenance(program, database).explain(parse_atom("a(d)"))
    _write("proof_tree.dot", proof_tree_to_dot(tree, database))

    # (2) The compressed DAG behind one member of whyUN((d), D, Q).
    encoding = encode_why_provenance(query, database, ("d",))
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    assert solver.solve() is True
    dag = encoding.decode_compressed_dag(solver.model())
    _write("compressed_dag.dot", compressed_dag_to_dot(dag, database))

    # (3) The downward closure: every derivation the encoding can pick.
    closure = downward_closure(program, database, parse_atom("a(d)"))
    _write("downward_closure.dot", closure_to_dot(closure, database))

    # (4) A provenance circuit (non-recursive data: no derivation cycle).
    tc_program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    tc_query = DatalogQuery(tc_program, "t")
    tc_db = Database(parse_database("e(a, b). e(b, c). e(a, c)."))
    circuit = provenance_circuit(tc_query, tc_db, ("a", "c"))
    _write("circuit.dot", circuit_to_dot(circuit))


if __name__ == "__main__":
    main()
