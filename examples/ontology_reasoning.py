"""Explaining an ontology subsumption (the Galen scenario).

An EL reasoner derives that ``bacterial_pericarditis`` is a kind of
``serious_condition``. Ontology engineers want the *axiom sets* justifying
the entailment — exactly the why-provenance of the derived subClassOf fact
under the 14-rule ELK-style saturation program.

Run with:  python examples/ontology_reasoning.py
"""

from repro import Atom, Database, why_provenance_unambiguous
from repro.scenarios.galen import galen_query

# A miniature medical TBox in the scenario's EDB schema.
AXIOMS = [
    # Taxonomy (told subsumptions).
    Atom("sub", ("bacterial_pericarditis", "pericarditis")),
    Atom("sub", ("pericarditis", "inflammation")),
    # bacterial_pericarditis  ⊑  ∃ caused_by . bacterium
    Atom("subex", ("bacterial_pericarditis", "caused_by", "bacterium")),
    # ∃ caused_by . pathogen  ⊑  infectious_disease
    Atom("exsub", ("caused_by", "pathogen", "infectious_disease")),
    Atom("sub", ("bacterium", "pathogen")),
    # inflammation ⊓ infectious_disease  ⊑  serious_condition
    Atom("conj", ("inflammation", "infectious_disease", "serious_condition")),
    # Distractor axioms (never needed for the entailment below).
    Atom("sub", ("viral_pericarditis", "pericarditis")),
    Atom("subex", ("viral_pericarditis", "caused_by", "virus")),
    Atom("sub", ("virus", "pathogen")),
]

CLASSES = [
    "bacterial_pericarditis", "viral_pericarditis", "pericarditis",
    "inflammation", "bacterium", "virus", "pathogen",
    "infectious_disease", "serious_condition",
]


def main() -> None:
    query = galen_query()
    database = Database(AXIOMS)
    for cls in CLASSES:
        database.add(Atom("class", (cls,)))

    entailment = ("bacterial_pericarditis", "serious_condition")
    print(f"entailment: {entailment[0]}  subClassOf  {entailment[1]}\n")

    family = why_provenance_unambiguous(query, database, entailment)
    print(f"{len(family)} justification(s):\n")
    for i, member in enumerate(sorted(family, key=len), 1):
        axioms = sorted(
            (fact for fact in member if fact.pred != "class"), key=str
        )
        print(f"justification {i} ({len(axioms)} axioms):")
        for axiom in axioms:
            print(f"    {axiom}")
        print()

    # The viral branch is a distractor: no justification mentions it.
    for member in family:
        assert all("viral" not in str(fact) and "virus" not in str(fact)
                   for fact in member)
    print("note: the viral_pericarditis axioms occur in no justification.")


if __name__ == "__main__":
    main()
