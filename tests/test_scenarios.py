"""Tests for the Table-1 scenario registry and generators."""

import pytest

from repro.datalog.engine import evaluate
from repro.scenarios import all_scenarios, get_scenario
from repro.scenarios.andersen import andersen_database, andersen_query
from repro.scenarios.csda import csda_database, csda_query
from repro.scenarios.doctors import doctors_database, doctors_query
from repro.scenarios.galen import galen_like_database, galen_query
from repro.scenarios.transclosure import (
    bitcoin_like_database,
    facebook_like_database,
    transclosure_query,
)


class TestRegistry:
    def test_all_scenarios_present(self):
        names = {s.name for s in all_scenarios()}
        expected = {"TransClosure", "Galen", "Andersen", "CSDA"} | {
            f"Doctors-{i}" for i in range(1, 8)
        }
        assert expected <= names

    def test_get_scenario(self):
        scenario = get_scenario("TransClosure")
        assert scenario.database_names() == ["bitcoin", "facebook"]
        with pytest.raises(KeyError):
            get_scenario("nope")
        with pytest.raises(KeyError):
            scenario.database("nope")


class TestTable1Classification:
    """The query type and rule counts of Table 1 must hold exactly."""

    def test_transclosure(self):
        query = transclosure_query()
        assert len(query.program.rules) == 2
        assert query.is_linear() and not query.is_non_recursive()

    @pytest.mark.parametrize("variant", range(1, 8))
    def test_doctors(self, variant):
        query = doctors_query(variant)
        assert len(query.program.rules) == 6
        assert query.is_linear() and query.is_non_recursive()

    def test_doctors_variant_range(self):
        with pytest.raises(ValueError):
            doctors_query(8)

    def test_galen(self):
        query = galen_query()
        assert len(query.program.rules) == 14
        assert not query.is_linear() and not query.is_non_recursive()

    def test_andersen(self):
        query = andersen_query()
        assert len(query.program.rules) == 4
        assert not query.is_linear() and not query.is_non_recursive()

    def test_csda(self):
        query = csda_query()
        assert len(query.program.rules) == 2
        assert query.is_linear() and not query.is_non_recursive()


class TestGeneratorsDeterministic:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: bitcoin_like_database(num_nodes=40, seed=3),
            lambda: facebook_like_database(num_circles=3, circle_size=4, seed=3),
            lambda: doctors_database(num_doctors=10, num_patients=12, seed=3),
            lambda: galen_like_database(num_classes=12, seed=3),
            lambda: andersen_database(num_vars=20, num_statements=40, seed=3),
            lambda: csda_database(num_nodes=50, seed=3),
        ],
    )
    def test_same_seed_same_database(self, factory):
        assert factory().facts() == factory().facts()


class TestGeneratorsProduceAnswers:
    """Every scenario must actually yield answers so tuples can be sampled."""

    @pytest.mark.parametrize(
        "query,db",
        [
            (transclosure_query(), bitcoin_like_database(num_nodes=40, seed=1)),
            (transclosure_query(), facebook_like_database(num_circles=3, circle_size=4, seed=1)),
            (doctors_query(2), doctors_database(num_doctors=10, num_patients=12, seed=1)),
            (galen_query(), galen_like_database(num_classes=12, seed=1)),
            (andersen_query(), andersen_database(num_vars=25, num_statements=50, seed=1)),
            (csda_query(), csda_database(num_nodes=60, seed=1)),
        ],
    )
    def test_nonempty_answers(self, query, db):
        db = db.restrict(query.program.edb)
        result = evaluate(query.program, db)
        assert result.model.count(query.answer_predicate) > 0


class TestSchemas:
    def test_databases_cover_query_edb(self):
        """Restricting a scenario db to edb(Sigma) keeps useful facts."""
        for scenario in all_scenarios():
            query = scenario.query()
            for name in scenario.database_names():
                db = scenario.database(name).restrict(query.program.edb)
                assert len(db) > 0, (scenario.name, name)
