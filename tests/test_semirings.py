"""Semiring axioms and the algebra of provenance values."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import make_fact
from repro.semiring import (
    INFINITY,
    SEMIRINGS,
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    MaxMinSemiring,
    MinWhySemiring,
    PolynomialSemiring,
    TropicalSemiring,
    ViterbiSemiring,
    WhySemiring,
    get_semiring,
    minimize_family,
    polynomial_to_counting,
    polynomial_to_lineage,
    polynomial_to_why,
)

FACTS = [make_fact("e", str(i)) for i in range(4)]

# Exactly representable floats so that products associate exactly.
_DYADIC = [0.0, 0.25, 0.5, 1.0]


def _family(sets):
    return frozenset(frozenset(FACTS[i] for i in indices) for indices in sets)


def _value_strategy(name):
    """A hypothesis strategy producing elements of the named semiring."""
    if name == "boolean":
        return st.booleans()
    if name == "counting":
        return st.sampled_from([0, 1, 2, 3, 7, INFINITY])
    if name == "tropical":
        return st.sampled_from([0, 1, 2, 5, INFINITY])
    if name in ("viterbi", "max-min"):
        return st.sampled_from(_DYADIC)
    if name == "lineage":
        subset = st.sets(st.sampled_from(FACTS), max_size=3).map(frozenset)
        return st.one_of(st.just(None), subset)
    if name in ("why", "min-why"):
        subset = st.sets(st.sampled_from(FACTS), max_size=3).map(frozenset)
        family = st.sets(subset, max_size=3).map(frozenset)
        if name == "min-why":
            return family.map(minimize_family)
        return family
    if name == "polynomial":
        monomial = st.lists(
            st.tuples(st.sampled_from(FACTS), st.integers(1, 2)),
            max_size=2,
            unique_by=lambda pair: repr(pair[0]),
        ).map(lambda pairs: tuple(sorted(pairs, key=lambda p: repr(p[0]))))
        term = st.tuples(monomial, st.integers(1, 3))
        return st.lists(term, max_size=3, unique_by=lambda t: t[0]).map(frozenset)
    raise AssertionError(name)


AXIOM_CASES = sorted(SEMIRINGS)


@pytest.mark.parametrize("name", AXIOM_CASES)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_semiring_axioms(name, data):
    semiring = get_semiring(name)
    values = _value_strategy(name)
    a = data.draw(values)
    b = data.draw(values)
    c = data.draw(values)
    eq = semiring.equal
    # plus: associative, commutative, identity zero
    assert eq(semiring.plus(semiring.plus(a, b), c), semiring.plus(a, semiring.plus(b, c)))
    assert eq(semiring.plus(a, b), semiring.plus(b, a))
    assert eq(semiring.plus(a, semiring.zero()), a)
    # times: associative, commutative, identity one, annihilator zero
    assert eq(semiring.times(semiring.times(a, b), c), semiring.times(a, semiring.times(b, c)))
    assert eq(semiring.times(a, b), semiring.times(b, a))
    assert eq(semiring.times(a, semiring.one()), a)
    assert eq(semiring.times(a, semiring.zero()), semiring.zero())
    # distributivity
    assert eq(
        semiring.times(a, semiring.plus(b, c)),
        semiring.plus(semiring.times(a, b), semiring.times(a, c)),
    )
    if semiring.idempotent_plus:
        assert eq(semiring.plus(a, a), a)
    if semiring.absorptive:
        assert eq(semiring.plus(a, semiring.times(a, b)), a)


def test_registry_contains_all_names():
    assert set(SEMIRINGS) == {
        "boolean",
        "counting",
        "tropical",
        "viterbi",
        "max-min",
        "lineage",
        "why",
        "min-why",
        "polynomial",
    }


def test_get_semiring_unknown_name():
    with pytest.raises(ValueError, match="unknown semiring"):
        get_semiring("galois")


def test_boolean_truth_table():
    ring = BooleanSemiring()
    assert ring.plus(False, True) is True
    assert ring.times(False, True) is False
    assert ring.sum([]) is False
    assert ring.product([]) is True


def test_counting_infinity_is_absorbing_for_plus():
    ring = CountingSemiring()
    assert ring.plus(INFINITY, 7) == INFINITY
    assert ring.times(INFINITY, 2) == INFINITY
    assert ring.times(INFINITY, 0) == 0
    assert ring.top() == INFINITY
    assert math.isinf(ring.top())


def test_tropical_defaults():
    ring = TropicalSemiring()
    assert ring.zero() == INFINITY
    assert ring.one() == 0
    assert ring.from_fact(FACTS[0]) == 1
    assert ring.plus(3, 5) == 3
    assert ring.times(3, 5) == 8


def test_viterbi_and_maxmin_ranges():
    viterbi = ViterbiSemiring()
    maxmin = MaxMinSemiring()
    assert viterbi.times(0.5, 0.5) == 0.25
    assert maxmin.times(0.5, 0.25) == 0.25
    assert maxmin.plus(0.5, 0.25) == 0.5


def test_lineage_zero_is_distinguished_from_one():
    ring = LineageSemiring()
    assert ring.zero() is None
    assert ring.one() == frozenset()
    assert ring.plus(None, frozenset([FACTS[0]])) == frozenset([FACTS[0]])
    assert ring.times(None, frozenset([FACTS[0]])) is None
    assert ring.from_fact(FACTS[1]) == frozenset([FACTS[1]])


def test_why_semiring_times_is_pairwise_union():
    ring = WhySemiring()
    left = _family([{0}, {1}])
    right = _family([{2}])
    assert ring.times(left, right) == _family([{0, 2}, {1, 2}])
    assert ring.plus(left, right) == _family([{0}, {1}, {2}])
    assert ring.from_fact(FACTS[3]) == _family([{3}])


def test_why_semiring_keeps_non_minimal_members():
    ring = WhySemiring()
    family = _family([{0}, {0, 1}])
    assert ring.plus(family, ring.zero()) == family


def test_min_why_semiring_absorbs_supersets():
    ring = MinWhySemiring()
    assert ring.plus(_family([{0}]), _family([{0, 1}])) == _family([{0}])
    # Pairwise unions give {"{0}", "{0,1}"}; absorption keeps only {"{0}"}.
    assert ring.times(_family([{0}, {1}]), _family([{0}])) == _family([{0}])


def test_minimize_family_returns_antichain():
    family = _family([{0}, {0, 1}, {1, 2}, {2, 1}, {0, 1, 2}])
    minimal = minimize_family(family)
    assert minimal == _family([{0}, {1, 2}])
    for a in minimal:
        for b in minimal:
            assert not (a < b)


@settings(max_examples=60, deadline=None)
@given(
    family=st.sets(
        st.sets(st.sampled_from(FACTS), max_size=3).map(frozenset), max_size=6
    ).map(frozenset)
)
def test_minimize_family_covers_every_member(family):
    minimal = minimize_family(family)
    assert minimal <= family
    for member in family:
        assert any(kept <= member for kept in minimal)


def test_why_budget_guard():
    from repro.semiring import SemiringBudgetExceeded

    ring = WhySemiring(max_terms=2)
    wide = _family([{0}, {1}, {2}])
    with pytest.raises(SemiringBudgetExceeded):
        ring.plus(wide, ring.zero())


def test_polynomial_specializations_commute():
    ring = PolynomialSemiring()
    x = ring.from_fact(FACTS[0])
    y = ring.from_fact(FACTS[1])
    # (x + y) * x = x^2 + xy
    value = ring.times(ring.plus(x, y), x)
    assert polynomial_to_counting(value) == 2
    assert polynomial_to_why(value) == _family([{0}, {0, 1}])
    assert polynomial_to_lineage(value) == frozenset([FACTS[0], FACTS[1]])


def test_polynomial_coefficients_accumulate():
    ring = PolynomialSemiring()
    x = ring.from_fact(FACTS[0])
    doubled = ring.plus(x, x)
    assert polynomial_to_counting(doubled) == 2
    squared = ring.times(x, x)
    ((monomial, coeff),) = tuple(squared)
    assert coeff == 1
    assert monomial == ((FACTS[0], 2),)


def test_polynomial_zero_coefficients_are_dropped():
    ring = PolynomialSemiring()
    assert ring.plus(ring.zero(), ring.zero()) == frozenset()
    assert ring.times(ring.zero(), ring.one()) == frozenset()


def test_polynomial_has_no_top():
    ring = PolynomialSemiring()
    with pytest.raises(NotImplementedError):
        ring.top()


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_polynomial_specializations_are_homomorphisms(data):
    """Dropping detail commutes with the operations (Green et al.)."""
    from repro.semiring import CountingSemiring, WhySemiring

    poly = PolynomialSemiring()
    values = _value_strategy("polynomial")
    a = data.draw(values)
    b = data.draw(values)
    counting = CountingSemiring()
    why = WhySemiring()
    # to_counting: N[X] -> N
    assert polynomial_to_counting(poly.plus(a, b)) == counting.plus(
        polynomial_to_counting(a), polynomial_to_counting(b)
    )
    assert polynomial_to_counting(poly.times(a, b)) == counting.times(
        polynomial_to_counting(a), polynomial_to_counting(b)
    )
    # to_why: N[X] -> Why(X)
    assert polynomial_to_why(poly.plus(a, b)) == why.plus(
        polynomial_to_why(a), polynomial_to_why(b)
    )
    assert polynomial_to_why(poly.times(a, b)) == why.times(
        polynomial_to_why(a), polynomial_to_why(b)
    )


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_why_to_minwhy_quotient_is_a_homomorphism(data):
    """Minimization commutes with the why-semiring operations."""
    why = WhySemiring()
    min_why = MinWhySemiring()
    values = _value_strategy("why")
    a = data.draw(values)
    b = data.draw(values)
    assert minimize_family(why.plus(a, b)) == min_why.plus(
        minimize_family(a), minimize_family(b)
    )
    assert minimize_family(why.times(a, b)) == min_why.times(
        minimize_family(a), minimize_family(b)
    )
