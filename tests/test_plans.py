"""Compiled join plans: differential properties against the interpreted engine.

The compiled engine (`repro.datalog.plans`) must be observationally
identical to the interpreted one — same model, same ranks, same rounds,
same derivation count, same instance *set* — over arbitrary programs,
databases, and update sequences. These tests drive both engines over the
synthetic workload families plus hand-built edge cases (long bodies past
the codegen limit, constants in rules, repeated variables), and pin the
two `unify.py` satellites: the delta-seeded join ordering fix and the
incremental `plan_order` rewrite.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Delta, IntRelation
from repro.datalog.engine import evaluate, maintain_evaluation
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.plans import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    MAX_CODEGEN_BODY,
    PlanContext,
    SymbolTable,
    compile_rule,
    resolve_engine,
)
from repro.datalog.program import DatalogQuery
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.datalog.unify import match_body_with_delta, plan_order
from repro.core.session import ProvenanceSession

from strategies import rule_bodies, synthetic_instances

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)

PATH_DB = Database(parse_database("e(a, b). e(b, c). e(c, d)."))

differential_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fingerprint(result):
    """The observable signature both engines must agree on."""
    return (
        set(result.model),
        result.ranks,
        result.rounds,
        result.derivations,
        None if result.instances is None else set(result.instances),
    )


class TestEngineDifferential:
    @given(instance=synthetic_instances(rounds=st.just(0)))
    @differential_settings
    def test_engines_agree_on_evaluation(self, instance):
        program = instance.query.program
        interpreted = evaluate(
            program, instance.database, record_instances=True, engine="interpreted"
        )
        compiled = evaluate(
            program, instance.database, record_instances=True, engine="compiled"
        )
        assert _fingerprint(interpreted) == _fingerprint(compiled)
        assert interpreted.engine == "interpreted"
        assert compiled.engine == "compiled"

    @given(instance=synthetic_instances(rounds=st.integers(1, 3)))
    @differential_settings
    def test_engines_agree_across_update_sequences(self, instance):
        program = instance.query.program
        databases = {
            "interpreted": instance.database.copy(),
            "compiled": instance.database.copy(),
        }
        context = PlanContext()
        evaluations = {
            "interpreted": evaluate(
                program,
                databases["interpreted"],
                record_instances=True,
                engine="interpreted",
            ),
            "compiled": evaluate(
                program,
                databases["compiled"],
                record_instances=True,
                engine="compiled",
                plan_context=context,
            ),
        }
        for delta in instance.deltas:
            effective = databases["interpreted"].apply(delta)
            databases["compiled"].apply(delta)
            evaluations["interpreted"] = maintain_evaluation(
                program,
                databases["interpreted"],
                evaluations["interpreted"],
                effective,
                engine="interpreted",
            ).evaluation
            evaluations["compiled"] = maintain_evaluation(
                program,
                databases["compiled"],
                evaluations["compiled"],
                effective,
                engine="compiled",
                plan_context=context,
            ).evaluation
            assert _fingerprint(evaluations["interpreted"]) == _fingerprint(
                evaluations["compiled"]
            )
            # Both maintained results must also match a cold compiled run.
            cold = evaluate(
                program,
                databases["compiled"],
                record_instances=True,
                engine="compiled",
            )
            assert set(cold.model) == set(evaluations["compiled"].model)
            assert cold.ranks == evaluations["compiled"].ranks
            assert set(cold.instances) == set(evaluations["compiled"].instances)

    @pytest.mark.parametrize("engine", ["interpreted", "compiled"])
    def test_empty_database(self, engine):
        result = evaluate(TC, Database(), record_instances=True, engine=engine)
        assert result.model == set()
        assert result.rounds == 0
        assert result.instances == ()

    def test_constants_and_repeated_variables(self):
        program = parse_program(
            """
            loop(X) :- e(X, X).
            from_a(Y) :- e(a, Y).
            pair(X, Y) :- from_a(X), from_a(Y), e(X, Y).
            """
        )
        db = Database(parse_database("e(a, a). e(a, b). e(b, c). e(a, c)."))
        interpreted = evaluate(program, db, record_instances=True, engine="interpreted")
        compiled = evaluate(program, db, record_instances=True, engine="compiled")
        assert _fingerprint(interpreted) == _fingerprint(compiled)
        assert Atom("loop", ("a",)) in compiled.model

    def test_long_body_uses_generic_executor(self):
        # 40 atoms is far past the codegen nesting limit; the generic
        # executor must agree with the interpreted join (and not recurse).
        chain_db = Database(Atom("e", (f"n{i}", f"n{i+1}")) for i in range(50))
        variables = [Variable(f"v{i}") for i in range(41)]
        body = tuple(
            Atom("e", (variables[i], variables[i + 1])) for i in range(40)
        )
        rule = Rule(Atom("path", (variables[0], variables[40])), body)
        from repro.datalog.program import Program

        program = Program([rule])
        assert len(body) > MAX_CODEGEN_BODY
        plan = PlanContext().plan_for(rule, None, chain_db)
        assert plan.source is None  # generic executor, not codegen
        interpreted = evaluate(program, chain_db, record_instances=True, engine="interpreted")
        compiled = evaluate(program, chain_db, record_instances=True, engine="compiled")
        assert _fingerprint(interpreted) == _fingerprint(compiled)
        assert sum(1 for f in compiled.model if f.pred == "path") == 11

    def test_zero_arity_predicates(self):
        from repro.datalog.program import Program

        flag = Rule(Atom("flag", ()), (Atom("e", (X, Y)),))
        done = Rule(Atom("done", ("ok",)), (Atom("flag", ()),))
        program = Program([flag, done])
        interpreted = evaluate(program, PATH_DB, record_instances=True, engine="interpreted")
        compiled = evaluate(program, PATH_DB, record_instances=True, engine="compiled")
        assert _fingerprint(interpreted) == _fingerprint(compiled)
        assert Atom("done", ("ok",)) in compiled.model


class TestPlanCache:
    def test_plans_compile_once_and_reuse_across_rounds(self):
        context = PlanContext()
        result = evaluate(
            TC, PATH_DB, record_instances=True, engine="compiled", plan_context=context
        )
        # TC: one EDB-only rule plan + one (rule, delta-pos) plan.
        assert result.plans_compiled == 2
        assert context.compiled == 2
        # 3 productive rounds + the saturating round reuse the tc-plan.
        assert result.plan_reuses >= 2

    def test_plans_reused_across_updates(self):
        query = DatalogQuery(TC, "tc")
        session = ProvenanceSession(query, PATH_DB.copy(), engine="compiled")
        session.evaluation
        compiled_after_eval = session.stats.plans_compiled
        assert compiled_after_eval == 2
        session.update(Delta.insert(Atom("e", ("d", "e"))))
        # The insertion pivot on the EDB position compiles two new plans
        # (rule bodies pivoting on ``e``); the tc-pivot plan is reused.
        assert session.stats.plan_reuses > 0
        reuses_first = session.stats.plan_reuses
        compiled_first = session.stats.plans_compiled
        session.update(Delta.insert(Atom("e", ("e", "f"))))
        # Second update: every pivot position has a cached plan already.
        assert session.stats.plans_compiled == compiled_first
        assert session.stats.plan_reuses > reuses_first

    def test_invalidate_drops_plan_context(self):
        query = DatalogQuery(TC, "tc")
        session = ProvenanceSession(query, PATH_DB.copy(), engine="compiled")
        session.evaluation
        assert session._plan_context is not None
        session.invalidate()
        assert session._plan_context is None

    def test_interpreted_session_has_no_plan_context(self):
        query = DatalogQuery(TC, "tc")
        session = ProvenanceSession(query, PATH_DB.copy(), engine="interpreted")
        session.evaluation
        assert session.plan_context() is None
        assert session.stats.plans_compiled == 0
        assert session.evaluation.engine == "interpreted"


class TestEngineKnob:
    def test_resolve_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "interpreted")
        assert resolve_engine("compiled") == "compiled"
        assert resolve_engine(None) == "interpreted"

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == DEFAULT_ENGINE

    def test_resolve_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_engine("vectorized")
        monkeypatch.setenv(ENGINE_ENV, "typo")
        with pytest.raises(ValueError):
            resolve_engine()

    def test_naive_method_stays_interpreted(self):
        result = evaluate(TC, PATH_DB, method="naive", engine="compiled")
        assert result.engine == "interpreted"


class TestSymbolsAndRelations:
    def test_symbol_table_is_stable(self):
        symbols = SymbolTable()
        a = symbols.intern("a")
        b = symbols.intern("b")
        assert symbols.intern("a") == a
        assert symbols.value(a) == "a"
        assert symbols.value(b) == "b"
        assert len(symbols) == 2

    def test_int_relation_index_maintenance(self):
        relation = IntRelation()
        relation.add((1, 2))
        index = relation.index_for((0,))
        assert index == {(1,): [(1, 2)]}
        # Adds after materialization keep the pattern index current.
        relation.add((1, 3))
        relation.add((2, 4))
        assert index[(1,)] == [(1, 2), (1, 3)]
        assert relation.discard((1, 2))
        assert index[(1,)] == [(1, 3)]
        assert relation.discard((2, 4))
        assert (2,) not in index
        assert not relation.discard((9, 9))

    def test_position_cardinalities(self):
        db = Database(parse_database("e(a, b). e(a, c). e(b, c)."))
        assert db.position_cardinalities("e") == (2, 2)
        assert db.position_cardinalities("missing") == ()

    def test_compiled_plan_source_is_generated(self):
        rule = TC.rules[1]  # tc(X, Z) :- tc(X, Y), e(Y, Z).
        plan = compile_rule(rule, 0, SymbolTable(), PATH_DB)
        assert plan.source is not None
        assert "_join" in plan.source
        assert plan.body_preds == ("tc", "e")


class _CountingDatabase(Database):
    """A database that counts every candidate fact its indexes yield."""

    __slots__ = ("candidates",)

    def __init__(self, facts=()):
        self.candidates = 0
        super().__init__(facts)

    def matching(self, pred, bindings):
        for fact in super().matching(pred, bindings):
            self.candidates += 1
            yield fact


class TestDeltaJoinOrdering:
    def test_delta_seeds_plan_order(self):
        # body: delta atom binds X; the raw input order would scan the
        # wide unrelated a-relation next (cross product), while seeding
        # plan_order with the delta variables joins e(X, Y) first.
        n = 50
        body = (Atom("d", (X,)), Atom("a", (Y, Z)), Atom("e", (X, Y)))
        facts = [Atom("e", ("x0", "y0"))]
        facts += [Atom("a", (f"y{i}", f"z{i}")) for i in range(n)]
        database = _CountingDatabase(facts)
        delta = Database([Atom("d", ("x0",))])
        results = list(match_body_with_delta(body, database, delta, 0))
        assert len(results) == 1
        assert results[0][Y] == "y0"
        # Planned: e-probe (1 candidate) then a-probe keyed on Y (1
        # candidate). The pre-fix raw order scanned all n a-facts.
        assert database.candidates <= 4, (
            f"delta join enumerated {database.candidates} candidates; "
            "the non-delta atoms are not being planned"
        )

    def test_delta_match_results_unchanged(self):
        # The ordering fix must not change the *set* of substitutions.
        body = (Atom("tc", (X, Y)), Atom("e", (Y, Z)))
        delta = Database([Atom("tc", ("a", "b"))])
        results = {
            (s[X], s[Y], s[Z])
            for s in match_body_with_delta(body, PATH_DB, delta, 0)
        }
        assert results == {("a", "b", "c")}


def _reference_plan_order(body, base=None):
    """The pre-rewrite quadratic plan_order, kept as the property oracle."""
    remaining = list(enumerate(body))
    bound = set(base) if base else set()
    order = []
    while remaining:
        def score(item):
            idx, atom = item
            vs = atom.variables()
            n_bound = len(vs & bound)
            n_unbound = len(vs - bound)
            return (-n_bound, n_unbound, idx)

        remaining.sort(key=score)
        idx, atom = remaining.pop(0)
        order.append(atom)
        bound |= atom.variables()
    return order


class TestPlanOrderRewrite:
    @given(body=rule_bodies(), seed_x=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_order_matches_reference(self, body, seed_x):
        base = {Variable("v0"): "c0"} if seed_x else None
        assert plan_order(body, base) == _reference_plan_order(body, base)

    def test_keeps_all_atoms(self):
        body = [Atom("e", (X, Y)), Atom("f", (Z,)), Atom("g", (Y, Z))]
        assert sorted(map(str, plan_order(body))) == sorted(map(str, body))

    def test_bound_vars_seed(self):
        body = [Atom("a", (Y, Z)), Atom("e", (X, Y))]
        # Without seeding, input order wins the tie; with X bound the
        # e-atom is picked first.
        assert plan_order(body)[0] == body[0]
        assert plan_order(body, bound_vars={X})[0] == body[1]
