"""CNF preprocessing: equivalence preservation and technique behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import encode_why_provenance
from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.sat.cnf import CNF
from repro.sat.enumeration import all_models
from repro.sat.preprocessing import (
    PreprocessResult,
    preprocess,
    preprocess_stats_summary,
)
from repro.sat.solver import CDCLSolver


def _cnf(clauses, num_vars=None):
    if num_vars is None:
        num_vars = max(
            (abs(lit) for clause in clauses for lit in clause), default=0
        )
    cnf = CNF(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def _model_set(cnf, variables):
    return {
        tuple(model.get(v, False) for v in variables)
        for model in all_models(cnf, projection=variables)
    }


def _model_set_with_forced(result: PreprocessResult, variables):
    models = set()
    for model in all_models(result.cnf, projection=variables):
        extended = result.extend_model(model)
        models.add(tuple(extended.get(v, False) for v in variables))
    return models


def test_tautologies_are_dropped():
    cnf = _cnf([[1, -1], [1, 2]])
    result = preprocess(cnf)
    assert result.stats["tautologies"] == 1
    assert len(result.cnf) == 1


def test_unit_propagation_collects_forced_literals():
    cnf = _cnf([[1], [-1, 2], [-2, 3], [3, 4]])
    result = preprocess(cnf)
    assert result.forced == {1: True, 2: True, 3: True}
    assert len(result.cnf) == 0
    assert result.stats["units_propagated"] == 3


def test_unit_conflict_reports_unsat():
    cnf = _cnf([[1], [-1]])
    result = preprocess(cnf)
    assert result.unsat is True
    solver = CDCLSolver()
    solver.add_cnf(result.cnf)
    assert solver.solve() is False


def test_propagation_derived_conflict():
    cnf = _cnf([[1], [-1, 2], [-1, -2]])
    result = preprocess(cnf)
    assert result.unsat is True


def test_subsumption_removes_supersets():
    cnf = _cnf([[1, 2], [1, 2, 3], [1, 2, 4]])
    result = preprocess(cnf)
    assert result.stats["subsumed"] == 2
    assert set(map(frozenset, result.cnf)) == {frozenset({1, 2})}


def test_self_subsumption_strengthens():
    # (1 2) and (-1 2 3): resolving on 1 gives (2 3) subsumed... the
    # classic pattern: (1 2 3) with (-1 2) strengthens to (2 3).
    cnf = _cnf([[1, 2, 3], [-1, 2]])
    result = preprocess(cnf)
    assert result.stats["strengthened"] >= 1
    assert frozenset({2, 3}) in set(map(frozenset, result.cnf))


def test_pure_literal_elimination_is_opt_in():
    cnf = _cnf([[1, 2], [1, 3]])
    kept = preprocess(cnf)
    assert kept.stats["pure_literals"] == 0
    pure = preprocess(cnf, pure_literals=True)
    assert pure.stats["pure_literals"] >= 1
    assert pure.forced.get(1) is True
    assert len(pure.cnf) == 0


def test_pure_literal_preserves_satisfiability_not_models():
    cnf = _cnf([[1, 2]])
    result = preprocess(cnf, pure_literals=True)
    # Both 1 and 2 are pure; the original has 3 models, the reduced 1.
    assert _model_set(cnf, [1, 2]) > _model_set_with_forced(result, [1, 2])
    solver = CDCLSolver()
    solver.add_cnf(result.cnf)
    assert solver.solve() is True


def test_equivalence_preserving_pipeline_keeps_every_model():
    cnf = _cnf([[1, 2, 3], [-1, 2], [2, 3], [-3, 1], [1, 2, 3, 4]])
    result = preprocess(cnf)
    variables = [1, 2, 3, 4]
    assert _model_set(cnf, variables) == _model_set_with_forced(result, variables)


@settings(max_examples=60, deadline=None)
@given(
    clauses=st.lists(
        st.lists(
            st.integers(-4, 4).filter(lambda lit: lit != 0),
            min_size=1,
            max_size=3,
        ),
        max_size=8,
    )
)
def test_random_formulas_preserve_model_sets(clauses):
    cnf = _cnf(clauses, num_vars=4)
    result = preprocess(cnf)
    variables = [1, 2, 3, 4]
    if result.unsat:
        assert _model_set(cnf, variables) == set()
    else:
        assert _model_set(cnf, variables) == _model_set_with_forced(result, variables)


@settings(max_examples=40, deadline=None)
@given(
    clauses=st.lists(
        st.lists(
            st.integers(-4, 4).filter(lambda lit: lit != 0),
            min_size=1,
            max_size=3,
        ),
        max_size=8,
    )
)
def test_pure_literal_mode_preserves_satisfiability(clauses):
    cnf = _cnf(clauses, num_vars=4)
    result = preprocess(cnf, pure_literals=True)
    original_sat = bool(_model_set(cnf, [1, 2, 3, 4]))
    solver = CDCLSolver()
    solver.add_cnf(result.cnf)
    for variable, value in result.forced.items():
        solver.add_clause([variable if value else -variable])
    assert (solver.solve() is True) == original_sat


def test_provenance_formula_shrinks_and_keeps_supports():
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).")
    )
    encoding = encode_why_provenance(query, database, ("d",))
    result = preprocess(encoding.cnf)
    assert not result.unsat
    assert len(result.cnf) < len(encoding.cnf)
    projection = encoding.projection_variables()

    def supports(models):
        out = set()
        for model in models:
            out.add(
                frozenset(
                    fact
                    for fact, var in encoding.database_fact_vars.items()
                    if model.get(var, False)
                )
            )
        return out

    before = supports(all_models(encoding.cnf, projection=projection))
    after = supports(
        result.extend_model(model)
        for model in all_models(result.cnf, projection=projection)
    )
    assert before == after


def test_stats_summary_shape():
    cnf = _cnf([[1], [1, 2], [2, 3]])
    result = preprocess(cnf)
    summary = preprocess_stats_summary(result, cnf)
    assert summary["clauses_before"] == 3
    assert summary["forced_literals"] == len(result.forced)
    assert "subsumed" in summary and "rounds" in summary


def test_max_rounds_limits_iteration():
    cnf = _cnf([[1], [-1, 2], [-2, 3], [-3, 4]])
    shallow = preprocess(cnf, max_rounds=1)
    deep = preprocess(cnf)
    assert shallow.stats["rounds"] == 1
    assert len(deep.forced) >= len(shallow.forced)
