"""Property tests for the consistent-hash ring behind ``serve --workers``.

The sharded daemon's correctness rests on three ring properties, each
pinned here with Hypothesis:

* **totality + determinism** — every digest maps to exactly one slot of
  the configured set, and two independently constructed rings over the
  same slots agree on every digest (the router and a test, or two
  router restarts, never disagree on placement);
* **balance** — with the default replica count, no slot owns a wildly
  disproportionate share of random digests;
* **minimal disruption** — growing or shrinking the pool by one slot
  remaps *only* digests whose new owner is the added slot (respectively
  whose old owner was the removed slot); everything else stays put.
  This is the property that makes worker restarts free and pool
  resizes cheap.

The routing digest itself (what the router actually hashes) is checked
for agreement with the registry's admission digest, so a router can
always predict where the single-process worker will file a session.
"""

import string

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.registry import routing_digest
from repro.service.shard import DEFAULT_REPLICAS, HashRing, worker_slots

RING_SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

digests = st.text(alphabet=string.hexdigits.lower(), min_size=1, max_size=40)
slot_counts = st.integers(min_value=1, max_value=12)


class TestRingTotality:
    @RING_SETTINGS
    @given(digest=digests, count=slot_counts)
    def test_every_digest_maps_to_exactly_one_configured_slot(
        self, digest, count
    ):
        slots = worker_slots(count)
        owner = HashRing(slots).lookup(digest)
        assert owner in slots

    @RING_SETTINGS
    @given(digest=digests, count=slot_counts)
    def test_independent_rings_agree(self, digest, count):
        slots = worker_slots(count)
        assert HashRing(slots).lookup(digest) == HashRing(slots).lookup(digest)

    @RING_SETTINGS
    @given(digest=digests, count=slot_counts)
    def test_slot_order_is_irrelevant(self, digest, count):
        slots = worker_slots(count)
        shuffled = list(reversed(slots))
        assert HashRing(slots).lookup(digest) == HashRing(shuffled).lookup(
            digest
        )

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_slots_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["shard-0", "shard-0"])


class TestRingBalance:
    @pytest.mark.parametrize("count", [2, 4, 8])
    def test_no_slot_starves_or_hoards(self, count):
        """Over many random-ish digests, ownership is roughly uniform.

        The tolerance is deliberately generous (half to double the fair
        share): consistent hashing with 64 virtual points per slot is
        not perfectly uniform, but a starved or hoarding slot would be
        a routing bug worth failing on.
        """
        ring = HashRing(worker_slots(count))
        samples = 4000
        tallies = {slot: 0 for slot in worker_slots(count)}
        for index in range(samples):
            tallies[ring.lookup(f"digest-{index:06d}")] += 1
        fair = samples / count
        for slot, owned in tallies.items():
            assert fair * 0.5 <= owned <= fair * 2.0, (slot, tallies)

    def test_more_replicas_tighten_the_spread(self):
        """Sanity: the replica knob is wired through (1 vs default)."""

        def spread(replicas):
            ring = HashRing(worker_slots(4), replicas=replicas)
            tallies = {}
            for index in range(2000):
                slot = ring.lookup(f"digest-{index:06d}")
                tallies[slot] = tallies.get(slot, 0) + 1
            return max(tallies.values()) - min(tallies.values(), default=0)

        assert spread(DEFAULT_REPLICAS) <= spread(1)


class TestMinimalDisruption:
    @RING_SETTINGS
    @given(count=st.integers(min_value=1, max_value=8))
    def test_growing_by_one_only_moves_digests_onto_the_new_slot(
        self, count
    ):
        before = HashRing(worker_slots(count))
        after = HashRing(worker_slots(count + 1))
        new_slot = worker_slots(count + 1)[-1]
        moved = 0
        samples = 600
        for index in range(samples):
            digest = f"digest-{index:06d}"
            old, new = before.lookup(digest), after.lookup(digest)
            if old != new:
                # The *only* legal move is onto the slot that appeared.
                assert new == new_slot, (digest, old, new)
                moved += 1
        # ~1/(count+1) of digests should move; allow a wide band but
        # fail if growth reshuffles half the keyspace (mod-N hashing
        # would move ~count/(count+1) of them).
        assert moved <= samples * 2.5 / (count + 1), moved

    @RING_SETTINGS
    @given(count=st.integers(min_value=2, max_value=8))
    def test_shrinking_by_one_only_moves_the_lost_slots_digests(self, count):
        before = HashRing(worker_slots(count))
        after = HashRing(worker_slots(count - 1))
        lost_slot = worker_slots(count)[-1]
        for index in range(600):
            digest = f"digest-{index:06d}"
            old, new = before.lookup(digest), after.lookup(digest)
            if old != lost_slot:
                # Digests not owned by the departing slot must not move.
                assert new == old, (digest, old, new)
            else:
                assert new != lost_slot

    def test_restart_is_not_a_resize(self):
        """Same slot names → identical ring, regardless of object age.

        This is why a supervisor restart (new pid, new port, same
        ``shard-i`` name) never migrates sessions: the ring only sees
        names.
        """
        first = HashRing(worker_slots(4))
        second = HashRing(worker_slots(4))
        for index in range(500):
            digest = f"digest-{index:06d}"
            assert first.lookup(digest) == second.lookup(digest)


class TestRoutingDigest:
    def test_router_and_registry_agree_on_placement(self):
        """The router hashes the same digest the worker files under."""
        program = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).\n"
        database = "e(a, b).\ne(b, c).\n"
        digest = routing_digest(program, database, "t")
        # Any whitespace/comment-preserving variation of the same query
        # canonicalizes to the same digest, hence the same shard.
        noisy = routing_digest(
            "% comment\n" + program + "\n", database + "\n", "t"
        )
        assert digest == noisy
        ring = HashRing(worker_slots(4))
        assert ring.lookup(digest) == ring.lookup(noisy)

    def test_distinct_queries_get_distinct_digests(self):
        program = "t(X, Y) :- e(X, Y).\n"
        assert routing_digest(program, "e(a, b).\n", "t") != routing_digest(
            program, "e(a, c).\n", "t"
        )
