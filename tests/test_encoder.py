"""Tests for the SAT encoding ``phi_(t, D, Q)`` (Section 5.1 / App. D.2)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.enumerate import enumerate_why_unambiguous
from repro.provenance.grounding import FactNotDerivable
from repro.sat.enumeration import enumerate_models
from repro.sat.solver import CDCLSolver
from repro.core.encoder import encode_why_provenance

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
QUERY = DatalogQuery(PROGRAM, "a")
DB1 = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))
DB4 = Database(parse_database(
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."
))


def sat_supports(encoding):
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    projection = encoding.projection_variables()
    supports = set()
    for record in enumerate_models(encoding.cnf, projection=projection, solver=solver):
        supports.add(
            frozenset(
                fact
                for fact, var in encoding.database_fact_vars.items()
                if record.assignment[var]
            )
        )
    return frozenset(supports)


class TestProposition15:
    """whyUN(t, D, Q) == [[phi]] — models project exactly onto members."""

    @pytest.mark.parametrize("db,tup", [
        (DB1, ("d",)), (DB1, ("a",)), (DB1, ("b",)),
        (DB4, ("d",)), (DB4, ("c",)),
    ])
    @pytest.mark.parametrize("acyclicity", ["vertex-elimination", "transitive-closure"])
    def test_models_equal_oracle(self, db, tup, acyclicity):
        encoding = encode_why_provenance(QUERY, db, tup, acyclicity=acyclicity)
        assert sat_supports(encoding) == enumerate_why_unambiguous(QUERY, db, tup)


class TestModelDecoding:
    def test_decoded_dag_is_valid_compressed_dag(self):
        encoding = encode_why_provenance(QUERY, DB1, ("d",))
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve()
        dag = encoding.decode_compressed_dag(solver.model())
        dag.validate(PROGRAM, DB1, expected_root=QUERY.answer_atom(("d",)))
        assert dag.support() == encoding.decode_support(solver.model())

    def test_decoded_tree_is_unambiguous(self):
        encoding = encode_why_provenance(QUERY, DB4, ("d",))
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve()
        dag = encoding.decode_compressed_dag(solver.model())
        tree = dag.unravel(PROGRAM)
        tree.validate(PROGRAM, DB4)
        assert tree.is_unambiguous()

    def test_compressed_dag_requires_single_copy(self):
        encoding = encode_why_provenance(QUERY, DB4, ("d",), copies=2)
        with pytest.raises(ValueError):
            encoding.decode_compressed_dag({})


class TestMembershipAssumptions:
    def test_accepting_assumptions(self):
        encoding = encode_why_provenance(QUERY, DB1, ("d",))
        member = frozenset(parse_database("s(a). t(a, a, d)."))
        assumptions = encoding.membership_assumptions(member)
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve(assumptions=assumptions)

    def test_rejecting_assumptions(self):
        encoding = encode_why_provenance(QUERY, DB1, ("d",))
        non_member = frozenset(parse_database("s(a). t(a, a, b)."))
        assumptions = encoding.membership_assumptions(non_member)
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert not solver.solve(assumptions=assumptions)

    def test_out_of_closure_subset(self):
        tc = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            """
        )
        tc_query = DatalogQuery(tc, "tc")
        tc_db = Database(parse_database("e(a, b). e(b, c)."))
        encoding = encode_why_provenance(tc_query, tc_db, ("a", "b"))
        # e(b, c) is not in the downward closure of tc(a, b).
        outside = frozenset(parse_database("e(a, b). e(b, c)."))
        assert encoding.membership_assumptions(outside) is None


class TestCopiesGeneralization:
    def test_copies_two_accepts_example4_full_database(self):
        """The full DB of Example 4 needs two nodes labeled a(c)."""
        enc1 = encode_why_provenance(QUERY, DB4, ("d",), copies=1)
        enc2 = encode_why_provenance(QUERY, DB4, ("d",), copies=2)
        full = DB4.facts()
        for enc, expected in ((enc1, False), (enc2, True)):
            solver = CDCLSolver()
            solver.add_cnf(enc.cnf)
            assumptions = enc.membership_assumptions(full)
            assert bool(solver.solve(assumptions=assumptions)) is expected

    def test_copies_monotone(self):
        """Every support reachable with k copies stays reachable with k+1."""
        for tup in (("d",), ("c",)):
            s2 = sat_supports(encode_why_provenance(QUERY, DB4, tup, copies=2))
            s3 = sat_supports(encode_why_provenance(QUERY, DB4, tup, copies=3))
            s1 = sat_supports(encode_why_provenance(QUERY, DB4, tup, copies=1))
            assert s1 <= s2 <= s3

    def test_copies_stay_within_why(self):
        from repro.provenance.enumerate import enumerate_why

        why = enumerate_why(QUERY, DB4, ("d",))
        s3 = sat_supports(encode_why_provenance(QUERY, DB4, ("d",), copies=3))
        assert s3 <= why

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            encode_why_provenance(QUERY, DB1, ("d",), copies=0)


class TestStatsAndErrors:
    def test_stats_populated(self):
        encoding = encode_why_provenance(QUERY, DB1, ("d",))
        stats = encoding.stats
        assert stats.closure_nodes > 0
        assert stats.clauses == len(encoding.cnf.clauses)
        assert stats.acyclicity.method == "vertex-elimination"

    def test_non_answer_raises(self):
        with pytest.raises(FactNotDerivable):
            encode_why_provenance(QUERY, DB1, ("zzz",))

    def test_unknown_acyclicity(self):
        with pytest.raises(ValueError):
            encode_why_provenance(QUERY, DB1, ("d",), acyclicity="magic")

    def test_wrong_closure_root(self):
        from repro.provenance.grounding import downward_closure

        closure = downward_closure(PROGRAM, DB1, QUERY.answer_atom(("b",)))
        with pytest.raises(ValueError, match="rooted"):
            encode_why_provenance(QUERY, DB1, ("d",), closure=closure)


class TestPhaseHints:
    def test_hints_describe_a_model(self):
        from repro.datalog.engine import evaluate

        evaluation = evaluate(PROGRAM, DB1)
        encoding = encode_why_provenance(QUERY, DB1, ("d",))
        hints = encoding.phase_hints(evaluation.ranks)
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        solver.set_phases(hints)
        assert solver.solve()
        # The warm start makes the first model the minimal-rank derivation.
        assert encoding.decode_support(solver.model()) == frozenset(
            parse_database("s(a). t(a, a, d).")
        )
