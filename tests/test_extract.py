"""Tests for witness proof-tree extraction."""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.enumerate import enumerate_why_unambiguous
from repro.provenance.extract import (
    enumerate_witness_trees,
    extract_minimal_depth_tree,
    extract_tree_with_support,
)
from repro.provenance.grounding import FactNotDerivable
from repro.provenance.proof_tree import is_minimal_depth

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
QUERY = DatalogQuery(PROGRAM, "a")
DB1 = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))
DB4 = Database(parse_database(
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."
))

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_QUERY = DatalogQuery(TC, "tc")
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c)."))


class TestMinimalDepthExtraction:
    @pytest.mark.parametrize(
        "program,db,fact",
        [
            (PROGRAM, DB1, "a(d)"),
            (PROGRAM, DB1, "a(a)"),
            (PROGRAM, DB4, "a(d)"),
            (TC, TC_DB, "tc(a, d)"),
            (TC, TC_DB, "tc(a, c)"),
        ],
    )
    def test_extracted_tree_is_valid_and_minimal(self, program, db, fact):
        target = parse_atom(fact)
        tree = extract_minimal_depth_tree(program, db, target)
        tree.validate(program, db, expected_root=target)
        assert is_minimal_depth(tree, program, db)
        assert tree.is_unambiguous()

    def test_depth_equals_rank(self):
        evaluation = evaluate(TC, TC_DB)
        tree = extract_minimal_depth_tree(TC, TC_DB, parse_atom("tc(a, d)"), evaluation)
        assert tree.depth() == evaluation.ranks[parse_atom("tc(a, d)")]

    def test_underivable(self):
        with pytest.raises(FactNotDerivable):
            extract_minimal_depth_tree(TC, TC_DB, parse_atom("tc(d, a)"))

    def test_leaf_fact(self):
        tree = extract_minimal_depth_tree(TC, TC_DB, parse_atom("e(a, b)"))
        assert tree.depth() == 0
        assert tree.support() == frozenset({parse_atom("e(a, b)")})


class TestSupportDirectedExtraction:
    def test_member_produces_matching_tree(self):
        family = enumerate_why_unambiguous(QUERY, DB4, ("d",))
        for member in family:
            tree = extract_tree_with_support(QUERY, DB4, ("d",), member)
            assert tree is not None
            tree.validate(PROGRAM, DB4)
            assert tree.is_unambiguous()
            assert tree.support() == member

    def test_non_member_returns_none(self):
        assert extract_tree_with_support(QUERY, DB4, ("d",), DB4.facts()) is None
        assert extract_tree_with_support(QUERY, DB4, ("d",), frozenset()) is None

    def test_non_answer_returns_none(self):
        assert extract_tree_with_support(QUERY, DB4, ("zzz",), frozenset()) is None


class TestWitnessStream:
    def test_one_tree_per_member(self):
        trees = list(enumerate_witness_trees(QUERY, DB4, ("d",)))
        supports = {tree.support() for tree in trees}
        assert supports == enumerate_why_unambiguous(QUERY, DB4, ("d",))
        for tree in trees:
            tree.validate(PROGRAM, DB4)
            assert tree.is_unambiguous()

    def test_limit(self):
        trees = list(enumerate_witness_trees(TC_QUERY, TC_DB, ("a", "c"), limit=1))
        assert len(trees) == 1

    def test_non_answer_streams_nothing(self):
        assert list(enumerate_witness_trees(QUERY, DB1, ("zzz",))) == []
