"""Tests for the FO rewriting of non-recursive queries (Theorems 9 / 36)."""

import itertools

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.enumerate import enumerate_why, enumerate_why_minimal_depth
from repro.core.fo_rewriting import (
    FORewriting,
    RewritingBudgetExceeded,
    decide_why_via_rewriting,
    enumerate_symbolic_trees,
    rewrite,
)

# A small non-recursive query with two derivations per level.
NR_PROGRAM = parse_program(
    """
    p(X) :- q(X, Y).
    p(X) :- r(X).
    top(X) :- p(X), u(X).
    """
)
NR_QUERY = DatalogQuery(NR_PROGRAM, "top")

NR_DB = Database(parse_database(
    "q(a, b). q(a, c). r(a). u(a). r(b). u(b)."
))


def powerset(db):
    facts = sorted(db.facts(), key=str)
    for r in range(len(facts) + 1):
        yield from (frozenset(c) for c in itertools.combinations(facts, r))


class TestSymbolicTrees:
    def test_counts_expansions(self):
        cqs = enumerate_symbolic_trees(NR_QUERY)
        # top <- p * {q-rule, r-rule}: two shapes.
        assert len(cqs) == 2
        preds = {tuple(sorted(a.pred for a in cq.atoms)) for cq in cqs}
        assert preds == {("q", "u"), ("r", "u")}

    def test_depths(self):
        cqs = enumerate_symbolic_trees(NR_QUERY)
        assert {cq.depth for cq in cqs} == {2}

    def test_recursive_query_rejected(self):
        tc = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            """
        )
        with pytest.raises(ValueError, match="non-recursive"):
            enumerate_symbolic_trees(DatalogQuery(tc, "tc"))

    def test_budget(self):
        # A program with many alternative expansions exceeds a budget of 0.
        with pytest.raises(RewritingBudgetExceeded):
            enumerate_symbolic_trees(NR_QUERY, max_trees=0)

    def test_head_constants_propagate(self):
        program = parse_program("p(X) :- q(X, k).")
        cqs = enumerate_symbolic_trees(DatalogQuery(program, "p"))
        assert len(cqs) == 1
        assert cqs[0].atoms[0].args[1] == "k"


class TestLemma12:
    """Membership via the rewriting == membership via proof-tree search."""

    @pytest.mark.parametrize("tup", [("a",), ("b",)])
    def test_all_subsets(self, tup):
        rewriting = rewrite(NR_QUERY)
        family = enumerate_why(NR_QUERY, NR_DB, tup)
        for subset in powerset(NR_DB):
            expected = subset in family
            got = rewriting.check(subset, tup)
            assert got == expected, (tup, sorted(map(str, subset)))

    def test_decide_via_rewriting_frontend(self):
        member = frozenset(parse_database("r(a). u(a)."))
        assert decide_why_via_rewriting(NR_QUERY, NR_DB, ("a",), member)
        non_member = frozenset(parse_database("r(a). u(a). r(b)."))
        assert not decide_why_via_rewriting(NR_QUERY, NR_DB, ("a",), non_member)

    def test_subset_validated_against_database(self):
        with pytest.raises(ValueError):
            decide_why_via_rewriting(
                NR_QUERY, NR_DB, ("a",), parse_database("r(zzz).")
            )

    def test_variable_identification_handled(self):
        """Non-injective matches (the cq-up-to-identification cases)."""
        program = parse_program("pair(X, Y) :- e(X, Y).")
        query = DatalogQuery(program, "pair")
        db = Database(parse_database("e(a, a)."))
        rewriting = rewrite(query)
        assert rewriting.check(db.facts(), ("a", "a"))
        assert not rewriting.check(db.facts(), ("a", "b"))


class TestTheorem36:
    """The minimal-depth rewriting agrees with the whyMD oracle on D'.

    The rewriting judges depth-minimality against trees over D' (the
    formula's phi4 only sees D'); the oracle comparison therefore
    evaluates whyMD over D' as well (see the module docstring for the
    discussion of this subtlety).
    """

    # A query where the same answer has witnesses of different depth.
    DEEP_PROGRAM = parse_program(
        """
        mid(X) :- base(X).
        goal(X) :- mid(X).
        goal(X) :- direct(X).
        """
    )
    DEEP_QUERY = DatalogQuery(DEEP_PROGRAM, "goal")

    def test_depth_guard(self):
        rewriting = rewrite(self.DEEP_QUERY)
        both = Database(parse_database("base(a). direct(a)."))
        only_deep = frozenset(parse_database("base(a)."))
        only_shallow = frozenset(parse_database("direct(a)."))
        # Alone, the deep witness is depth-minimal over itself.
        assert rewriting.check_minimal_depth(only_deep, ("a",))
        assert rewriting.check_minimal_depth(only_shallow, ("a",))
        # Together, the shallow witness wins; the pair covers via depth-2
        # tree only, and no single tree covers both facts, so the union is
        # not a member at all.
        assert not rewriting.check_minimal_depth(both.facts(), ("a",))

    @pytest.mark.parametrize("tup", [("a",)])
    def test_against_oracle_on_subset_database(self, tup):
        rewriting = rewrite(self.DEEP_QUERY)
        db = Database(parse_database("base(a). direct(a)."))
        for subset in powerset(db):
            sub_db = Database(subset)
            expected = subset in enumerate_why_minimal_depth(
                self.DEEP_QUERY, sub_db, tup
            )
            assert rewriting.check_minimal_depth(subset, tup) == expected, sorted(
                map(str, subset)
            )


class TestDataIndependence:
    def test_rewriting_reusable_across_databases(self):
        rewriting = rewrite(NR_QUERY)
        db2 = Database(parse_database("q(z, w). u(z)."))
        member = db2.facts()
        assert rewriting.check(member, ("z",))
        assert not rewriting.check(member, ("w",))
