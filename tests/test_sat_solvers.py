"""Tests for the CDCL solver, the DPLL baseline, and their agreement.

The CDCL solver substitutes Glucose in the reproduction, so its
correctness is load-bearing: beyond unit tests, it is differential-tested
against DPLL and a truth-table oracle on random formulas.
"""

import itertools
import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import enumerate_models_dpll, solve_dpll
from repro.sat.enumeration import all_models, count_models, enumerate_models
from repro.sat.solver import CDCLSolver, _luby, solve_cnf


def brute_force_satisfiable(cnf: CNF) -> bool:
    for bits in itertools.product((False, True), repeat=cnf.num_vars):
        assignment = {i + 1: bits[i] for i in range(cnf.num_vars)}
        if cnf.evaluate(assignment):
            return True
    return False


def random_cnf(num_vars: int, num_clauses: int, width: int, seed: int) -> CNF:
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        cnf.add_clause(
            tuple(v if rng.random() < 0.5 else -v for v in variables)
        )
    return cnf


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestCDCLBasics:
    def test_trivial_sat(self):
        cnf = CNF(1)
        cnf.add_clause((1,))
        model = solve_cnf(cnf)
        assert model == {1: True}

    def test_trivial_unsat(self):
        cnf = CNF(1)
        cnf.add_clause((1,))
        cnf.add_clause((-1,))
        assert solve_cnf(cnf) is None

    def test_empty_clause_unsat(self):
        cnf = CNF(1)
        cnf.add_clause(())
        solver = CDCLSolver()
        # add_cnf of an empty clause must mark the solver unsatisfiable.
        solver.add_cnf(cnf)
        assert solver.solve() is False

    def test_propagation_chain(self):
        cnf = CNF(4)
        cnf.add_clause((1,))
        cnf.add_clause((-1, 2))
        cnf.add_clause((-2, 3))
        cnf.add_clause((-3, 4))
        model = solve_cnf(cnf)
        assert model == {1: True, 2: True, 3: True, 4: True}

    def test_model_satisfies_formula(self):
        cnf = random_cnf(12, 40, 3, seed=5)
        model = solve_cnf(cnf)
        if model is not None:
            assert cnf.evaluate(model)

    def test_pigeonhole_unsat(self):
        # 4 pigeons, 3 holes: var p(i,h) = 3*i + h + 1.
        cnf = CNF(12)
        for i in range(4):
            cnf.add_clause(tuple(3 * i + h + 1 for h in range(3)))
        for h in range(3):
            for i in range(4):
                for j in range(i + 1, 4):
                    cnf.add_clause((-(3 * i + h + 1), -(3 * j + h + 1)))
        assert solve_cnf(cnf) is None

    def test_conflict_limit_returns_none(self):
        cnf = CNF(12)
        for i in range(4):
            cnf.add_clause(tuple(3 * i + h + 1 for h in range(3)))
        for h in range(3):
            for i in range(4):
                for j in range(i + 1, 4):
                    cnf.add_clause((-(3 * i + h + 1), -(3 * j + h + 1)))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve(conflict_limit=1) is None

    def test_tautology_skipped(self):
        solver = CDCLSolver(2)
        assert solver.add_clause((1, -1))
        assert solver.solve() is True


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve(assumptions=[-1]) is True
        assert solver.model()[2] is True
        # Assumptions are not permanent.
        assert solver.solve(assumptions=[1]) is True
        assert solver.solve(assumptions=[-1, -2]) is False
        assert solver.solve() is True

    def test_conflicting_assumption_pair(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve(assumptions=[1, -1]) is False
        assert solver.solve() is True


class TestIncremental:
    def test_add_clause_between_solves(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve() is True
        model = solver.model()
        blocking = [(-v if model[v] else v) for v in (1, 2)]
        assert solver.add_clause(blocking)
        assert solver.solve() is True
        assert solver.model() != model

    def test_phase_hints(self):
        cnf = CNF(3)
        cnf.add_clause((1, 2, 3))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.set_phases({1: False, 2: True, 3: False})
        assert solver.solve() is True
        assert solver.model()[2] is True


class TestDPLL:
    def test_simple(self):
        cnf = CNF(2)
        cnf.add_clause((1,))
        cnf.add_clause((-1, -2))
        model = solve_dpll(cnf)
        assert model == {1: True, 2: False}

    def test_assumption_conflict(self):
        cnf = CNF(1)
        cnf.add_clause((1,))
        assert solve_dpll(cnf, assumptions=[-1]) is None

    def test_budget(self):
        from repro.sat.dpll import DPLLBudgetExceeded

        # Pigeonhole (4 pigeons, 3 holes) forces real branching.
        cnf = CNF(12)
        for i in range(4):
            cnf.add_clause(tuple(3 * i + h + 1 for h in range(3)))
        for h in range(3):
            for i in range(4):
                for j in range(i + 1, 4):
                    cnf.add_clause((-(3 * i + h + 1), -(3 * j + h + 1)))
        with pytest.raises(DPLLBudgetExceeded):
            solve_dpll(cnf, max_nodes=2)


class TestDifferential:
    @pytest.mark.parametrize("seed", range(30))
    def test_cdcl_agrees_with_brute_force(self, seed):
        cnf = random_cnf(8, 30, 3, seed=seed)
        expected = brute_force_satisfiable(cnf)
        model = solve_cnf(cnf)
        assert (model is not None) == expected
        if model is not None:
            assert cnf.evaluate(model)

    @pytest.mark.parametrize("seed", range(30))
    def test_cdcl_agrees_with_dpll(self, seed):
        cnf = random_cnf(14, 55, 3, seed=seed + 100)
        assert (solve_cnf(cnf) is not None) == (solve_dpll(cnf) is not None)

    @pytest.mark.parametrize("seed", range(10))
    def test_unsat_cores_harder_instances(self, seed):
        # Over-constrained random instances are mostly UNSAT; verify
        # agreement either way.
        cnf = random_cnf(10, 70, 3, seed=seed + 500)
        assert (solve_cnf(cnf) is not None) == brute_force_satisfiable(cnf)


class TestEnumeration:
    def test_count_models_full_projection(self):
        cnf = CNF(3)
        cnf.add_clause((1, 2, 3))
        assert count_models(cnf) == 7

    def test_projection_collapses_models(self):
        cnf = CNF(3)
        cnf.add_clause((1, 2, 3))
        assert count_models(cnf, projection=[1]) == 2

    def test_matches_dpll_enumeration(self):
        cnf = random_cnf(6, 12, 3, seed=7)
        cdcl_models = {
            frozenset(m.items()) for m in all_models(cnf)
        }
        dpll_models = {
            frozenset(m.items()) for m in enumerate_models_dpll(cnf)
        }
        assert cdcl_models == dpll_models

    def test_limit(self):
        cnf = CNF(4)
        cnf.add_clause((1, 2, 3, 4))
        assert count_models(cnf, limit=5) == 5

    def test_records_carry_delays(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        records = list(enumerate_models(cnf))
        assert len(records) == 3
        assert all(r.delay_seconds >= 0 for r in records)
        assert [r.index for r in records] == [0, 1, 2]
