"""The snapshot store's corruption matrix and registry-level recovery.

Complementary to ``test_store_faults.py`` (which enumerates crash
points): here the on-disk state is damaged *byte-wise* — truncated
snapshot, bit-flipped body, torn WAL line, version-gapped WAL — and the
contract under test is the soft half of recovery: every kind of damage
degrades to a cold admission with a counted, logged reason, and is never
surfaced to the client as an exception or a silently wrong answer.
"""

import logging
import threading

import pytest

from repro.scenarios.synthetic import generate_instance
from repro.service.protocol import ServiceError
from repro.service.registry import SessionRegistry
from repro.service.store import SnapshotStore

ANSWER = None  # instances carry their own answer predicate


@pytest.fixture
def instance():
    return generate_instance("chain", size=8, seed=11, delta_rounds=2)


def _admit(state_dir, instance):
    registry = SessionRegistry(store=SnapshotStore(str(state_dir)))
    entry, admitted = registry.acquire(
        instance.program_text(),
        instance.database_text(),
        instance.query.answer_predicate,
    )
    assert admitted and not entry.rehydrated
    return registry, entry


def _reacquire(state_dir, instance):
    """A 'restarted daemon': a fresh registry over the same state dir."""
    store = SnapshotStore(str(state_dir))
    registry = SessionRegistry(store=store)
    entry, admitted = registry.acquire(
        instance.program_text(),
        instance.database_text(),
        instance.query.answer_predicate,
    )
    assert admitted
    return store, entry


# -- the corruption matrix -----------------------------------------------------


def test_truncated_snapshot_degrades_to_cold_admission(tmp_path, instance, caplog):
    registry, entry = _admit(tmp_path, instance)
    expected = entry.session.answers()
    path = registry.store.snapshot_path(entry.digest)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[:-10])

    with caplog.at_level(logging.WARNING, logger="repro.service.store"):
        store, recovered = _reacquire(tmp_path, instance)
    assert not recovered.rehydrated  # cold fallback, not rehydration
    assert recovered.session.answers() == expected
    assert store.miss_reasons == {"snapshot-torn": 1}
    assert "snapshot-torn" in caplog.text


def test_bit_flipped_snapshot_body_fails_checksum(tmp_path, instance, caplog):
    registry, entry = _admit(tmp_path, instance)
    expected = entry.session.answers()
    path = registry.store.snapshot_path(entry.digest)
    with open(path, "rb") as handle:
        data = handle.read()
    flipped = data[:-1] + bytes([data[-1] ^ 0xFF])
    assert len(flipped) == len(data)  # same length: only the checksum trips
    with open(path, "wb") as handle:
        handle.write(flipped)

    with caplog.at_level(logging.WARNING, logger="repro.service.store"):
        store, recovered = _reacquire(tmp_path, instance)
    assert not recovered.rehydrated
    assert recovered.session.answers() == expected
    assert store.miss_reasons == {"snapshot-checksum": 1}
    assert "snapshot-checksum" in caplog.text


def test_torn_final_wal_line_is_truncated_and_replay_succeeds(
    tmp_path, instance, caplog
):
    registry, entry = _admit(tmp_path, instance)
    for delta in instance.deltas:
        with entry.lock:
            receipt = entry.session.update(delta)
            registry.record_update(entry, receipt)
    expected = entry.session.answers()
    version = entry.session.version
    assert version > 0, "the instance must produce effective updates"

    wal = registry.store.wal_path(entry.digest)
    with open(wal, "ab") as handle:
        handle.write(b"deadbeef {this is not a committed record")

    with caplog.at_level(logging.WARNING, logger="repro.service.store"):
        store, recovered = _reacquire(tmp_path, instance)
    assert recovered.rehydrated  # the valid prefix still serves
    assert recovered.session.version == version
    assert recovered.session.answers() == expected
    assert "torn WAL tail" in caplog.text
    with open(wal, "rb") as handle:
        repaired = handle.read()
    assert not repaired.endswith(b"committed record")  # tail truncated


def test_wal_version_gap_degrades_to_cold_admission(tmp_path, instance, caplog):
    registry, entry = _admit(tmp_path, instance)
    expected = entry.session.answers()
    # The snapshot is at version 0; a record stamped v=2 leaves committed
    # version 1 unreachable, so serving snapshot+WAL could be stale.
    registry.store.append_wal(entry.digest, 2, ["+e(1,2)."])

    with caplog.at_level(logging.WARNING, logger="repro.service.store"):
        store, recovered = _reacquire(tmp_path, instance)
    assert not recovered.rehydrated
    assert recovered.session.answers() == expected
    assert store.miss_reasons == {"wal-version-gap": 1}
    assert "wal-version-gap" in caplog.text


def test_knob_mismatch_is_a_counted_miss(tmp_path, instance):
    registry, entry = _admit(tmp_path, instance)
    store = SnapshotStore(str(tmp_path))
    assert store.rehydrate(entry.digest, acyclicity="some-other-encoding") is None
    assert store.miss_reasons == {"snapshot-knob-mismatch": 1}


def test_concurrent_double_demotion_is_safe(tmp_path, instance):
    registry, entry = _admit(tmp_path, instance)
    expected = entry.session.answers()
    barrier = threading.Barrier(2)
    errors = []

    def demote():
        barrier.wait()
        try:
            registry._demote_entries([entry])
        except Exception as exc:  # pragma: no cover - the failure under test
            errors.append(exc)

    threads = [threading.Thread(target=demote) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert registry.demotions == 2
    assert registry.demotion_failures == 0
    recovered = SnapshotStore(str(tmp_path)).rehydrate(entry.digest)
    assert recovered is not None
    assert recovered.answers() == expected


# -- registry semantics around the store ---------------------------------------


def test_unknown_digest_still_raises_unknown_session(tmp_path):
    registry = SessionRegistry(store=SnapshotStore(str(tmp_path)))
    with pytest.raises(ServiceError) as excinfo:
        registry.get("0" * 16)
    assert excinfo.value.code == "unknown-session"


def test_eviction_demotes_and_get_rehydrates_transparently(tmp_path, instance):
    registry = SessionRegistry(max_sessions=1, store=SnapshotStore(str(tmp_path)))
    entry, _ = registry.acquire(
        instance.program_text(),
        instance.database_text(),
        instance.query.answer_predicate,
    )
    expected = entry.session.answers()
    other = generate_instance("tree", size=6, seed=3, delta_rounds=0)
    registry.acquire(
        other.program_text(), other.database_text(), other.query.answer_predicate
    )
    assert registry.evictions == 1
    assert registry.demotions == 1

    revived = registry.get(entry.digest)
    assert revived.rehydrated
    assert revived.session.stats.evaluations == 1
    assert revived.session.answers() == expected
    assert registry.rehydrations == 1
