"""Tests bridging the theory results to the executable artifacts.

Each test class corresponds to a lemma/proposition of the paper and checks
its computational content on concrete instances.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.grounding import downward_closure, min_dag_depth
from repro.provenance.proof_dag import CompressedDAG, ProofDAG
from repro.provenance.proof_tree import ProofTree, ProofTreeNode

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
QUERY = DatalogQuery(PROGRAM, "a")
DB1 = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)


class TestProposition5UnravellingDirection:
    """(2) => (1): unravelling a proof DAG yields a proof tree with the
    same support."""

    def test_every_compressed_dag_choice_unravels(self):
        closure = downward_closure(PROGRAM, DB1, parse_atom("a(d)"))
        # Build the compressed DAG using the recursive derivation of a(a).
        choice = {
            parse_atom("a(d)"): frozenset({parse_atom("a(a)"), parse_atom("t(a, a, d)")}),
            parse_atom("a(a)"): frozenset({
                parse_atom("a(b)"), parse_atom("a(c)"), parse_atom("t(b, c, a)")
            }),
            parse_atom("a(b)"): frozenset({parse_atom("a2"), parse_atom("t(a, a, b)")}),
        }
        # a(b), a(c) derived from a second a(a) node is impossible in a
        # compressed DAG (single node per fact) without a cycle:
        # a(a) -> a(b) -> a(a). The SAT formula must therefore reject it.
        choice[parse_atom("a(b)")] = frozenset({
            parse_atom("a(a)"), parse_atom("t(a, a, b)")
        })
        dag = CompressedDAG(parse_atom("a(d)"), choice)
        assert not dag.is_acyclic()

    def test_dag_depth_lower_bounds_tree_depth(self):
        db = Database(parse_database("e(a, b). e(b, c)."))
        closure = downward_closure(TC, db, parse_atom("tc(a, c)"))
        dag = CompressedDAG(
            parse_atom("tc(a, c)"),
            {
                parse_atom("tc(a, c)"): frozenset({
                    parse_atom("tc(a, b)"), parse_atom("e(b, c)")
                }),
                parse_atom("tc(a, b)"): frozenset({parse_atom("e(a, b)")}),
            },
        )
        tree = dag.unravel(TC)
        assert tree.depth() == dag.to_proof_dag(TC).depth() == 2


class TestLemma29RankEqualsMinDagDepth:
    @pytest.mark.parametrize(
        "edges,fact,expected",
        [
            ("e(a, b).", "tc(a, b)", 1),
            ("e(a, b). e(b, c).", "tc(a, c)", 2),
            ("e(a, b). e(b, c). e(a, c).", "tc(a, c)", 1),
            ("e(a, a).", "tc(a, a)", 1),
        ],
    )
    def test_rank(self, edges, fact, expected):
        db = Database(parse_database(edges))
        assert min_dag_depth(TC, db, parse_atom(fact)) == expected

    def test_rank_bounds_all_proof_dags(self):
        """No proof DAG can be shallower than the rank."""
        db = Database(parse_database("e(a, b). e(b, c)."))
        target = parse_atom("tc(a, c)")
        rank = min_dag_depth(TC, db, target)
        # The only derivations go through tc(a, b): depth exactly 2.
        labels = {0: target, 1: parse_atom("tc(a, b)"), 2: parse_atom("e(a, b)"),
                  3: parse_atom("e(b, c)")}
        dag = ProofDAG(labels, {0: [1, 3], 1: [2]}, 0)
        dag.validate(TC, db)
        assert dag.depth() >= rank


class TestUnambiguousImpliesNonRecursive:
    """Every unambiguous proof tree is non-recursive (used in Section 5)."""

    def test_on_generated_trees(self):
        from repro.provenance.enumerate import enumerate_why_unambiguous
        from repro.core.encoder import encode_why_provenance
        from repro.sat.solver import CDCLSolver

        for tup in (("d",), ("a",), ("b",)):
            encoding = encode_why_provenance(QUERY, DB1, tup)
            solver = CDCLSolver()
            solver.add_cnf(encoding.cnf)
            while solver.solve():
                model = solver.model()
                tree = encoding.decode_compressed_dag(model).unravel(PROGRAM)
                assert tree.is_unambiguous()
                assert tree.is_non_recursive()
                blocking = [
                    (-v if model[v] else v)
                    for v in encoding.database_fact_vars.values()
                ]
                if not solver.add_clause(blocking):
                    break


class TestSupportSubsetObservation:
    """A proof tree w.r.t. D with support D' is a proof tree w.r.t. D'."""

    def test_restriction(self):
        leaf_s = ProofTreeNode(parse_atom("s(a)"))
        a_a1 = ProofTreeNode(parse_atom("a(a)"), [leaf_s])
        a_a2 = ProofTreeNode(parse_atom("a(a)"), [ProofTreeNode(parse_atom("s(a)"))])
        tree = ProofTree(ProofTreeNode(
            parse_atom("a(d)"), [a_a1, a_a2, ProofTreeNode(parse_atom("t(a, a, d)"))]
        ))
        support = tree.support()
        tree.validate(PROGRAM, DB1)
        tree.validate(PROGRAM, Database(support))  # still valid on D' alone


class TestScountBoundsFromLemmas:
    def test_scount_one_iff_unambiguous(self):
        from repro.provenance.enumerate import enumerate_why_unambiguous

        leaf_s = ProofTreeNode(parse_atom("s(a)"))
        a_a = ProofTreeNode(parse_atom("a(a)"), [leaf_s])
        a_a2 = ProofTreeNode(parse_atom("a(a)"), [ProofTreeNode(parse_atom("s(a)"))])
        tree = ProofTree(ProofTreeNode(
            parse_atom("a(d)"), [a_a, a_a2, ProofTreeNode(parse_atom("t(a, a, d)"))]
        ))
        assert tree.is_unambiguous()
        assert tree.scount() == 1
