"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_tuple

PROGRAM_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
"""
DATABASE_TEXT = "e(a, b). e(b, c). e(a, c)."


@pytest.fixture
def files(tmp_path):
    program = tmp_path / "program.dl"
    program.write_text(PROGRAM_TEXT)
    database = tmp_path / "data.dl"
    database.write_text(DATABASE_TEXT)
    return str(program), str(database)


class TestParseTuple:
    def test_mixed(self):
        assert parse_tuple("a,b,3,-2") == ("a", "b", 3, -2)

    def test_empty(self):
        assert parse_tuple("") == ()

    def test_whitespace(self):
        assert parse_tuple(" a , 7 ") == ("a", 7)


class TestEval:
    def test_lists_answers(self, files, capsys):
        program, database = files
        assert main(["eval", program, database, "--answer", "tc"]) == 0
        out = capsys.readouterr().out
        assert "tc(a, b)" in out
        assert "tc(a, c)" in out

    def test_answer_defaulting(self, files, capsys):
        program, database = files
        assert main(["eval", program, database]) == 0
        assert "tc(a, b)" in capsys.readouterr().out

    def test_answer_required_when_ambiguous(self, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text("p(X) :- e(X, Y).\nq(X) :- e(X, Y).\n")
        database = tmp_path / "d.dl"
        database.write_text("e(a, b).")
        with pytest.raises(SystemExit):
            main(["eval", str(program), str(database)])


class TestWhy:
    def test_enumerates_members(self, files, capsys):
        program, database = files
        assert main(["why", program, database, "--answer", "tc", "--tuple", "a,c"]) == 0
        out = capsys.readouterr().out
        assert "member 0:" in out and "member 1:" in out

    def test_non_answer(self, files, capsys):
        program, database = files
        code = main(["why", program, database, "--answer", "tc", "--tuple", "c,a"])
        assert code == 1

    def test_limit(self, files, capsys):
        program, database = files
        main(["why", program, database, "--answer", "tc", "--tuple", "a,c", "--limit", "1"])
        out = capsys.readouterr().out
        assert "member 0:" in out and "member 1:" not in out


class TestBatch:
    def test_explicit_tuples_share_one_evaluation(self, files, capsys):
        program, database = files
        code = main([
            "batch", program, database, "--answer", "tc",
            "--tuples", "a,b;a,c",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "tc(a, b): 1 members" in captured.out
        assert "tc(a, c): 2 members" in captured.out
        assert "2 tuples served by 1 evaluation(s)" in captured.err

    def test_all_answers(self, files, capsys):
        program, database = files
        code = main(["batch", program, database, "--answer", "tc", "--all-answers"])
        assert code == 0
        captured = capsys.readouterr()
        assert "tc(a, b):" in captured.out
        assert "tc(b, c):" in captured.out
        assert "1 evaluation(s)" in captured.err

    def test_non_answer_flagged(self, files, capsys):
        program, database = files
        code = main([
            "batch", program, database, "--answer", "tc", "--tuples", "c,a",
        ])
        assert code == 1
        assert "not an answer" in capsys.readouterr().out

    def test_requires_tuples_or_all(self, files):
        program, database = files
        with pytest.raises(SystemExit):
            main(["batch", program, database, "--answer", "tc"])

    def test_tuples_and_all_answers_conflict(self, files):
        program, database = files
        with pytest.raises(SystemExit):
            main([
                "batch", program, database, "--answer", "tc",
                "--tuples", "a,b", "--all-answers",
            ])

    def test_arity_mismatch_does_not_kill_the_batch(self, files, capsys):
        program, database = files
        code = main([
            "batch", program, database, "--answer", "tc", "--tuples", "a,b;a;b,c",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "tc(a): invalid tuple" in out
        assert "tc(a, b): 1 members" in out
        assert "tc(b, c): 1 members" in out


class TestBatchWatch:
    def _watch(self, monkeypatch, stdin_text, argv):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        return main(argv)

    def test_insert_reserves_with_new_witness(self, files, capsys, monkeypatch):
        program, database = files
        code = self._watch(
            monkeypatch,
            "+e(c, d).\n\n",
            ["batch", program, database, "--answer", "tc",
             "--all-answers", "--watch"],
        )
        assert code == 0
        captured = capsys.readouterr()
        # Served twice: the initial batch lacks tc(a, d), the re-serve has it.
        assert captured.out.count("tc(a, c):") == 2
        assert "tc(a, d): 2 members" in captured.out
        assert "update v1: 1 inserted, 0 deleted" in captured.err
        # Incremental maintenance, never a second evaluation.
        assert "1 evaluation(s)" in captured.err.splitlines()[-1]

    def test_delete_retires_witness(self, files, capsys, monkeypatch):
        program, database = files
        code = self._watch(
            monkeypatch,
            "-e(b, c).\n\n",
            ["batch", program, database, "--answer", "tc",
             "--tuples", "a,c", "--watch"],
        )
        assert code == 0
        out = capsys.readouterr().out
        # Before: both witnesses; after the deletion only the direct edge.
        assert "tc(a, c): 2 members" in out
        assert "tc(a, c): 1 members" in out

    def test_eof_commits_staged_delta(self, files, capsys, monkeypatch):
        program, database = files
        code = self._watch(
            monkeypatch,
            "+e(c, d).\n",  # no blank line: EOF must commit
            ["batch", program, database, "--answer", "tc",
             "--tuples", "a,d", "--watch"],
        )
        assert code == 1  # the pre-update serve saw a non-answer
        out = capsys.readouterr().out
        assert "tc(a, d): not an answer" in out
        assert "tc(a, d): 2 members" in out

    def test_out_of_schema_insert_rejected_loop_survives(self, files, capsys, monkeypatch):
        program, database = files
        code = self._watch(
            monkeypatch,
            "+zzz(q).\n\n+e(c, d).\n\n",
            ["batch", program, database, "--answer", "tc",
             "--tuples", "a,d", "--watch"],
        )
        assert code == 1  # only the pre-update/rejected serves lack tc(a, d)
        captured = capsys.readouterr()
        assert "update rejected" in captured.err
        assert "zzz" in captured.err
        # The loop survived the rejection and applied the next delta.
        assert "tc(a, d): 2 members" in captured.out

    def test_bad_lines_are_skipped(self, files, capsys, monkeypatch):
        program, database = files
        code = self._watch(
            monkeypatch,
            "wibble\n+not a fact\n\n",
            ["batch", program, database, "--answer", "tc",
             "--tuples", "a,b", "--watch"],
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "ignored watch line" in err

    def test_deleting_last_edges_empties_answers(self, files, capsys, monkeypatch):
        program, database = files
        code = self._watch(
            monkeypatch,
            "-e(a, b). e(b, c).\n-e(a, c).\n\n",
            ["batch", program, database, "--answer", "tc",
             "--all-answers", "--watch"],
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "3 inserted" not in captured.err
        assert "0 inserted, 3 deleted" in captured.err
        # The re-serve has no answers left to print.
        assert "% 0 tuples served" in captured.err


class TestDecide:
    def test_member(self, files, tmp_path, capsys):
        program, database = files
        subset = tmp_path / "subset.dl"
        subset.write_text("e(a, c).")
        code = main([
            "decide", program, database, "--answer", "tc", "--tuple", "a,c",
            "--subset", str(subset),
        ])
        assert code == 0
        assert "MEMBER" in capsys.readouterr().out

    def test_non_member(self, files, tmp_path, capsys):
        program, database = files
        subset = tmp_path / "subset.dl"
        subset.write_text("e(a, b).")
        code = main([
            "decide", program, database, "--answer", "tc", "--tuple", "a,c",
            "--subset", str(subset), "--tree-class", "arbitrary",
        ])
        assert code == 1
        assert "NOT-MEMBER" in capsys.readouterr().out


class TestDimacs:
    def test_export(self, files, capsys):
        program, database = files
        assert main(["dimacs", program, database, "--answer", "tc", "--tuple", "a,c"]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("p cnf ")
        assert "c projection" in captured.err

    def test_round_trip_satisfiable(self, files, capsys):
        from repro.sat.cnf import CNF
        from repro.sat.solver import solve_cnf

        program, database = files
        main(["dimacs", program, database, "--answer", "tc", "--tuple", "a,c"])
        text = capsys.readouterr().out
        cnf = CNF.from_dimacs(text)
        assert solve_cnf(cnf) is not None


class TestMinimal:
    def test_smallest_and_minimal(self, files, capsys):
        program, database = files
        code = main(["minimal", program, database, "--answer", "tc", "--tuple", "a,c"])
        assert code == 0
        captured = capsys.readouterr()
        assert "smallest (1 facts): e(a, c)." in captured.out
        assert "minimal 0:" in captured.out
        assert "2 subset-minimal members" in captured.err

    def test_limit(self, files, capsys):
        program, database = files
        code = main([
            "minimal", program, database, "--answer", "tc", "--tuple", "a,c",
            "--limit", "1",
        ])
        assert code == 0
        assert "1 subset-minimal members" in capsys.readouterr().err

    def test_non_answer(self, files, capsys):
        program, database = files
        code = main(["minimal", program, database, "--answer", "tc", "--tuple", "c,a"])
        assert code == 1
        assert "not an answer" in capsys.readouterr().err


class TestSemiring:
    def test_why_members(self, files, capsys):
        program, database = files
        code = main([
            "semiring", program, database, "--answer", "tc", "--tuple", "a,c",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "member 0: e(a, c)." in captured.out
        assert "members" in captured.err

    def test_counting(self, files, capsys):
        program, database = files
        code = main([
            "semiring", program, database, "--answer", "tc", "--tuple", "a,c",
            "--semiring", "counting",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_tropical(self, files, capsys):
        program, database = files
        code = main([
            "semiring", program, database, "--answer", "tc", "--tuple", "a,c",
            "--semiring", "tropical",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_lineage(self, files, capsys):
        program, database = files
        code = main([
            "semiring", program, database, "--answer", "tc", "--tuple", "a,c",
            "--semiring", "lineage",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "e(a, c)." in out and "e(a, b)." in out

    def test_boolean_non_answer(self, files, capsys):
        program, database = files
        code = main([
            "semiring", program, database, "--answer", "tc", "--tuple", "c,a",
            "--semiring", "boolean",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip() == "False"


class TestExplain:
    def test_proof_tree(self, files, capsys):
        program, database = files
        code = main(["explain", program, database, "--answer", "tc", "--tuple", "a,c"])
        assert code == 0
        captured = capsys.readouterr()
        assert "tc(a, c)" in captured.out
        assert "depth 1" in captured.err

    def test_non_answer(self, files, capsys):
        program, database = files
        code = main(["explain", program, database, "--answer", "tc", "--tuple", "c,a"])
        assert code == 1
        assert "nothing to explain" in capsys.readouterr().err


class TestWhyOrder:
    def test_size_order(self, files, capsys):
        program, database = files
        code = main([
            "why", program, database, "--answer", "tc", "--tuple", "a,c",
            "--order", "size",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "member 0 (size 1): e(a, c)." in captured.out
        assert "smallest first" in captured.err

    def test_size_order_non_answer(self, files, capsys):
        program, database = files
        code = main([
            "why", program, database, "--answer", "tc", "--tuple", "c,a",
            "--order", "size",
        ])
        assert code == 1


class TestServeStdio:
    """The daemon over stdin/stdout: NDJSON in, NDJSON out."""

    def _serve(self, monkeypatch, capsys, request_lines):
        import io
        import json

        stdin_text = "".join(json.dumps(r) + "\n" for r in request_lines)
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code = main(["serve", "--stdio"])
        out = capsys.readouterr().out
        return code, [json.loads(line) for line in out.splitlines() if line]

    def test_open_why_update_cycle(self, monkeypatch, capsys):
        code, responses = self._serve(
            monkeypatch,
            capsys,
            [
                {"id": 1, "op": "open", "program": PROGRAM_TEXT,
                 "database": DATABASE_TEXT, "answer": "tc"},
                {"id": 2, "op": "why", "program": PROGRAM_TEXT,
                 "database": DATABASE_TEXT, "tuple": ["a", "c"]},
                {"id": 3, "op": "update", "program": PROGRAM_TEXT,
                 "database": DATABASE_TEXT, "lines": ["-e(b, c)."]},
                {"id": 4, "op": "why", "program": PROGRAM_TEXT,
                 "database": DATABASE_TEXT, "tuple": ["a", "c"]},
            ],
        )
        assert code == 0
        assert [r["id"] for r in responses] == [1, 2, 3, 4]
        assert responses[0]["result"]["admitted"] is True
        assert len(responses[1]["result"]["members"]) == 2
        # The update addressed the same digest (warm hit, not re-admission).
        assert responses[2]["session"] == responses[0]["session"]
        assert responses[3]["result"]["members"] == [["e(a, c)."]]
        assert responses[3]["version"] == 1

    def test_shutdown_stops_the_loop(self, monkeypatch, capsys):
        code, responses = self._serve(
            monkeypatch,
            capsys,
            [
                {"id": 1, "op": "shutdown"},
                {"id": 2, "op": "ping"},  # never reached
            ],
        )
        assert code == 0
        assert len(responses) == 1 and responses[0]["result"]["stopping"]

    def test_bad_line_answers_with_error(self, monkeypatch, capsys):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO("{not json\n"))
        assert main(["serve", "--stdio"]) == 0
        (response,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert not response["ok"]
        assert response["error"]["code"] == "parse-error"


class TestClientCommand:
    """The client subcommand against a live TCP daemon."""

    @pytest.fixture
    def daemon(self):
        from repro.service.registry import SessionRegistry
        from repro.service.server import ProvenanceService, TCPServiceServer

        service = ProvenanceService(registry=SessionRegistry())
        server = TCPServiceServer(service)
        server.serve_in_thread()
        yield f"127.0.0.1:{server.port}"
        server.shutdown()
        server.server_close()
        service.close()

    def test_requests_from_stdin(self, daemon, monkeypatch, capsys):
        import io
        import json

        requests = [
            {"op": "ping"},
            {"op": "why", "program": PROGRAM_TEXT, "database": DATABASE_TEXT,
             "answer": "tc", "tuple": ["a", "c"]},
        ]
        stdin_text = "".join(json.dumps(r) + "\n" for r in requests)
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code = main(["client", "--connect", daemon])
        assert code == 0
        responses = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert responses[0]["result"]["pong"] is True
        assert len(responses[1]["result"]["members"]) == 2

    def test_requests_from_file_and_failure_exit(self, daemon, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.ndjson"
        requests.write_text('{"op": "answers", "session": "deadbeef"}\n')
        code = main(["client", "--connect", daemon, str(requests)])
        assert code == 1  # error responses flip the exit status
        (response,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert response["error"]["code"] == "unknown-session"

    def test_bad_request_line_reported(self, daemon, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("{oops\n"))
        code = main(["client", "--connect", daemon])
        captured = capsys.readouterr()
        assert code == 1
        assert "bad request line" in captured.err

    def test_daemon_vanishing_mid_script_is_diagnosed(self, daemon, monkeypatch, capsys):
        import io
        import json

        # After shutdown the connection dies; the next request must be
        # reported as a failure, not crash with a traceback.
        requests = [{"op": "shutdown"}, {"op": "ping"}]
        stdin_text = "".join(json.dumps(r) + "\n" for r in requests)
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code = main(["client", "--connect", daemon])
        captured = capsys.readouterr()
        assert code == 1
        assert "request failed" in captured.err


class TestFuzz:
    """The differential-fuzz subcommand (fast configs: in-process paths)."""

    def test_passing_band_exits_zero_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main([
            "fuzz", "--seeds", "0:2", "--family", "chain", "--size", "8",
            "--deltas", "1", "--paths", "cold,warm,incremental",
            "--json", str(report), "--verbose",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "2/2 run(s), 0 failure(s)" in err
        import json as json_module

        payload = json_module.loads(report.read_text())
        assert payload["ok"] and payload["completed"] == 2
        assert [run["ok"] for run in payload["runs"]] == [True, True]
        assert payload["fuzz"]["paths"] == ["cold", "warm", "incremental"]

    def test_single_seed_spec(self, capsys):
        code = main([
            "fuzz", "--seeds", "7", "--family", "tree", "--size", "6",
            "--deltas", "0", "--paths", "cold,warm",
        ])
        assert code == 0
        assert "1/1 run(s)" in capsys.readouterr().err

    def test_divergence_reports_shrunk_repro(self, monkeypatch, tmp_path, capsys):
        # Sabotage one path so the CLI's failure handling (report lines,
        # shrinking, JSON payload, exit status) is exercised end to end.
        from repro.testing import oracle as oracle_module

        real_cold = oracle_module._PATH_RUNNERS["cold"]
        monkeypatch.setitem(
            oracle_module._PATH_RUNNERS, "warm",
            lambda instance, config: [
                text + "!" for text in real_cold(instance, config)
            ],
        )
        report = tmp_path / "report.json"
        code = main([
            "fuzz", "--seeds", "0:1", "--family", "chain", "--size", "6",
            "--deltas", "0", "--paths", "cold,warm", "--json", str(report),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "DIVERGED" in err
        assert "minimal program:" in err
        import json as json_module

        payload = json_module.loads(report.read_text())
        (run,) = payload["runs"]
        assert not run["ok"]
        assert run["repro"].startswith("python -m repro fuzz --family chain")
        assert "shrunk" in run and "c_tc" in run["shrunk"]["program"]

    def test_time_budget_skips_remaining_seeds(self, capsys):
        code = main([
            "fuzz", "--seeds", "0:50", "--family", "chain", "--size", "6",
            "--paths", "cold,warm", "--time-budget", "0.0",
        ])
        assert code == 0
        assert "time budget exhausted" in capsys.readouterr().err

    def test_bad_seed_and_family_specs(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seeds", "5:2"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--seeds", "x"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--family", "zebra"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--paths", "cold,quantum"])

    def test_smoke_preset_fills_defaults(self, capsys):
        # --smoke with an explicit tiny band: presets fill size/deltas
        # and the run stays inside the (explicit) budget machinery.
        code = main([
            "fuzz", "--smoke", "--seeds", "0:1", "--family", "widejoin",
            "--paths", "cold,incremental",
        ])
        assert code == 0
        assert "1/1 run(s), 0 failure(s)" in capsys.readouterr().err
