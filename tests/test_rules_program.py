"""Unit tests for rules, ground rules, programs, and queries."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.program import DatalogQuery, Program
from repro.datalog.rules import GroundRule, Rule, check_variable_matching
from repro.datalog.terms import Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def tc_rules():
    return [
        Rule(Atom("tc", (X, Y)), (Atom("e", (X, Y)),)),
        Rule(Atom("tc", (X, Z)), (Atom("tc", (X, Y)), Atom("e", (Y, Z)))),
    ]


class TestRule:
    def test_safety_enforced(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule(Atom("p", (X, Y)), (Atom("q", (X,)),))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Rule(Atom("p", (X,)), ())

    def test_constants_allowed_and_reported(self):
        rule = Rule(Atom("p", (X,)), (Atom("q", (X, "a")),))
        assert not rule.is_constant_free()
        assert rule.constants() == {"a"}
        assert tc_rules()[0].is_constant_free()

    def test_equality_and_hash(self):
        assert tc_rules()[0] == tc_rules()[0]
        assert tc_rules()[0] != tc_rules()[1]
        assert len(set(tc_rules() + tc_rules())) == 2

    def test_variables(self):
        assert tc_rules()[1].variables() == {X, Y, Z}

    def test_str(self):
        assert str(tc_rules()[0]) == "tc(x, y) :- e(x, y)."

    def test_instantiate(self):
        ground = tc_rules()[0].instantiate({X: "a", Y: "b"})
        assert ground.head == Atom("tc", ("a", "b"))
        assert ground.body == (Atom("e", ("a", "b")),)

    def test_instantiate_missing_variable(self):
        with pytest.raises(ValueError, match="misses"):
            tc_rules()[1].instantiate({X: "a", Y: "b"})

    def test_rename_apart(self):
        renamed = tc_rules()[1].rename_apart("_1")
        assert renamed.variables().isdisjoint(tc_rules()[1].variables())
        # Structure preserved.
        assert renamed.head.pred == "tc"
        assert [a.pred for a in renamed.body] == ["tc", "e"]


class TestGroundRule:
    def test_requires_ground_atoms(self):
        rule = tc_rules()[0]
        with pytest.raises(ValueError):
            GroundRule(rule, Atom("tc", (X, "b")), (Atom("e", ("a", "b")),))

    def test_body_set_dedupes(self):
        rule = Rule(Atom("p", (X,)), (Atom("q", (X, Y)), Atom("q", (X, Z))))
        ground = rule.instantiate({X: "a", Y: "b", Z: "b"})
        assert ground.body == (Atom("q", ("a", "b")), Atom("q", ("a", "b")))
        assert ground.body_set() == frozenset({Atom("q", ("a", "b"))})

    def test_equality_ignores_source_rule(self):
        r1, r2 = tc_rules()
        g1 = GroundRule(r1, Atom("tc", ("a", "b")), (Atom("e", ("a", "b")),))
        g2 = GroundRule(r2, Atom("tc", ("a", "b")), (Atom("e", ("a", "b")),))
        assert g1 == g2


class TestCheckVariableMatching:
    def test_positive(self):
        rule = tc_rules()[1]
        assert check_variable_matching(
            rule,
            Atom("tc", ("a", "c")),
            (Atom("tc", ("a", "b")), Atom("e", ("b", "c"))),
        )

    def test_repeated_variable_consistency(self):
        rule = Rule(Atom("p", (X,)), (Atom("q", (X, X)),))
        assert check_variable_matching(rule, Atom("p", ("a",)), (Atom("q", ("a", "a")),))
        assert not check_variable_matching(rule, Atom("p", ("a",)), (Atom("q", ("a", "b")),))

    def test_wrong_predicate_or_length(self):
        rule = tc_rules()[0]
        assert not check_variable_matching(rule, Atom("e", ("a", "b")), (Atom("e", ("a", "b")),))
        assert not check_variable_matching(rule, Atom("tc", ("a", "b")), ())

    def test_constant_in_rule(self):
        rule = Rule(Atom("p", (X,)), (Atom("q", (X, "k")),))
        assert check_variable_matching(rule, Atom("p", ("a",)), (Atom("q", ("a", "k")),))
        assert not check_variable_matching(rule, Atom("p", ("a",)), (Atom("q", ("a", "j")),))


class TestProgram:
    def test_edb_idb_split(self):
        program = Program(tc_rules())
        assert program.idb == {"tc"}
        assert program.edb == {"e"}
        assert program.schema == {"tc", "e"}

    def test_arity_map_and_conflict(self):
        program = Program(tc_rules())
        assert program.arity("tc") == 2
        with pytest.raises(KeyError):
            program.arity("nope")
        with pytest.raises(ValueError, match="arities"):
            Program([
                Rule(Atom("p", (X,)), (Atom("q", (X,)),)),
                Rule(Atom("p", (X, Y)), (Atom("q", (X,)), Atom("q", (Y,)))),
            ])

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_dedupe_preserves_order(self):
        rules = tc_rules()
        program = Program(rules + rules)
        assert list(program.rules) == rules

    def test_linear_classification(self):
        assert Program(tc_rules()).is_linear()
        nonlinear = Program([
            Rule(Atom("a", (X,)), (Atom("s", (X,)),)),
            Rule(Atom("a", (X,)), (Atom("a", (Y,)), Atom("a", (Z,)), Atom("t", (Y, Z, X)))),
        ])
        assert not nonlinear.is_linear()

    def test_recursive_classification(self):
        assert Program(tc_rules()).is_recursive()
        nonrec = Program([
            Rule(Atom("p", (X,)), (Atom("q", (X,)),)),
            Rule(Atom("r", (X,)), (Atom("p", (X,)),)),
        ])
        assert nonrec.is_non_recursive()
        assert nonrec.classify() == "NRDat"

    def test_self_loop_is_recursive(self):
        program = Program([
            Rule(Atom("p", (X,)), (Atom("p", (X,)), Atom("q", (X,)))),
            Rule(Atom("p", (X,)), (Atom("q", (X,)),)),
        ])
        assert program.is_recursive()

    def test_classify_all_classes(self):
        assert Program(tc_rules()).classify() == "LDat"
        nonlinear_recursive = Program([
            Rule(Atom("a", (X,)), (Atom("s", (X,)),)),
            Rule(Atom("a", (X,)), (Atom("a", (Y,)), Atom("a", (Z,)), Atom("t", (Y, Z, X)))),
        ])
        assert nonlinear_recursive.classify() == "Dat"

    def test_predicate_graph(self):
        graph = Program(tc_rules()).predicate_graph()
        assert graph["e"] == {"tc"}
        assert graph["tc"] == {"tc"}

    def test_rules_for(self):
        program = Program(tc_rules())
        assert len(program.rules_for("tc")) == 2
        assert program.rules_for("e") == ()

    def test_bounds(self):
        program = Program(tc_rules())
        assert program.max_body_length() == 2
        assert program.max_arity() == 2

    def test_stratification_layers_respect_dependencies(self):
        program = Program([
            Rule(Atom("p", (X,)), (Atom("q", (X,)),)),
            Rule(Atom("r", (X,)), (Atom("p", (X,)),)),
        ])
        strata = program.stratification()
        level = {pred: i for i, layer in enumerate(strata) for pred in layer}
        assert level["q"] < level["p"] < level["r"]


class TestDatalogQuery:
    def test_answer_predicate_must_be_intensional(self):
        program = Program(tc_rules())
        with pytest.raises(ValueError):
            DatalogQuery(program, "e")
        query = DatalogQuery(program, "tc")
        assert query.answer_arity == 2

    def test_answer_atom(self):
        query = DatalogQuery(Program(tc_rules()), "tc")
        assert query.answer_atom(("a", "b")) == Atom("tc", ("a", "b"))
        with pytest.raises(ValueError):
            query.answer_atom(("a",))

    def test_classify_delegates(self):
        query = DatalogQuery(Program(tc_rules()), "tc")
        assert query.classify() == "LDat"
        assert query.is_linear()
        assert not query.is_non_recursive()
