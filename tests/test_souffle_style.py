"""Souffle-style single-witness provenance: soundness and minimality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    NotDerivableError,
    SouffleStyleProvenance,
    annotate,
    explain_answer,
    single_witness_why,
)
from repro.core import decide_membership
from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.datalog.atoms import Atom
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_atom
from repro.provenance import enumerate_why, enumerate_why_minimal_depth
from repro.provenance.proof_tree import is_minimal_depth


def _pap():
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).")
    )
    return query, database


def test_annotate_matches_engine_model_and_ranks():
    query, database = _pap()
    annotated = annotate(query.program, database)
    reference = evaluate(query.program, database)
    assert annotated.model == reference.model
    assert annotated.heights == reference.ranks


def test_witnesses_cover_exactly_the_derived_facts():
    query, database = _pap()
    annotated = annotate(query.program, database)
    derived = {fact for fact in annotated.model if fact not in database}
    assert set(annotated.witnesses) == derived
    for fact, witness in annotated.witnesses.items():
        assert witness.head == fact
        for body_fact in witness.body:
            assert body_fact in annotated.model
            # Minimal-stage witnesses only use strictly earlier facts.
            assert annotated.heights[body_fact] < annotated.heights[fact]


def test_explained_tree_is_valid_and_minimal_depth():
    query, database = _pap()
    provenance = SouffleStyleProvenance(query.program, database)
    for constant in ("a", "b", "c", "d"):
        fact = parse_atom(f"a({constant})")
        tree = provenance.explain(fact)
        tree.validate(query.program, database, expected_root=fact)
        assert tree.depth() == provenance.height(fact)
        assert is_minimal_depth(tree, query.program, database)
        assert tree.is_unambiguous()


def test_support_is_a_member_of_why_provenance():
    query, database = _pap()
    support = single_witness_why(query, database, ("d",))
    assert support is not None
    assert decide_membership(query, database, ("d",), support, "arbitrary")
    assert support in enumerate_why(query, database, ("d",))
    assert support in enumerate_why_minimal_depth(query, database, ("d",))


def test_under_approximation_misses_members():
    """The baseline reports one member; the SAT pipeline reports them all."""
    query, database = _pap()
    support = single_witness_why(query, database, ("d",))
    family = enumerate_why(query, database, ("d",))
    assert len(family) == 2  # Example 2
    assert support in family
    assert len(family - {support}) == 1


def test_non_answers_yield_none():
    query, database = _pap()
    assert single_witness_why(query, database, ("zzz",)) is None
    assert explain_answer(query, database, ("zzz",)) is None


def test_explain_unknown_fact_raises():
    query, database = _pap()
    provenance = SouffleStyleProvenance(query.program, database)
    with pytest.raises(NotDerivableError):
        provenance.explain(parse_atom("a(zzz)"))
    with pytest.raises(NotDerivableError):
        provenance.height(parse_atom("a(zzz)"))


def test_database_facts_explain_as_leaves():
    query, database = _pap()
    provenance = SouffleStyleProvenance(query.program, database)
    fact = parse_atom("s(a)")
    tree = provenance.explain(fact)
    assert tree.depth() == 0
    assert tree.support() == frozenset([fact])
    assert provenance.height(fact) == 0


def test_holds_reflects_model_membership():
    query, database = _pap()
    provenance = SouffleStyleProvenance(query.program, database)
    assert provenance.holds(parse_atom("a(d)"))
    assert not provenance.holds(parse_atom("a(zzz)"))


def test_ambiguity_example_yields_one_of_the_two_minimal_members():
    """Example 4: two unambiguous members; the baseline picks one."""
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).")
    )
    support = single_witness_why(query, database, ("d",))
    member_a = frozenset(parse_database("s(a). t(a, a, c). t(c, c, d)."))
    member_b = frozenset(parse_database("s(b). t(b, b, c). t(c, c, d)."))
    assert support in (member_a, member_b)


@settings(max_examples=20, deadline=None)
@given(
    edges=st.sets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=12
    )
)
def test_random_graph_witness_trees_are_sound(edges):
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    database = Database([Atom("e", (f"n{u}", f"n{v}")) for u, v in edges])
    provenance = SouffleStyleProvenance(program, database)
    derived = [fact for fact in provenance.annotated.model if fact not in database]
    for fact in derived[:10]:
        tree = provenance.explain(fact)
        tree.validate(program, database, expected_root=fact)
        assert tree.depth() == provenance.height(fact)
