"""Tests for incremental view maintenance (deltas, DRed, live sessions).

The load-bearing properties:

* ``Database.apply`` returns the *effective* delta and round-trips with
  ``Delta.inverted``;
* ``ranks_from_instances`` reproduces the engine's stage ranks exactly
  from a fixpoint trace (differential, across scenarios);
* ``maintain_evaluation`` (DRed deletions + delta-semi-naive insertions)
  is indistinguishable from a from-scratch evaluation: same model, same
  ranks, same rounds, and the trace-patching invariant
  ``set(trace) == set(ground_instances(program, model))``;
* ``session.update(delta)`` keeps the session byte-identical to a cold
  session over the updated database — answers, witnesses, *witness
  order* — across random update sequences on the TransClosure and
  Andersen queries, including deletion cascades through transitive
  closure, while never re-evaluating and while retaining the cached
  closures the delta does not reach;
* snapshot blobs are cached per session version and invalidated by
  updates; stale workers detect version mismatches.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parallel as parallel_module
from repro.core.parallel import EvaluationSnapshot
from repro.core.session import ProvenanceSession
from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Delta
from repro.datalog.engine import (
    evaluate,
    ground_instances,
    maintain_evaluation,
    ranks_from_instances,
)
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.scenarios import get_scenario

TC_PROGRAM = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_QUERY = DatalogQuery(TC_PROGRAM, "tc")


def tc_session(facts: str) -> ProvenanceSession:
    return ProvenanceSession(TC_QUERY, Database(parse_database(facts)))


def edge(a: str, b: str) -> Atom:
    return Atom("e", (a, b))


# ---------------------------------------------------------------------------
# Delta and Database.apply
# ---------------------------------------------------------------------------


class TestDelta:
    def test_insert_delete_constructors(self):
        delta = Delta.insert(edge("a", "b"))
        assert delta.inserted == {edge("a", "b")} and not delta.deleted
        delta = Delta.delete(edge("a", "b"))
        assert delta.deleted == {edge("a", "b")} and not delta.inserted

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="inserts and deletes"):
            Delta(inserted={edge("a", "b")}, deleted={edge("a", "b")})

    def test_non_ground_rejected(self):
        from repro.datalog.terms import Variable

        with pytest.raises(ValueError, match="not a ground fact"):
            Delta.insert(Atom("e", (Variable("X"), "b")))

    def test_empty_len_bool(self):
        assert Delta().is_empty() and not Delta() and len(Delta()) == 0
        delta = Delta.insert(edge("a", "b"))
        assert delta and len(delta) == 1 and not delta.is_empty()

    def test_inverted(self):
        delta = Delta(inserted={edge("a", "b")}, deleted={edge("c", "d")})
        inv = delta.inverted()
        assert inv.inserted == delta.deleted and inv.deleted == delta.inserted

    def test_apply_reports_effective_delta(self):
        db = Database([edge("a", "b")])
        effective = db.apply(
            Delta(
                inserted={edge("a", "b"), edge("b", "c")},  # a,b redundant
                deleted={edge("x", "y")},  # absent
            )
        )
        assert effective.inserted == {edge("b", "c")}
        assert effective.deleted == frozenset()
        assert db == {edge("a", "b"), edge("b", "c")}

    def test_apply_then_inverted_round_trips(self):
        db = Database([edge("a", "b"), edge("b", "c")])
        before = db.facts()
        effective = db.apply(
            Delta(inserted={edge("c", "d")}, deleted={edge("a", "b")})
        )
        db.apply(effective.inverted())
        assert db.facts() == before


# ---------------------------------------------------------------------------
# ranks_from_instances: exactness against the engine
# ---------------------------------------------------------------------------


class TestRanksFromInstances:
    @pytest.mark.parametrize(
        "scenario_name,database_name",
        [("TransClosure", "bitcoin"), ("Andersen", "D1"), ("Galen", "D1")],
    )
    def test_matches_engine_ranks(self, scenario_name, database_name):
        scenario = get_scenario(scenario_name)
        query = scenario.query()
        database = scenario.database(database_name).restrict(query.program.edb)
        evaluation = evaluate(query.program, database, record_instances=True)
        assert (
            ranks_from_instances(database, evaluation.instances)
            == evaluation.ranks
        )

    def test_handles_seeded_intensional_fact(self):
        # A fact of the answer predicate placed directly in the database
        # has rank 0 even when also derivable at a deeper stage.
        program = parse_program("p(X) :- q(X). p(X) :- p(X), r(X).")
        database = Database(parse_database("q(a). r(a). p(a)."))
        evaluation = evaluate(program, database, record_instances=True)
        assert ranks_from_instances(database, evaluation.instances) == evaluation.ranks
        assert evaluation.ranks[Atom("p", ("a",))] == 0


# ---------------------------------------------------------------------------
# maintain_evaluation: differential against from-scratch evaluation
# ---------------------------------------------------------------------------


def assert_maintained_equals_fresh(program, database, evaluation, delta):
    """Apply *delta*, maintain, and compare against a cold evaluation."""
    effective = database.apply(delta)
    result = maintain_evaluation(program, database, evaluation, effective)
    fresh = evaluate(program, database, record_instances=True)
    assert result.evaluation.model == fresh.model
    assert result.evaluation.ranks == fresh.ranks
    assert result.evaluation.rounds == fresh.rounds
    assert set(result.evaluation.instances) == set(fresh.instances)
    # The trace-patching invariant, stated directly:
    assert set(result.evaluation.instances) == set(
        ground_instances(program, result.evaluation.model)
    )
    return result


class TestMaintainEvaluation:
    def test_requires_trace(self):
        database = Database([edge("a", "b")])
        evaluation = evaluate(TC_PROGRAM, database)
        with pytest.raises(ValueError, match="instance trace"):
            maintain_evaluation(TC_PROGRAM, database, evaluation, Delta())

    def test_insertion_extends_closure(self):
        database = Database([edge("a", "b")])
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        result = assert_maintained_equals_fresh(
            TC_PROGRAM, database, evaluation, Delta.insert(edge("b", "c"))
        )
        assert Atom("tc", ("a", "c")) in result.added_facts
        assert result.removed_facts == frozenset()

    def test_deletion_cascades_through_transitive_closure(self):
        # A chain a -> b -> c -> d: deleting the middle edge must retract
        # every tc fact crossing it, transitively.
        database = Database(
            [edge("a", "b"), edge("b", "c"), edge("c", "d")]
        )
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        result = assert_maintained_equals_fresh(
            TC_PROGRAM, database, evaluation, Delta.delete(edge("b", "c"))
        )
        assert Atom("tc", ("a", "c")) in result.removed_facts
        assert Atom("tc", ("a", "d")) in result.removed_facts
        assert Atom("tc", ("b", "d")) in result.removed_facts
        assert Atom("tc", ("a", "b")) not in result.removed_facts

    def test_dred_rederives_alternative_derivations(self):
        # tc(a, c) via b and directly: deleting one path keeps the fact.
        database = Database([edge("a", "b"), edge("b", "c"), edge("a", "c")])
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        result = assert_maintained_equals_fresh(
            TC_PROGRAM, database, evaluation, Delta.delete(edge("b", "c"))
        )
        assert Atom("tc", ("a", "c")) in result.evaluation.model
        assert result.overdeleted > result.rederived > 0

    def test_deletion_does_not_resurrect_through_cycles(self):
        # A cycle reachable only through the deleted edge must die with
        # it: cyclic instances alone cannot re-derive their own support.
        database = Database([edge("a", "b"), edge("b", "c"), edge("c", "b")])
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        result = assert_maintained_equals_fresh(
            TC_PROGRAM, database, evaluation, Delta.delete(edge("a", "b"))
        )
        assert Atom("tc", ("a", "c")) in result.removed_facts
        assert Atom("tc", ("b", "c")) in result.evaluation.model

    def test_mixed_delta_delete_then_reinsert_path(self):
        database = Database([edge("a", "b"), edge("b", "c")])
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        assert_maintained_equals_fresh(
            TC_PROGRAM,
            database,
            evaluation,
            Delta(deleted={edge("b", "c")}, inserted={edge("b", "d"), edge("d", "c")}),
        )

    def test_noop_delta_changes_nothing(self):
        database = Database([edge("a", "b")])
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        result = maintain_evaluation(TC_PROGRAM, database, evaluation, Delta())
        assert not result.changed()
        assert result.evaluation.model == evaluation.model

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_updates_match_fresh_evaluation(self, data):
        nodes = "abcdef"
        all_edges = sorted(
            {edge(u, v) for u in nodes for v in nodes if u != v}, key=str
        )
        initial = data.draw(st.sets(st.sampled_from(all_edges), min_size=1, max_size=10))
        database = Database(initial)
        evaluation = evaluate(TC_PROGRAM, database, record_instances=True)
        for _ in range(data.draw(st.integers(1, 3))):
            inserted = data.draw(
                st.sets(st.sampled_from(all_edges), max_size=3)
            )
            deletable = sorted(database.facts(), key=str)
            deleted = data.draw(
                st.sets(st.sampled_from(deletable), max_size=3)
                if deletable
                else st.just(set())
            )
            delta = Delta(inserted=frozenset(inserted) - frozenset(deleted),
                          deleted=frozenset(deleted))
            result = assert_maintained_equals_fresh(
                TC_PROGRAM, database, evaluation, delta
            )
            evaluation = result.evaluation


# ---------------------------------------------------------------------------
# ProvenanceSession.update: live sessions vs cold sessions
# ---------------------------------------------------------------------------


def assert_session_equals_cold(session, query=None):
    """The maintained session must be byte-identical to a cold one."""
    cold = ProvenanceSession(query or session.query, session.database.copy())
    assert session.model == cold.model
    assert session.ranks == cold.ranks
    assert session.answers() == cold.answers()
    for tup in session.answers():
        assert session.why(tup) == cold.why(tup)  # lists: order included
    return cold


class TestSessionUpdate:
    def test_insert_creates_new_witness(self):
        session = tc_session("e(a, b). e(b, c).")
        before = session.why(("a", "c"))
        assert len(before) == 1
        receipt = session.update(Delta.insert(edge("a", "c")))
        assert receipt.changed()
        after = session.why(("a", "c"))
        assert len(after) == 2
        assert frozenset({edge("a", "c")}) in after
        assert_session_equals_cold(session)

    def test_delete_retires_cached_witness(self):
        session = tc_session("e(a, b). e(b, c). e(a, c).")
        assert len(session.why(("a", "c"))) == 2
        session.update(Delta.delete(edge("b", "c")))
        members = session.why(("a", "c"))
        assert members == [frozenset({edge("a", "c")})]
        assert_session_equals_cold(session)

    def test_deletion_cascade_removes_answer(self):
        session = tc_session("e(a, b). e(b, c). e(c, d).")
        assert session.is_answer(("a", "d"))
        session.update(Delta.delete(edge("b", "c")))
        assert not session.is_answer(("a", "d"))
        assert session.why(("a", "d")) == []
        assert_session_equals_cold(session)

    def test_never_reevaluates(self):
        session = tc_session("e(a, b). e(b, c).")
        session.why(("a", "c"))
        for delta in (
            Delta.insert(edge("c", "d")),
            Delta.delete(edge("a", "b")),
            Delta.insert(edge("a", "b")),
        ):
            session.update(delta)
            session.answers()
            for tup in session.answers():
                session.why(tup)
        assert session.stats.evaluations == 1
        assert session.stats.updates == 3

    def test_unaffected_closures_survive_identically(self):
        session = tc_session("e(a, b). e(x, y). e(y, z).")
        untouched = session.closure_for(("x", "z"))
        receipt = session.update(Delta.insert(edge("b", "c")))
        assert receipt.retained_closures >= 1
        # Not merely equal — the identical cached object.
        assert session.closure_for(("x", "z")) is untouched
        assert session.stats.closure_invalidations == receipt.invalidated_closures

    def test_affected_closures_are_dropped(self):
        session = tc_session("e(a, b). e(b, c).")
        stale = session.closure_for(("a", "c"))
        receipt = session.update(Delta.insert(edge("a", "c")))
        assert receipt.invalidated_closures >= 1
        assert session.closure_for(("a", "c")) is not stale

    def test_non_answer_verdict_invalidated_when_fact_appears(self):
        session = tc_session("e(a, b).")
        assert session.closure_or_none(Atom("tc", ("b", "c"))) is None
        session.update(Delta.insert(edge("b", "c")))
        closure = session.closure_or_none(Atom("tc", ("b", "c")))
        assert closure is not None and closure.root == Atom("tc", ("b", "c"))

    def test_noop_update_retains_everything(self):
        session = tc_session("e(a, b). e(b, c).")
        closure = session.closure_for(("a", "c"))
        version = session.version
        receipt = session.update(Delta.insert(edge("a", "b")))  # already present
        assert not receipt.changed()
        assert session.version == version
        assert session.closure_for(("a", "c")) is closure

    def test_update_without_trace_falls_back_to_invalidate(self):
        # The record_instances=False foil has no trace to maintain: an
        # effective update must stay correct (apply + invalidate), never
        # leave the database and the caches out of sync.
        session = ProvenanceSession(
            TC_QUERY,
            Database(parse_database("e(a, b). e(b, c).")),
            record_instances=False,
        )
        session.why(("a", "c"))
        assert session.stats.evaluations == 1
        receipt = session.update(Delta.insert(edge("c", "d")))
        assert receipt.changed() and receipt.invalidated_closures >= 1
        assert session.answers() == ProvenanceSession(
            TC_QUERY, session.database.copy()
        ).answers()
        assert session.stats.evaluations == 2  # fell back to re-evaluation
        # And the no-op variant keeps the caches.
        receipt = session.update(Delta.insert(edge("c", "d")))
        assert not receipt.changed()
        assert session.stats.evaluations == 2

    def test_rejected_update_leaves_session_untouched(self):
        session = tc_session("e(a, b).")
        session.answers()
        version = session.version
        before = session.database.facts()
        with pytest.raises(ValueError, match="extensional schema"):
            session.update(Delta.insert(Atom("tc", ("a", "b"))))
        assert session.database.facts() == before
        assert session.version == version
        assert session.answers() == [("a", "b")]

    def test_update_before_first_evaluation(self):
        session = tc_session("e(a, b).")
        receipt = session.update(Delta.insert(edge("b", "c")))
        assert receipt.changed() and session.stats.evaluations == 0
        assert session.answers() == [("a", "b"), ("a", "c"), ("b", "c")]
        assert session.stats.evaluations == 1

    def test_update_rejects_non_delta(self):
        session = tc_session("e(a, b).")
        with pytest.raises(TypeError, match="Delta"):
            session.update({edge("b", "c")})

    def test_update_rejects_fact_outside_schema(self):
        session = tc_session("e(a, b).")
        with pytest.raises(ValueError):
            session.update(Delta.insert(Atom("tc", ("a", "b"))))
            session.answers()

    def test_explain_batch_after_update_matches_cold(self):
        session = tc_session("e(a, b). e(b, c). e(c, d).")
        session.explain_batch()
        session.update(
            Delta(inserted={edge("d", "e")}, deleted={edge("a", "b")})
        )
        cold = ProvenanceSession(TC_QUERY, session.database.copy())
        live = session.explain_batch()
        fresh = cold.explain_batch()
        assert [r.tuple_value for r in live.results] == [
            r.tuple_value for r in fresh.results
        ]
        assert [r.members for r in live.results] == [
            r.members for r in fresh.results
        ]

    def test_decide_and_minimal_after_update(self):
        session = tc_session("e(a, b). e(b, c). e(a, c).")
        session.why(("a", "c"))
        session.update(Delta.delete(edge("a", "c")))
        support = {edge("a", "b"), edge("b", "c")}
        assert session.decide(("a", "c"), support)
        assert session.smallest_member(("a", "c")) == frozenset(support)


SCENARIO_CASES = [
    ("TransClosure", 14, 20),
    ("Andersen", None, None),
]


def _scenario_database(name, rng):
    if name == "TransClosure":
        nodes = [f"n{i}" for i in range(10)]
        facts = set()
        while len(facts) < 16:
            a, b = rng.sample(nodes, 2)
            facts.add(edge(a, b))
        return get_scenario(name).query(), Database(facts)
    from repro.scenarios.andersen import andersen_database, andersen_query

    return andersen_query(), andersen_database(num_vars=14, num_statements=30, seed=rng.randrange(10 ** 6))


def _random_scenario_delta(query, database, rng, size=2):
    predicates = sorted(query.program.edb)
    facts = sorted(database.facts(), key=str)
    deleted = set(rng.sample(facts, k=min(size, len(facts))))
    inserted = set()
    while len(inserted) < size and facts:
        template = rng.choice(facts)
        args = list(template.args)
        args[rng.randrange(len(args))] = rng.choice(
            [a for f in facts for a in f.args]
        )
        candidate = Atom(template.pred, tuple(args))
        if candidate not in database and candidate not in deleted:
            inserted.add(candidate)
    return Delta(inserted=frozenset(inserted), deleted=frozenset(deleted))


@pytest.mark.parametrize("scenario_name", ["TransClosure", "Andersen"])
def test_random_update_sequences_match_cold_sessions(scenario_name):
    """The acceptance property: random update sequences over the
    TransClosure and Andersen scenarios keep an incrementally maintained
    session identical — answers, witnesses, witness order — to a cold
    session over the updated database."""
    rng = random.Random(77)
    query, database = _scenario_database(scenario_name, rng)
    session = ProvenanceSession(query, database)
    for tup in session.answers()[:4]:
        session.why(tup, limit=10)
    for step in range(6):
        delta = _random_scenario_delta(query, session.database, rng)
        session.update(delta)
        cold = ProvenanceSession(query, session.database.copy())
        assert session.answers() == cold.answers(), f"step {step}"
        assert session.ranks == cold.ranks, f"step {step}"
        sample = session.answers()[:6]
        for tup in sample:
            assert session.why(tup, limit=10) == cold.why(tup, limit=10), (
                f"step {step}, tuple {tup}"
            )
        assert set(session.evaluation.instances) == set(
            ground_instances(query.program, session.model)
        ), f"step {step}"
    assert session.stats.evaluations == 1


# ---------------------------------------------------------------------------
# Snapshot versioning (the parallel path under updates)
# ---------------------------------------------------------------------------


class TestSnapshotVersioning:
    def test_snapshot_blob_cached_per_version(self):
        session = tc_session("e(a, b). e(b, c).")
        blob = session.snapshot_bytes()
        assert session.snapshot_bytes() is blob  # cached, not re-pickled
        session.update(Delta.insert(edge("c", "d")))
        fresh = session.snapshot_bytes()
        assert fresh is not blob
        assert EvaluationSnapshot.from_bytes(fresh).version == session.version

    def test_invalidate_bumps_version_and_drops_blob(self):
        session = tc_session("e(a, b).")
        blob = session.snapshot_bytes()
        version = session.version
        session.invalidate()
        assert session.version == version + 1
        assert session.snapshot_bytes() is not blob

    def test_restored_session_carries_version(self):
        session = tc_session("e(a, b).")
        session.update(Delta.insert(edge("b", "c")))
        restored = EvaluationSnapshot.capture(session).restore()
        assert restored.version == session.version
        assert restored.why(("a", "c")) == session.why(("a", "c"))

    def test_stale_chunk_version_detected(self, monkeypatch):
        session = tc_session("e(a, b). e(b, c).")
        blob = session.snapshot_bytes()
        monkeypatch.setattr(parallel_module, "_WORKER_SNAPSHOT", None)
        monkeypatch.setattr(parallel_module, "_WORKER_SESSION", None)
        parallel_module._init_worker(blob)
        chunk = [(0, ("a", "c"))]
        results = parallel_module._run_chunk((chunk, None, None, session.version))
        assert results[0].is_answer
        with pytest.raises(RuntimeError, match="stale worker snapshot"):
            parallel_module._run_chunk((chunk, None, None, session.version + 1))

    def test_drifted_worker_session_rehydrates(self, monkeypatch):
        session = tc_session("e(a, b). e(b, c).")
        blob = session.snapshot_bytes()
        monkeypatch.setattr(parallel_module, "_WORKER_SNAPSHOT", None)
        monkeypatch.setattr(parallel_module, "_WORKER_SESSION", None)
        parallel_module._init_worker(blob)
        # Simulate a worker whose live session drifted from its snapshot.
        parallel_module._WORKER_SESSION.version += 5
        drifted = parallel_module._WORKER_SESSION
        results = parallel_module._run_chunk(
            ([(0, ("a", "c"))], None, None, session.version)
        )
        assert results[0].is_answer
        assert parallel_module._WORKER_SESSION is not drifted
