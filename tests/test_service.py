"""Tests for the provenance service daemon (registry, protocol, server).

Four layers, innermost first: the wire protocol helpers, the
content-addressed session registry (admission, LRU eviction, byte
budget), the transport-independent dispatcher (every operation, in
process), and the real TCP stack — including the concurrency contract:
threaded clients hammering one session, interleaved ``update`` / ``why``
traffic attributed by version stamps, and eviction / re-admission
round-trips over the wire.

The wire-level tests are written against the *public protocol only*
(the stats op instead of in-process registry peeking), which lets the
same assertions run parametrized over both daemon topologies:
``single`` (one process, ``local_service``) and ``sharded`` (an async
router over real worker processes, ``local_sharded_service``). Anything
the contract promises must hold identically in both.
"""

import json
import socket
import struct
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.session import ProvenanceSession
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.service.client import (
    ServiceClient,
    local_service,
    local_sharded_service,
    parse_address,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    decode_request,
    encode,
    render_member,
    render_members,
)
from repro.service.registry import SessionRegistry, content_digest
from repro.service.store import SnapshotStore
from repro.service.server import ProvenanceService

PROGRAM_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
"""
DATABASE_TEXT = "e(a, b). e(b, c). e(a, c)."


def make_session() -> ProvenanceSession:
    program = parse_program(PROGRAM_TEXT)
    database = Database(parse_database(DATABASE_TEXT))
    return ProvenanceSession(DatalogQuery(program, "tc"), database)


def chain_db(n: int) -> str:
    """A path graph a0 -> a1 -> ... -> an as database text."""
    return " ".join(f"e(x{i}, x{i + 1})." for i in range(n))


#: The two daemon topologies every wire-contract test must satisfy.
WIRE_MODES = ("single", "sharded")


@contextmanager
def wire_service(mode: str, threads: int = 4):
    """A connected client against the requested daemon topology.

    ``single`` is the in-process TCP daemon; ``sharded`` is the
    multi-process one — an async front-end routing to two supervised
    worker subprocesses. The yielded client speaks the same protocol to
    both, which is the whole point of parametrizing over this.
    """
    if mode == "sharded":
        with local_sharded_service(workers=2, worker_threads=threads) as client:
            yield client
    else:
        with local_service(threads=threads) as client:
            yield client


class TestProtocol:
    def test_decode_rejects_bad_json(self):
        with pytest.raises(ServiceError) as err:
            decode_request("{not json")
        assert err.value.code == "parse-error"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServiceError) as err:
            decode_request("[1, 2]")
        assert err.value.code == "parse-error"

    def test_encode_is_deterministic(self):
        a = encode({"b": 1, "a": [2, 3]})
        b = encode({"a": [2, 3], "b": 1})
        assert a == b
        assert "\n" not in a

    def test_render_member_sorts_facts(self):
        facts = parse_database("e(b, c). e(a, b).")
        assert render_member(facts) == ["e(a, b).", "e(b, c)."]

    def test_render_members_keeps_list_order(self):
        m1 = frozenset(parse_database("e(a, c)."))
        m2 = frozenset(parse_database("e(a, b). e(b, c)."))
        rendered = render_members([m2, m1])
        assert rendered == [["e(a, b).", "e(b, c)."], ["e(a, c)."]]

    def test_parse_address(self):
        assert parse_address("localhost:7463") == ("localhost", 7463)
        assert parse_address(":99") == ("127.0.0.1", 99)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestRegistry:
    def test_digest_ignores_rule_fact_order_and_whitespace(self):
        registry = SessionRegistry()
        base = registry.digest_for(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        reordered_rules = (
            "tc(X, Z) :- tc(X, Y), e(Y, Z).\ntc(X, Y)   :-   e(X, Y)."
        )
        reordered_facts = "e(b, c).\n\n  e(a, c). e(a, b)."
        assert registry.digest_for(reordered_rules, reordered_facts, "tc") == base

    def test_digest_separates_answer_predicates(self):
        two_idb = "p(X) :- e(X, Y).\nq(Y) :- e(X, Y)."
        registry = SessionRegistry()
        assert registry.digest_for(two_idb, "e(a, b).", "p") != registry.digest_for(
            two_idb, "e(a, b).", "q"
        )

    def test_digest_separates_databases(self):
        registry = SessionRegistry()
        assert registry.digest_for(
            PROGRAM_TEXT, "e(a, b).", "tc"
        ) != registry.digest_for(PROGRAM_TEXT, "e(a, c).", "tc")

    def test_acquire_admits_then_hits(self):
        registry = SessionRegistry()
        entry, admitted = registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        assert admitted and registry.admissions == 1
        again, admitted_again = registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        assert not admitted_again and again is entry
        assert registry.hits == 1
        # Admission pays the evaluation up front; hits never re-evaluate.
        assert entry.session.stats.evaluations == 1

    def test_answer_defaulting_single_idb(self):
        registry = SessionRegistry()
        entry, _ = registry.acquire(PROGRAM_TEXT, DATABASE_TEXT)
        assert entry.answer == "tc"

    def test_answer_required_when_ambiguous(self):
        registry = SessionRegistry()
        two_idb = "p(X) :- e(X, Y).\nq(Y) :- e(X, Y)."
        with pytest.raises(ServiceError) as err:
            registry.acquire(two_idb, "e(a, b).")
        assert err.value.code == "bad-request"

    def test_unparsable_program_is_program_error(self):
        registry = SessionRegistry()
        with pytest.raises(ServiceError) as err:
            registry.acquire("this is not datalog", DATABASE_TEXT, "tc")
        assert err.value.code == "program-error"

    def test_out_of_schema_database_rejected(self):
        registry = SessionRegistry()
        with pytest.raises(ServiceError) as err:
            registry.acquire(PROGRAM_TEXT, "zzz(a).", "tc")
        assert err.value.code == "bad-request"

    def test_get_unknown_session(self):
        registry = SessionRegistry()
        with pytest.raises(ServiceError) as err:
            registry.get("deadbeef")
        assert err.value.code == "unknown-session"

    def test_lru_eviction_at_session_cap(self):
        registry = SessionRegistry(max_sessions=2, max_bytes=None)
        first, _ = registry.acquire(PROGRAM_TEXT, chain_db(2), "tc")
        second, _ = registry.acquire(PROGRAM_TEXT, chain_db(3), "tc")
        # Touch the first so the second becomes the LRU victim.
        registry.get(first.digest)
        registry.acquire(PROGRAM_TEXT, chain_db(4), "tc")
        assert registry.evictions == 1
        registry.get(first.digest)  # survived: it was recently used
        with pytest.raises(ServiceError):
            registry.get(second.digest)

    def test_byte_budget_eviction_keeps_newest(self):
        # A budget below any single session: older entries are evicted,
        # the newest always survives (no thrashing on oversized input).
        registry = SessionRegistry(max_sessions=8, max_bytes=1)
        a, _ = registry.acquire(PROGRAM_TEXT, chain_db(2), "tc")
        b, _ = registry.acquire(PROGRAM_TEXT, chain_db(3), "tc")
        assert len(registry) == 1
        registry.get(b.digest)
        with pytest.raises(ServiceError):
            registry.get(a.digest)

    def test_eviction_then_readmission_round_trip(self):
        registry = SessionRegistry(max_sessions=1, max_bytes=None)
        first, _ = registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        expected = first.session.answers()
        registry.acquire(PROGRAM_TEXT, chain_db(3), "tc")  # evicts the first
        with pytest.raises(ServiceError):
            registry.get(first.digest)
        readmitted, admitted = registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        assert admitted
        assert readmitted.digest == first.digest  # same content, same address
        assert readmitted.session.answers() == expected

    def test_stats_shape(self):
        registry = SessionRegistry()
        registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        stats = registry.stats()
        assert stats["session_count"] == 1
        assert stats["admissions"] == 1
        assert stats["bytes_in_use"] > 0
        (described,) = stats["sessions"]
        assert described["answer"] == "tc"
        assert described["version"] == 0

    def test_concurrent_admissions_evaluate_once(self):
        # Racing acquires of one new digest: exactly one admission,
        # everyone gets the same entry, the session evaluated once.
        registry = SessionRegistry()
        results = []

        def admit():
            results.append(registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc"))

        threads = [threading.Thread(target=admit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert registry.admissions == 1
        entries = {id(entry) for entry, _ in results}
        assert len(entries) == 1
        assert sum(1 for _, admitted in results if admitted) == 1
        (entry, _) = results[0]
        assert entry.session.stats.evaluations == 1

    def test_failed_admission_does_not_wedge_the_digest(self):
        # A bad-request admission must clear its in-flight marker so a
        # corrected retry (same digest would differ, but same racing
        # path) still works.
        registry = SessionRegistry()
        with pytest.raises(ServiceError):
            registry.acquire(PROGRAM_TEXT, "zzz(a).", "tc")
        entry, admitted = registry.acquire(PROGRAM_TEXT, DATABASE_TEXT, "tc")
        assert admitted and entry.answer == "tc"

    def test_content_digest_function_matches_registry(self):
        program = parse_program(PROGRAM_TEXT)
        database = Database(parse_database(DATABASE_TEXT))
        query = DatalogQuery(program, "tc")
        registry = SessionRegistry()
        assert registry.digest_for(PROGRAM_TEXT, DATABASE_TEXT, "tc") == (
            content_digest(query, database)
        )


class TestDispatcher:
    """The transport-independent request -> response mapping."""

    def setup_method(self):
        self.service = ProvenanceService(registry=SessionRegistry())

    def teardown_method(self):
        self.service.close()

    def open_session(self) -> str:
        response = self.service.handle_request(
            {"op": "open", "program": PROGRAM_TEXT, "database": DATABASE_TEXT,
             "answer": "tc"}
        )
        assert response["ok"]
        return response["session"]

    def test_ping(self):
        response = self.service.handle_request({"id": 5, "op": "ping"})
        assert response["id"] == 5 and response["ok"]
        assert response["result"]["protocol"] == PROTOCOL_VERSION

    def test_unknown_op(self):
        response = self.service.handle_request({"op": "frobnicate"})
        assert not response["ok"]
        assert response["error"]["code"] == "unknown-op"

    def test_handle_line_bad_json(self):
        response = json.loads(self.service.handle_line("{oops"))
        assert not response["ok"]
        assert response["error"]["code"] == "parse-error"

    def test_open_reports_admission_then_warm_hit(self):
        first = self.service.handle_request(
            {"op": "open", "program": PROGRAM_TEXT, "database": DATABASE_TEXT}
        )
        assert first["result"]["admitted"] is True
        assert first["result"]["answers"] == 3
        second = self.service.handle_request(
            {"op": "open", "program": PROGRAM_TEXT, "database": DATABASE_TEXT}
        )
        assert second["result"]["admitted"] is False
        assert second["session"] == first["session"]

    def test_why_matches_in_process_session(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "why", "session": digest, "tuple": ["a", "c"]}
        )
        session = make_session()
        assert response["result"]["members"] == render_members(
            session.why(("a", "c"))
        )
        assert response["version"] == 0

    def test_why_non_answer(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "why", "session": digest, "tuple": ["c", "a"]}
        )
        assert response["result"] == {"is_answer": False, "members": []}

    def test_why_arity_mismatch_is_bad_request(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "why", "session": digest, "tuple": ["a"]}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad-request"

    def test_why_requires_tuple(self):
        digest = self.open_session()
        response = self.service.handle_request({"op": "why", "session": digest})
        assert response["error"]["code"] == "bad-request"

    def test_session_or_inline_texts_required(self):
        response = self.service.handle_request({"op": "why", "tuple": ["a", "c"]})
        assert response["error"]["code"] == "bad-request"

    def test_inline_texts_auto_open(self):
        response = self.service.handle_request(
            {"op": "why", "program": PROGRAM_TEXT, "database": DATABASE_TEXT,
             "tuple": ["a", "c"]}
        )
        assert response["ok"] and len(response["result"]["members"]) == 2
        assert response["session"]  # addressable for follow-up requests

    def test_unknown_session(self):
        response = self.service.handle_request(
            {"op": "why", "session": "deadbeef", "tuple": ["a", "c"]}
        )
        assert response["error"]["code"] == "unknown-session"

    def test_decide_parity_and_tree_class_validation(self):
        digest = self.open_session()
        member = self.service.handle_request(
            {"op": "decide", "session": digest, "tuple": ["a", "c"],
             "subset": ["e(a, c)."]}
        )
        assert member["result"] == {"member": True, "tree_class": "unambiguous"}
        non_member = self.service.handle_request(
            {"op": "decide", "session": digest, "tuple": ["a", "c"],
             "subset": ["e(a, b)."], "tree_class": "arbitrary"}
        )
        assert non_member["result"]["member"] is False
        bad = self.service.handle_request(
            {"op": "decide", "session": digest, "tuple": ["a", "c"],
             "subset": ["e(a, c)."], "tree_class": "wibble"}
        )
        assert bad["error"]["code"] == "bad-request"

    def test_smallest_and_minimal_parity(self):
        digest = self.open_session()
        session = make_session()
        smallest = self.service.handle_request(
            {"op": "smallest", "session": digest, "tuple": ["a", "c"]}
        )
        assert smallest["result"]["member"] == render_member(
            session.smallest_member(("a", "c"))
        )
        minimal = self.service.handle_request(
            {"op": "minimal", "session": digest, "tuple": ["a", "c"]}
        )
        assert minimal["result"]["members"] == render_members(
            session.minimal_members(("a", "c"))
        )

    def test_batch_all_answers_parity(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "batch", "session": digest, "all_answers": True}
        )
        session = make_session()
        batch = session.explain_batch()
        wire = response["result"]["results"]
        assert [tuple(r["tuple"]) for r in wire] == [
            r.tuple_value for r in batch.results
        ]
        assert [r["members"] for r in wire] == [
            render_members(r.members) for r in batch.results
        ]

    def test_batch_reports_per_tuple_errors(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "batch", "session": digest,
             "tuples": [["a", "b"], ["a"], ["c", "a"]]}
        )
        results = response["result"]["results"]
        assert results[0]["is_answer"] and results[0]["error"] is None
        assert results[1]["error"] is not None
        assert not results[2]["is_answer"] and results[2]["error"] is None

    def test_batch_requires_tuples_or_all_answers(self):
        digest = self.open_session()
        response = self.service.handle_request({"op": "batch", "session": digest})
        assert response["error"]["code"] == "bad-request"

    def test_update_bumps_version_and_stamps_responses(self):
        digest = self.open_session()
        before = self.service.handle_request(
            {"op": "why", "session": digest, "tuple": ["a", "c"]}
        )
        assert before["version"] == 0
        update = self.service.handle_request(
            {"op": "update", "session": digest, "lines": ["-e(b, c)."]}
        )
        assert update["ok"]
        assert update["result"]["version"] == 1
        assert update["result"]["deleted"] == 1
        after = self.service.handle_request(
            {"op": "why", "session": digest, "tuple": ["a", "c"]}
        )
        assert after["version"] == 1
        assert after["result"]["members"] == [["e(a, c)."]]

    def test_update_insert_delete_fields(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "update", "session": digest,
             "insert": ["e(c, d)."], "delete": ["e(a, c)."]}
        )
        assert response["result"]["inserted"] == 1
        assert response["result"]["deleted"] == 1
        assert response["result"]["fact_count"] == 3

    def test_update_malformed_line_rejected(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "update", "session": digest, "lines": ["wibble"]}
        )
        assert response["error"]["code"] == "bad-request"
        assert "wibble" in response["error"]["message"]

    def test_update_out_of_schema_rejected_session_survives(self):
        digest = self.open_session()
        rejected = self.service.handle_request(
            {"op": "update", "session": digest, "lines": ["+zzz(q)."]}
        )
        assert rejected["error"]["code"] == "bad-request"
        ok = self.service.handle_request(
            {"op": "why", "session": digest, "tuple": ["a", "c"]}
        )
        assert ok["ok"] and ok["version"] == 0

    def test_update_empty_delta_rejected(self):
        digest = self.open_session()
        response = self.service.handle_request(
            {"op": "update", "session": digest, "lines": []}
        )
        assert response["error"]["code"] == "bad-request"

    def test_update_never_reevaluates(self):
        digest = self.open_session()
        for lines in (["+e(c, d)."], ["-e(c, d)."], ["-e(a, b)."]):
            self.service.handle_request(
                {"op": "update", "session": digest, "lines": lines}
            )
        stats = self.service.handle_request({"op": "stats", "session": digest})
        assert stats["result"]["session_stats"]["evaluations"] == 1
        assert stats["result"]["session_stats"]["updates"] == 3

    def test_stats_counts_requests(self):
        self.service.handle_request({"op": "ping"})
        response = self.service.handle_request({"op": "stats"})
        assert response["result"]["requests_served"] >= 1
        assert response["result"]["protocol"] == PROTOCOL_VERSION

    def test_internal_errors_become_responses(self):
        # A request the handlers cannot serve must still produce a
        # response envelope, never an exception up the transport.
        response = self.service.handle_request(
            {"op": "why", "program": PROGRAM_TEXT, "database": DATABASE_TEXT,
             "tuple": {"not": "an array"}}
        )
        assert not response["ok"]

    def test_non_constant_tuple_elements_are_bad_request(self):
        digest = self.open_session()
        for bad in ([["a"], "c"], [None, "c"], [True, "c"]):
            response = self.service.handle_request(
                {"op": "why", "session": digest, "tuple": bad}
            )
            assert response["error"]["code"] == "bad-request"


@pytest.mark.parametrize("mode", WIRE_MODES)
class TestWire:
    """The same contracts through a real TCP socket, in both topologies.

    Every test here runs twice — against the single-process daemon and
    against the sharded multi-process one — asserting only what the
    public protocol promises (responses, version stamps, the stats op),
    never process internals.
    """

    def test_byte_identity_over_the_wire(self, mode):
        session = make_session()
        with wire_service(mode) as client:
            opened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            digest = opened["session"]
            for tup in session.answers():
                wire = client.why(digest, tup)["result"]["members"]
                assert wire == render_members(session.why(tup))
            batch = client.batch(digest, all_answers=True)["result"]["results"]
            local = session.explain_batch()
            assert [r["members"] for r in batch] == [
                render_members(r.members) for r in local.results
            ]

    def test_pipelined_requests_match_ids(self, mode):
        with wire_service(mode) as client:
            opened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            digest = opened["session"]
            for index in range(5):
                response = client.request(
                    {"id": 1000 + index, "op": "answers", "session": digest}
                )
                assert response["id"] == 1000 + index and response["ok"]

    def test_threaded_clients_hammer_one_session(self, mode):
        # N threads x M why-requests against one warm session: every
        # response identical, the session still evaluated exactly once
        # (the per-session lock — on whichever process owns the session —
        # made the concurrent cache fills safe). Asserted through the
        # public stats op, so the same check holds when the session
        # lives on a shard worker rather than in this process.
        session = make_session()
        expected = {
            tup: render_members(session.why(tup)) for tup in session.answers()
        }
        failures = []
        with wire_service(mode) as client:
            digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]

            def hammer():
                try:
                    with ServiceClient(port=client.address[1]) as mine:
                        for _ in range(4):
                            for tup, members in expected.items():
                                got = mine.why(digest, tup)["result"]["members"]
                                if got != members:
                                    failures.append((tup, got))
                except Exception as exc:  # surface in the main thread
                    failures.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            stats = client.stats(digest)["result"]
            assert stats["session_stats"]["evaluations"] == 1
        assert failures == []

    def test_interleaved_update_and_why_version_consistency(self, mode):
        # One writer toggles e(c, d); readers hammer why(a, d). Version
        # stamps let every response be attributed to a database state:
        # odd version => the edge exists => two witnesses through it;
        # even version => no edge => not an answer. Any mismatch means a
        # read observed a half-applied update.
        from repro.datalog.atoms import Atom
        from repro.datalog.database import Delta

        with_edge = make_session()
        with_edge.update(Delta.insert(Atom("e", ("c", "d"))))
        expected_odd = render_members(with_edge.why(("a", "d")))
        failures = []
        with wire_service(mode) as client:
            digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            port = client.address[1]
            stop = threading.Event()

            def writer():
                try:
                    with ServiceClient(port=port) as mine:
                        for round_index in range(6):
                            line = "+e(c, d)." if round_index % 2 == 0 else "-e(c, d)."
                            mine.update(digest, lines=[line])
                finally:
                    stop.set()

            def reader():
                try:
                    with ServiceClient(port=port) as mine:
                        while not stop.is_set():
                            response = mine.why(digest, ("a", "d"))
                            version = response["version"]
                            members = response["result"]["members"]
                            expected = expected_odd if version % 2 == 1 else []
                            if members != expected:
                                failures.append((version, members))
                except Exception as exc:
                    failures.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            writer_thread = threading.Thread(target=writer)
            for t in threads:
                t.start()
            writer_thread.start()
            writer_thread.join(timeout=60)
            for t in threads:
                t.join(timeout=60)
            final = client.why(digest, ("a", "d"))
            assert final["version"] == 6
            assert final["result"]["members"] == []
        assert failures == []

    def test_eviction_and_readmission_over_the_wire(self, mode):
        if mode == "sharded":
            # Eviction happens per worker, so the two evicting sessions
            # must land on the *same shard* as the first. Routing is a
            # pure function of content digest and slot names, so the
            # co-located databases can be computed up front — which is
            # itself a test of the routing rule's determinism.
            from repro.service.registry import routing_digest
            from repro.service.shard import HashRing, worker_slots

            ring = HashRing(worker_slots(2))
            owner = ring.lookup(routing_digest(PROGRAM_TEXT, DATABASE_TEXT, "tc"))
            colocated = [
                chain_db(n)
                for n in range(3, 60)
                if ring.lookup(routing_digest(PROGRAM_TEXT, chain_db(n), "tc"))
                == owner
            ][:2]
            assert len(colocated) == 2
            ctx = local_sharded_service(workers=2, max_sessions=2)
        else:
            colocated = [chain_db(3), chain_db(4)]
            ctx = local_service(
                registry=SessionRegistry(max_sessions=2, max_bytes=None)
            )
        with ctx as client:
            first = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            first_answers = client.answers(first)["result"]["answers"]
            client.open(PROGRAM_TEXT, colocated[0], "tc")
            client.open(PROGRAM_TEXT, colocated[1], "tc")  # evicts the first
            with pytest.raises(ServiceError) as err:
                client.answers(first)
            assert err.value.code == "unknown-session"
            # Re-admission: same texts, same digest, same answers.
            reopened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert reopened["session"] == first
            assert reopened["result"]["admitted"] is True
            assert client.answers(first)["result"]["answers"] == first_answers

    def test_update_storm_recovery(self, mode):
        # A burst of updates leaves the session correct and still on its
        # first evaluation; the next read serves from maintained state.
        session = make_session()
        with wire_service(mode) as client:
            digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            for index in range(5):
                client.update(digest, lines=[f"+e(s{index}, s{index + 1})."])
            for index in range(5):
                client.update(digest, lines=[f"-e(s{index}, s{index + 1})."])
            response = client.why(digest, ("a", "c"))
            assert response["version"] == 10
            assert response["result"]["members"] == render_members(
                session.why(("a", "c"))
            )
            stats = client.stats(digest)["result"]
            assert stats["session_stats"]["evaluations"] == 1

    def test_shutdown_request_stops_server(self, mode):
        with wire_service(mode) as client:
            assert client.shutdown_server()["result"] == {"stopping": True}


class TestErrorPaths:
    """Hostile and unlucky clients: the daemon must answer or shrug, never die.

    Today's wire tests all speak well-formed NDJSON and wait politely for
    replies; these cover the rest — garbage frames, unknown operations,
    oversized batch requests against the server cap, and clients that
    vanish mid-request — asserting both the error envelope and that the
    daemon keeps serving everyone else afterwards.
    """

    @staticmethod
    def _raw_exchange(port: int, payload: bytes) -> dict:
        """Send raw bytes on a fresh socket, read back one response line."""
        with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
            sock.sendall(payload)
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            line = reader.readline()
        assert line, "server closed the connection without answering"
        return json.loads(line)

    def test_malformed_ndjson_frame_gets_parse_error(self):
        with local_service() as client:
            port = client.address[1]
            response = self._raw_exchange(port, b"{this is not json\n")
            assert not response["ok"]
            assert response["error"]["code"] == "parse-error"
            # The registry and dispatcher survived a garbage frame.
            assert client.ping()["ok"]

    def test_non_object_frame_gets_parse_error(self):
        with local_service() as client:
            response = self._raw_exchange(client.address[1], b"[1, 2, 3]\n")
            assert not response["ok"]
            assert response["error"]["code"] == "parse-error"

    def test_connection_survives_bad_frame_then_serves(self):
        # One connection: garbage line, then a valid request. NDJSON
        # framing is per line, so the stream resynchronizes by itself.
        with local_service() as client:
            with socket.create_connection(
                ("127.0.0.1", client.address[1]), timeout=5
            ) as sock:
                reader = sock.makefile("r", encoding="utf-8", newline="\n")
                sock.sendall(b"%%% garbage %%%\n")
                first = json.loads(reader.readline())
                assert first["error"]["code"] == "parse-error"
                sock.sendall(encode({"id": 1, "op": "ping"}).encode() + b"\n")
                second = json.loads(reader.readline())
                assert second["ok"] and second["id"] == 1

    def test_unknown_op_over_the_wire(self):
        with local_service() as client:
            response = client.request({"op": "frobnicate"})
            assert not response["ok"]
            assert response["error"]["code"] == "unknown-op"
            assert "known:" in response["error"]["message"]

    def test_missing_op_over_the_wire(self):
        with local_service() as client:
            response = client.request({"tuple": ["a", "b"]})
            assert not response["ok"]
            assert response["error"]["code"] == "unknown-op"

    def test_oversized_batch_rejected_inline(self):
        service = ProvenanceService(max_batch_tuples=3)
        try:
            digest = service.handle_request(
                {"op": "open", "program": PROGRAM_TEXT,
                 "database": DATABASE_TEXT, "answer": "tc"}
            )["session"]
            response = service.handle_request(
                {"op": "batch", "session": digest,
                 "tuples": [["a", "b"]] * 4}
            )
            assert not response["ok"]
            assert response["error"]["code"] == "bad-request"
            assert "cap of 3" in response["error"]["message"]
            # At the cap is still fine.
            response = service.handle_request(
                {"op": "batch", "session": digest,
                 "tuples": [["a", "b"]] * 3}
            )
            assert response["ok"]
        finally:
            service.close()

    def test_oversized_batch_rejected_all_answers(self):
        # chain_db(6) yields 21 closure answers; cap the batch below that.
        service = ProvenanceService(max_batch_tuples=5)
        try:
            digest = service.handle_request(
                {"op": "open", "program": PROGRAM_TEXT,
                 "database": chain_db(6), "answer": "tc"}
            )["session"]
            response = service.handle_request(
                {"op": "batch", "session": digest, "all_answers": True}
            )
            assert not response["ok"]
            assert response["error"]["code"] == "bad-request"
            assert "split the request" in response["error"]["message"]
        finally:
            service.close()

    def test_disconnect_before_response_leaves_server_alive(self):
        # The client fires a request and hangs up without reading: the
        # handler's write hits a dead socket (BrokenPipe/ConnectionReset)
        # and must swallow it; the next client is served normally.
        with local_service() as client:
            port = client.address[1]
            for _ in range(3):
                sock = socket.create_connection(("127.0.0.1", port), timeout=5)
                sock.sendall(
                    encode({"op": "open", "program": PROGRAM_TEXT,
                            "database": DATABASE_TEXT, "answer": "tc"}).encode()
                    + b"\n"
                )
                # Hard close (RST rather than FIN) maximizes the chance
                # the server's write actually fails mid-flight.
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.close()
            deadline = time.time() + 5
            while time.time() < deadline:
                if client.ping()["ok"]:
                    break
            opened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert opened["ok"] and opened["result"]["answers"] == 3

    def test_disconnect_mid_line_is_ignored(self):
        # A partial request line (no newline) then EOF: the reader loop
        # sees an unterminated line at EOF and the connection just ends.
        with local_service() as client:
            with socket.create_connection(
                ("127.0.0.1", client.address[1]), timeout=5
            ) as sock:
                sock.sendall(b'{"op": "ping"')  # no newline, then FIN
            assert client.ping()["ok"]


class TestDurableService:
    """The durable warm-state tier as seen over the wire.

    The store itself is covered in ``test_store.py`` /
    ``test_store_faults.py``; here the assertions are about what clients
    observe: the ``stats`` counters, the ``rehydrated`` flag on ``open``,
    and warm state surviving a full daemon teardown + restart on the
    same ``--state-dir``.
    """

    def test_stats_expose_durability_counters(self, tmp_path):
        with local_service(state_dir=str(tmp_path)) as client:
            client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            stats = client.stats()["result"]
            for counter in (
                "evictions",
                "demotions",
                "demotion_failures",
                "rehydrations",
                "persist_failures",
            ):
                assert stats[counter] == 0
            store = stats["store"]
            assert store["stored_digests"] == 1
            assert store["snapshot_writes"] == 1
            assert store["disk_bytes"] > 0

    def test_stats_store_is_null_without_state_dir(self):
        with local_service() as client:
            client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert client.stats()["result"]["store"] is None

    def test_restart_serves_updated_state_without_reevaluating(self, tmp_path):
        with local_service(state_dir=str(tmp_path)) as client:
            opened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert opened["result"]["rehydrated"] is False
            digest = opened["session"]
            client.update(digest, insert=["e(c, d)."])
            answers = client.answers(digest)["result"]["answers"]

        # Hard stop above (no demotion flush); second daemon, same dir.
        with local_service(state_dir=str(tmp_path)) as client:
            reopened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert reopened["session"] == digest
            assert reopened["result"]["admitted"] is True
            assert reopened["result"]["rehydrated"] is True
            assert reopened["version"] == 1  # the WAL'd update replayed
            stats = client.stats(session=digest)["result"]
            assert stats["session_stats"]["evaluations"] == 1
            assert stats["rehydrations"] == 1
            assert client.answers(digest)["result"]["answers"] == answers

    def test_eviction_demotes_and_reopen_rehydrates_over_the_wire(self, tmp_path):
        registry = SessionRegistry(
            max_sessions=1, store=SnapshotStore(str(tmp_path))
        )
        with local_service(registry=registry) as client:
            first = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            client.open(PROGRAM_TEXT, chain_db(3), "tc")  # evicts + demotes
            stats = client.stats()["result"]
            assert stats["evictions"] == 1
            assert stats["demotions"] == 1
            reopened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert reopened["session"] == first
            assert reopened["result"]["rehydrated"] is True
            assert client.stats()["result"]["rehydrations"] == 1


class TestSharded:
    """What only the multi-process daemon promises: routing and topology.

    The shared wire contract is covered by the parametrized
    :class:`TestWire`; these tests pin down the sharded daemon's own
    observable behavior — the aggregate stats table, the shard block on
    session stats, routing stability against the published hash ring,
    and error-message parity with the single-process dispatcher.
    """

    def test_aggregate_stats_shape(self):
        with local_sharded_service(workers=2) as client:
            client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            result = client.stats()["result"]
            sharding = result["sharding"]
            assert sharding["workers"] == 2
            assert len(sharding["per_worker"]) == 2
            slots = [row["slot"] for row in sharding["per_worker"]]
            assert slots == ["shard-0", "shard-1"]
            for row in sharding["per_worker"]:
                assert row["alive"] is True
                assert row["restarts"] == 0
                assert isinstance(row["pid"], int)
            # Exactly one worker holds the admitted session; the summed
            # counters see it exactly once.
            assert result["session_count"] == 1
            assert result["admissions"] == 1
            assert [s["answer"] for s in result["sessions"]] == ["tc"]
            assert result["store"] is None

    def test_single_process_stats_report_no_sharding(self):
        with local_service() as client:
            assert client.stats()["result"]["sharding"] is None

    def test_session_stats_carry_owning_shard(self):
        from repro.service.registry import routing_digest
        from repro.service.shard import HashRing, worker_slots

        with local_sharded_service(workers=2) as client:
            digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            shard = client.stats(digest)["result"]["shard"]
            # The advertised owner is exactly what the published ring
            # computes from the digest — clients can predict placement.
            ring = HashRing(worker_slots(2))
            assert shard["slot"] == ring.lookup(digest)
            assert digest == routing_digest(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert shard["alive"] is True

    def test_routing_is_stable_across_requests(self):
        with local_sharded_service(workers=2) as client:
            digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            owners = {
                client.stats(digest)["result"]["shard"]["slot"] for _ in range(5)
            }
            assert len(owners) == 1
            # Inline texts route to the same shard as their digest: the
            # warm session is found, not re-admitted elsewhere.
            reopened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert reopened["result"]["admitted"] is False
            assert reopened["session"] == digest

    def test_error_parity_with_single_process(self):
        """Router-level failures must be byte-identical to dispatcher ones."""
        probes = [
            {"op": "frobnicate"},
            {"op": "why", "tuple": ["a", "c"]},
            {"op": "why", "session": 7, "tuple": ["a", "c"]},
            {"op": "why", "program": PROGRAM_TEXT, "database": DATABASE_TEXT,
             "answer": 9, "tuple": ["a", "c"]},
            {"op": "why", "program": "this is not datalog",
             "database": DATABASE_TEXT, "tuple": ["a", "c"]},
            {"op": "why", "session": "deadbeef", "tuple": ["a", "c"]},
        ]
        with local_service() as single, local_sharded_service(workers=2) as sharded:
            for index, probe in enumerate(probes):
                request = {**probe, "id": index}
                assert single.request(request) == sharded.request(request), probe

    def test_ping_served_by_the_router(self):
        with local_sharded_service(workers=2) as client:
            result = client.ping()["result"]
            assert result["pong"] is True
            assert result["protocol"] == PROTOCOL_VERSION

    def test_sessions_spread_over_workers(self):
        # Open sessions until both shards own at least one (bounded by
        # the ring's balance; a handful of distinct digests suffices).
        from repro.service.registry import routing_digest
        from repro.service.shard import HashRing, worker_slots

        ring = HashRing(worker_slots(2))
        databases = []
        seen = set()
        for n in range(2, 60):
            text = chain_db(n)
            slot = ring.lookup(routing_digest(PROGRAM_TEXT, text, "tc"))
            if slot not in seen:
                seen.add(slot)
                databases.append(text)
            if len(seen) == 2:
                break
        assert len(databases) == 2
        with local_sharded_service(workers=2) as client:
            for text in databases:
                client.open(PROGRAM_TEXT, text, "tc")
            per_worker = client.stats()["result"]["sharding"]["per_worker"]
            assert [row["session_count"] for row in per_worker] == [1, 1]
