"""Deeper tests of CDCL solver internals and robustness.

These complement test_sat_solvers.py with adversarial incremental usage
patterns (the exact patterns the enumerator and deciders produce) and
statistics bookkeeping.
"""

import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.solver import CDCLSolver


def random_cnf(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        size = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), size)
        cnf.add_clause(tuple(v if rng.random() < 0.5 else -v for v in variables))
    return cnf


class TestIncrementalTorture:
    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_solves_and_additions(self, seed):
        """Clauses added between solves must behave as if present from the
        start — checked against a fresh DPLL solve each round."""
        rng = random.Random(seed)
        accumulated = CNF(8)
        solver = CDCLSolver(8)
        for round_no in range(12):
            size = rng.randint(1, 3)
            variables = rng.sample(range(1, 9), size)
            clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
            accumulated.add_clause(clause)
            solver.add_clause(clause)
            expected = solve_dpll(accumulated) is not None
            got = solver.solve()
            assert bool(got) == expected, f"round {round_no}"
            if not expected:
                break

    @pytest.mark.parametrize("seed", range(5))
    def test_blocking_loop_terminates_with_exact_count(self, seed):
        """Blocking full models enumerates exactly the truth-table count."""
        cnf = random_cnf(5, 8, seed)
        import itertools

        expected = sum(
            1
            for bits in itertools.product((False, True), repeat=5)
            if cnf.evaluate({i + 1: bits[i] for i in range(5)})
        )
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        count = 0
        while solver.solve():
            model = solver.model()
            count += 1
            assert cnf.evaluate(model)
            blocking = [(-v if model[v] else v) for v in range(1, 6)]
            if not solver.add_clause(blocking):
                break
            assert count <= 32
        assert count == expected

    def test_solve_after_unsat_stays_unsat(self):
        solver = CDCLSolver(1)
        solver.add_clause((1,))
        solver.add_clause((-1,))
        assert solver.solve() is False
        assert solver.solve() is False
        assert solver.add_clause((1,)) is False


class TestAssumptionPatterns:
    def test_many_assumption_rounds(self):
        """The decider pattern: one formula, many assumption sets."""
        cnf = random_cnf(10, 25, seed=3)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        rng = random.Random(0)
        for _ in range(20):
            assumptions = [
                (v if rng.random() < 0.5 else -v)
                for v in rng.sample(range(1, 11), 4)
            ]
            expected = solve_dpll(cnf, assumptions=assumptions) is not None
            assert bool(solver.solve(assumptions=assumptions)) == expected

    def test_assumptions_on_fresh_variables(self):
        solver = CDCLSolver()
        solver.add_clause((1, 2))
        # Assumption mentions a variable the solver has never seen.
        assert solver.solve(assumptions=[5]) is True
        assert solver.model()[5] is True


class TestTimeout:
    def test_timeout_returns_none_on_hard_instance(self):
        # A large pigeonhole instance cannot be solved in ~zero time.
        n = 9
        cnf = CNF(n * (n - 1))

        def var(i, h):
            return i * (n - 1) + h + 1

        for i in range(n):
            cnf.add_clause(tuple(var(i, h) for h in range(n - 1)))
        for h in range(n - 1):
            for i in range(n):
                for j in range(i + 1, n):
                    cnf.add_clause((-var(i, h), -var(j, h)))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        result = solver.solve(timeout_seconds=0.05)
        assert result is None
        # The solver remains usable afterwards.
        assert solver.solve(assumptions=[var(0, 0)], timeout_seconds=0.05) in (
            None,
            True,
            False,
        )

    def test_generous_timeout_still_answers(self):
        cnf = random_cnf(8, 20, seed=11)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        expected = solve_dpll(cnf) is not None
        assert bool(solver.solve(timeout_seconds=60)) == expected


class TestStatistics:
    def test_counters_move(self):
        cnf = random_cnf(12, 50, seed=2)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.solve()
        stats = solver.stats.as_dict()
        assert stats["propagations"] > 0
        assert stats["decisions"] >= 0
        assert set(stats) == {
            "conflicts", "decisions", "propagations", "restarts", "learned", "removed",
        }

    def test_clause_db_reduction_triggers_on_long_runs(self):
        # Pigeonhole 7/6 generates plenty of learned clauses.
        n = 7
        cnf = CNF(n * (n - 1))

        def var(i, h):
            return i * (n - 1) + h + 1

        for i in range(n):
            cnf.add_clause(tuple(var(i, h) for h in range(n - 1)))
        for h in range(n - 1):
            for i in range(n):
                for j in range(i + 1, n):
                    cnf.add_clause((-var(i, h), -var(j, h)))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve() is False
        assert solver.stats.learned > 0


# -- incremental SAT core (ISSUE 9) ------------------------------------------

from array import array

from repro.core.session import ProvenanceSession
from repro.datalog.database import Database, Delta
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.sat.incremental import SolverPool, VariableInterner

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c)."))
TC_QUERY = DatalogQuery(TC, "tc")


def pooled_session(db=TC_DB, **kwargs):
    kwargs.setdefault("sat_mode", "pooled")
    return ProvenanceSession(TC_QUERY, db, **kwargs)


def assert_watch_invariant(solver):
    """Every multi-literal clause is watched at exactly literals[0:2]."""
    live = {}
    for clause in solver._clauses + solver._learned:
        if len(clause.literals) >= 2:
            live[id(clause)] = sorted(
                CDCLSolver._watch_index(lit) for lit in clause.literals[:2]
            )
    watched = {}
    for slot, bucket in enumerate(solver._watches):
        for clause in bucket:
            assert id(clause) in live, "stale watch entry for a dropped clause"
            watched.setdefault(id(clause), []).append(slot)
    for key, slots in live.items():
        assert sorted(watched.get(key, [])) == slots
    # Trail/assignment coherence: assigned vars and trail entries agree.
    assigned = sum(1 for v in solver._assign[1:] if v != 0)
    assert assigned == len(solver._trail)
    for lit in solver._trail:
        assert solver._assign[abs(lit)] != 0


class TestTypedArrays:
    def test_buffers_are_typed_arrays(self):
        solver = CDCLSolver(4)
        assert isinstance(solver._assign, array) and solver._assign.typecode == "b"
        assert isinstance(solver._level, array) and solver._level.typecode == "i"
        assert isinstance(solver._trail, array) and solver._trail.typecode == "i"
        assert isinstance(solver._phase, array) and solver._phase.typecode == "b"

    @pytest.mark.parametrize("seed", range(6))
    def test_watch_invariant_after_solve(self, seed):
        cnf = random_cnf(10, 32, seed)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.solve()
        assert_watch_invariant(solver)

    @pytest.mark.parametrize("seed", range(4))
    def test_watch_invariant_after_assumption_backtracking(self, seed):
        cnf = random_cnf(9, 24, seed)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        rng = random.Random(seed)
        for _ in range(6):
            assumptions = [
                (v if rng.random() < 0.5 else -v)
                for v in rng.sample(range(1, 10), 3)
            ]
            solver.solve(assumptions=assumptions)
            assert_watch_invariant(solver)

    def test_watch_invariant_survives_blocking_enumeration(self):
        cnf = random_cnf(6, 12, seed=5)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        while solver.solve():
            model = solver.model()
            blocking = [(-v if model[v] else v) for v in range(1, 7)]
            assert_watch_invariant(solver)
            if not solver.add_clause(blocking):
                break
        assert_watch_invariant(solver)


class TestPruneLearned:
    def _php(self, pigeons, holes):
        cnf = CNF(pigeons * holes)
        for p in range(pigeons):
            cnf.add_clause(tuple(p * holes + h + 1 for h in range(holes)))
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause((-(p1 * holes + h + 1), -(p2 * holes + h + 1)))
        return cnf

    def test_prune_preserves_unsat_verdict(self):
        solver = CDCLSolver()
        solver.add_cnf(self._php(6, 5))
        assert solver.solve() is False
        solver.prune_learned(max_lbd=2)
        assert solver.stats.removed >= 0
        assert solver.solve() is False
        assert_watch_invariant(solver)

    def test_prune_preserves_sat_verdict_and_models(self):
        cnf = random_cnf(12, 44, seed=7)
        expected = solve_dpll(cnf) is not None
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert bool(solver.solve()) == expected
        dropped = solver.prune_learned(max_lbd=1)
        assert dropped >= 0
        got = solver.solve()
        assert bool(got) == expected
        if got:
            assert cnf.evaluate(solver.model())
        assert_watch_invariant(solver)


class TestVariableInterner:
    def test_interning_is_stable_and_injective(self):
        solver = CDCLSolver()
        interner = VariableInterner(solver)
        x = interner.var(("x", "fact-1", 0))
        y = interner.var(("y", "fact-2", 0, "edge"))
        assert interner.var(("x", "fact-1", 0)) == x
        assert x != y
        assert interner.get(("x", "fact-1", 0)) == x
        assert interner.get("never-seen") is None
        assert len(interner) == 2

    def test_translate_maps_overlapping_encodings_consistently(self):
        # Two overlapping closures (a->c direct and via b; a->d extends
        # a->c): shared nodes must land on identical pooled variables.
        session = pooled_session()
        pool = session.sat_pool()
        enc_ac = session.encoding(("a", "c"))
        enc_ad = session.encoding(("a", "d"))
        ctx1 = pool.context(enc_ac)
        ctx2 = pool.context(enc_ad)
        assert ctx1 is not None and ctx2 is not None
        entry = pool._entries[(1, session.acyclicity)]
        map_ac = {key: entry.interner.get(key) for key, _ in enc_ac.pool.items()}
        map_ad = {key: entry.interner.get(key) for key, _ in enc_ad.pool.items()}
        shared = set(map_ac) & set(map_ad)
        assert shared, "overlapping closures must share keyed variables"
        for key in shared:
            assert map_ac[key] == map_ad[key]


class TestPoolLifecycle:
    def test_entry_reuse_and_residual_hit(self):
        session = pooled_session()
        pool = session.sat_pool()
        enc = session.encoding(("a", "c"))
        pool.context(enc)
        pool.context(enc)
        assert pool.stats.solver_builds == 1
        assert pool.stats.misses == 1 and pool.stats.hits == 1

    def test_eviction_rebuilds_past_context_cap(self):
        session = pooled_session()
        pool = SolverPool(max_contexts=1, stats_sink=session.stats)
        enc = session.encoding(("a", "c"))
        pool.context(enc)
        pool.context(enc)
        assert pool.stats.evictions == 1
        assert pool.stats.solver_builds == 2

    def test_invalidate_is_dirty_set_precise(self):
        session = pooled_session()
        pool = session.sat_pool()
        pool.context(session.encoding(("a", "c")))
        assert pool.invalidate({parse_atom("e(z, w)")}) == 0
        assert len(pool._entries) == 1
        assert pool.invalidate({parse_atom("e(a, b)")}) == 1
        assert len(pool._entries) == 0
        assert session.stats.sat_pool_invalidations == 1

    def test_clear_drops_everything(self):
        session = pooled_session()
        pool = session.sat_pool()
        pool.context(session.encoding(("a", "c")))
        assert pool.clear() == 1
        assert pool.entries() == []

    def test_session_invalidate_clears_pool(self):
        session = pooled_session()
        session.why(("a", "c"))
        pool = session.sat_pool()
        assert len(pool._entries) >= 0
        session.invalidate()
        assert pool._entries == {}

    def test_fresh_mode_has_no_pool(self):
        session = pooled_session(sat_mode="fresh")
        assert session.sat_pool() is None
        assert session.pool_context(("a", "c")) is None
        # Everything still answers without the pool.
        assert session.why(("a", "c"))


class TestPooledVerdicts:
    def test_pooled_decide_matches_fresh_sessions(self):
        import itertools

        pooled = pooled_session()
        fresh = pooled_session(sat_mode="fresh")
        closure_facts = sorted(
            pooled.encoding(("a", "d")).database_fact_vars, key=str
        )
        for r in range(len(closure_facts) + 1):
            for subset in itertools.combinations(closure_facts, r):
                want = fresh.decide(("a", "d"), subset, tree_class="unambiguous")
                got = pooled.decide(("a", "d"), subset, tree_class="unambiguous")
                assert got == want, subset
        assert pooled.stats.sat_pooled_verdicts > 0

    def test_context_verdict_repeats_and_isolates_blocks(self):
        db = Database(parse_database("e(a, b). e(b, c)."))
        session = pooled_session(db)
        ctx = session.pool_context(("a", "c"))
        assert ctx is not None
        assert ctx.verdict() is True
        assert ctx.verdict() is True  # assumption reset: repeatable
        witness = {parse_atom("e(a, b)"): True, parse_atom("e(b, c)"): True}
        ctx.block(witness)
        assert ctx.verdict() is False  # the only member is blocked
        other = session.pool_context(("a", "c"))
        assert other.verdict() is True  # blocks are per-acquisition

    def test_membership_assumptions_translate(self):
        session = pooled_session()
        ctx = session.pool_context(("a", "c"))
        facts = frozenset({parse_atom("e(a, c)")})
        lits = ctx.membership_assumptions(facts)
        assert lits is not None
        assert ctx.verdict(extra_assumptions=lits) is True
        assert ctx.membership_assumptions(
            frozenset({parse_atom("e(z, z)")})
        ) is None

    def test_stats_flow_into_session(self):
        session = pooled_session()
        session.why(("a", "d"))
        session.decide(("a", "d"), [parse_atom("e(a, c)"), parse_atom("e(c, d)")],
                       tree_class="unambiguous")
        stats = session.stats.as_dict()
        assert stats["sat_pool_misses"] >= 1
        assert stats["sat_pooled_verdicts"] >= 1
        assert "sat_learned_shared" in stats


class TestPoolRetention:
    """ISSUE 9 satellite fix: update() must not drop untouched pool entries."""

    TWO_COMPONENTS = Database(parse_database(
        "e(a, b). e(b, c). e(x, y). e(y, z)."
    ))

    def test_update_storm_keeps_disjoint_entries_warm(self):
        session = pooled_session(self.TWO_COMPONENTS)
        baseline = session.why(("a", "c"))
        assert baseline
        # Admit the fact explicitly (enumeration only consults the pool
        # past the conflict handoff, which these tiny solves never hit).
        assert session.pool_context(("a", "c")) is not None
        pool = session.sat_pool()
        assert pool.stats.solver_builds == 1
        # Storm component {x, y, z, w}: the a-c closure is never dirty.
        for round_no in range(6):
            fact = parse_atom(f"e(w{round_no}, x)")
            assert session.update(Delta(inserted=frozenset((fact,)))).changed()
            assert session.why(("a", "c")) == baseline
            assert session.update(Delta(deleted=frozenset((fact,)))).changed()
            assert session.why(("a", "c")) == baseline
        assert pool.stats.solver_builds == 1, (
            "update storm must not rebuild the untouched pool entry"
        )
        assert pool.stats.invalidations == 0

    def test_update_touching_core_does_invalidate(self):
        session = pooled_session(self.TWO_COMPONENTS)
        session.why(("a", "c"))
        assert session.pool_context(("a", "c")) is not None
        pool = session.sat_pool()
        delta = Delta(deleted=frozenset((parse_atom("e(b, c)"),)))
        assert session.update(delta).changed()
        assert pool.stats.invalidations == 1
        # The fact is gone; a fresh pooled answer must reflect that.
        assert session.why(("a", "c")) == []
