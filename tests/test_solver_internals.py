"""Deeper tests of CDCL solver internals and robustness.

These complement test_sat_solvers.py with adversarial incremental usage
patterns (the exact patterns the enumerator and deciders produce) and
statistics bookkeeping.
"""

import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.solver import CDCLSolver


def random_cnf(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        size = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), size)
        cnf.add_clause(tuple(v if rng.random() < 0.5 else -v for v in variables))
    return cnf


class TestIncrementalTorture:
    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_solves_and_additions(self, seed):
        """Clauses added between solves must behave as if present from the
        start — checked against a fresh DPLL solve each round."""
        rng = random.Random(seed)
        accumulated = CNF(8)
        solver = CDCLSolver(8)
        for round_no in range(12):
            size = rng.randint(1, 3)
            variables = rng.sample(range(1, 9), size)
            clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
            accumulated.add_clause(clause)
            solver.add_clause(clause)
            expected = solve_dpll(accumulated) is not None
            got = solver.solve()
            assert bool(got) == expected, f"round {round_no}"
            if not expected:
                break

    @pytest.mark.parametrize("seed", range(5))
    def test_blocking_loop_terminates_with_exact_count(self, seed):
        """Blocking full models enumerates exactly the truth-table count."""
        cnf = random_cnf(5, 8, seed)
        import itertools

        expected = sum(
            1
            for bits in itertools.product((False, True), repeat=5)
            if cnf.evaluate({i + 1: bits[i] for i in range(5)})
        )
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        count = 0
        while solver.solve():
            model = solver.model()
            count += 1
            assert cnf.evaluate(model)
            blocking = [(-v if model[v] else v) for v in range(1, 6)]
            if not solver.add_clause(blocking):
                break
            assert count <= 32
        assert count == expected

    def test_solve_after_unsat_stays_unsat(self):
        solver = CDCLSolver(1)
        solver.add_clause((1,))
        solver.add_clause((-1,))
        assert solver.solve() is False
        assert solver.solve() is False
        assert solver.add_clause((1,)) is False


class TestAssumptionPatterns:
    def test_many_assumption_rounds(self):
        """The decider pattern: one formula, many assumption sets."""
        cnf = random_cnf(10, 25, seed=3)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        rng = random.Random(0)
        for _ in range(20):
            assumptions = [
                (v if rng.random() < 0.5 else -v)
                for v in rng.sample(range(1, 11), 4)
            ]
            expected = solve_dpll(cnf, assumptions=assumptions) is not None
            assert bool(solver.solve(assumptions=assumptions)) == expected

    def test_assumptions_on_fresh_variables(self):
        solver = CDCLSolver()
        solver.add_clause((1, 2))
        # Assumption mentions a variable the solver has never seen.
        assert solver.solve(assumptions=[5]) is True
        assert solver.model()[5] is True


class TestTimeout:
    def test_timeout_returns_none_on_hard_instance(self):
        # A large pigeonhole instance cannot be solved in ~zero time.
        n = 9
        cnf = CNF(n * (n - 1))

        def var(i, h):
            return i * (n - 1) + h + 1

        for i in range(n):
            cnf.add_clause(tuple(var(i, h) for h in range(n - 1)))
        for h in range(n - 1):
            for i in range(n):
                for j in range(i + 1, n):
                    cnf.add_clause((-var(i, h), -var(j, h)))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        result = solver.solve(timeout_seconds=0.05)
        assert result is None
        # The solver remains usable afterwards.
        assert solver.solve(assumptions=[var(0, 0)], timeout_seconds=0.05) in (
            None,
            True,
            False,
        )

    def test_generous_timeout_still_answers(self):
        cnf = random_cnf(8, 20, seed=11)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        expected = solve_dpll(cnf) is not None
        assert bool(solver.solve(timeout_seconds=60)) == expected


class TestStatistics:
    def test_counters_move(self):
        cnf = random_cnf(12, 50, seed=2)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.solve()
        stats = solver.stats.as_dict()
        assert stats["propagations"] > 0
        assert stats["decisions"] >= 0
        assert set(stats) == {
            "conflicts", "decisions", "propagations", "restarts", "learned", "removed",
        }

    def test_clause_db_reduction_triggers_on_long_runs(self):
        # Pigeonhole 7/6 generates plenty of learned clauses.
        n = 7
        cnf = CNF(n * (n - 1))

        def var(i, h):
            return i * (n - 1) + h + 1

        for i in range(n):
            cnf.add_clause(tuple(var(i, h) for h in range(n - 1)))
        for h in range(n - 1):
            for i in range(n):
                for j in range(i + 1, n):
                    cnf.add_clause((-var(i, h), -var(j, h)))
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve() is False
        assert solver.stats.learned > 0
