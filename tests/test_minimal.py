"""Minimal-explanation extraction vs. the brute-force oracles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minimal import MinimalityReport, minimal_members, smallest_member
from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.datalog.atoms import Atom
from repro.provenance import enumerate_why, enumerate_why_unambiguous
from repro.semiring import minimize_family


def _pap(db_text):
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    return query, Database(parse_database(db_text))


RUNNING_EXAMPLE = "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
AMBIGUITY_EXAMPLE = "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."


def test_smallest_member_on_running_example():
    query, database = _pap(RUNNING_EXAMPLE)
    member = smallest_member(query, database, ("d",))
    assert member == frozenset(parse_database("s(a). t(a, a, d)."))


def test_smallest_member_matches_oracle_minimum():
    query, database = _pap(AMBIGUITY_EXAMPLE)
    member = smallest_member(query, database, ("d",))
    family = enumerate_why_unambiguous(query, database, ("d",))
    assert member in family
    assert len(member) == min(len(candidate) for candidate in family)


def test_smallest_member_none_for_non_answer():
    query, database = _pap(RUNNING_EXAMPLE)
    assert smallest_member(query, database, ("zzz",)) is None


def test_minimal_members_on_ambiguity_example():
    query, database = _pap(AMBIGUITY_EXAMPLE)
    members = minimal_members(query, database, ("d",))
    expected = {
        frozenset(parse_database("s(a). t(a, a, c). t(c, c, d).")),
        frozenset(parse_database("s(b). t(b, b, c). t(c, c, d).")),
    }
    assert set(members) == expected


def test_minimal_members_are_an_antichain_and_cover_the_family():
    query, database = _pap(RUNNING_EXAMPLE)
    members = set(minimal_members(query, database, ("d",)))
    family = enumerate_why_unambiguous(query, database, ("d",))
    assert members == set(minimize_family(family))
    for member in family:
        assert any(minimal <= member for minimal in members)


def test_minimal_members_of_why_equal_those_of_why_unambiguous():
    """Subset-minimal members of why and whyUN coincide (see module doc)."""
    query, database = _pap(AMBIGUITY_EXAMPLE)
    why = enumerate_why(query, database, ("d",))
    why_un = enumerate_why_unambiguous(query, database, ("d",))
    assert minimize_family(why) == minimize_family(why_un)
    assert set(minimal_members(query, database, ("d",))) == set(minimize_family(why))


def test_minimal_members_respects_limit():
    query, database = _pap(AMBIGUITY_EXAMPLE)
    members = minimal_members(query, database, ("d",), limit=1)
    assert len(members) == 1


def test_minimal_members_empty_for_non_answer():
    query, database = _pap(RUNNING_EXAMPLE)
    assert minimal_members(query, database, ("zzz",)) == []


def test_report_counters_accumulate():
    query, database = _pap(AMBIGUITY_EXAMPLE)
    report = MinimalityReport()
    members = minimal_members(query, database, ("d",), report=report)
    assert report.members == members
    assert report.solve_calls >= len(members) + 1


def test_smallest_member_report():
    query, database = _pap(RUNNING_EXAMPLE)
    report = MinimalityReport()
    member = smallest_member(query, database, ("d",), report=report)
    assert report.members == [member]
    assert report.solve_calls >= 2  # the incumbent plus the failed tightening


def test_transitive_closure_minimal_paths():
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    query = DatalogQuery(program, "t")
    database = Database(parse_database("e(a, b). e(b, c). e(a, c)."))
    assert smallest_member(query, database, ("a", "c")) == frozenset(
        parse_database("e(a, c).")
    )
    members = set(minimal_members(query, database, ("a", "c")))
    assert members == {
        frozenset(parse_database("e(a, c).")),
        frozenset(parse_database("e(a, b). e(b, c).")),
    }


@settings(max_examples=15, deadline=None)
@given(
    edges=st.sets(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=8
    )
)
def test_random_graphs_minimal_members_match_oracle(edges):
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    query = DatalogQuery(program, "t")
    database = Database([Atom("e", (f"n{u}", f"n{v}")) for u, v in edges])
    u, v = next(iter(sorted(edges)))
    tup = (f"n{u}", f"n{v}")
    oracle = minimize_family(enumerate_why_unambiguous(query, database, tup))
    assert set(minimal_members(query, database, tup)) == set(oracle)
    if oracle:
        smallest = smallest_member(query, database, tup)
        assert len(smallest) == min(len(member) for member in oracle)
        assert smallest in enumerate_why_unambiguous(query, database, tup)


def test_members_by_size_is_sorted_and_complete():
    from repro.core.minimal import members_by_size

    query, database = _pap(RUNNING_EXAMPLE)
    pairs = list(members_by_size(query, database, ("d",)))
    sizes = [size for _member, size in pairs]
    assert sizes == sorted(sizes)
    members = {member for member, _size in pairs}
    assert members == set(enumerate_why_unambiguous(query, database, ("d",)))
    for member, size in pairs:
        assert len(member) == size


def test_members_by_size_respects_limit():
    from repro.core.minimal import members_by_size

    query, database = _pap(AMBIGUITY_EXAMPLE)
    pairs = list(members_by_size(query, database, ("d",), limit=1))
    assert len(pairs) == 1
    member, size = pairs[0]
    family = enumerate_why_unambiguous(query, database, ("d",))
    assert member in family
    assert size == min(len(candidate) for candidate in family)


def test_members_by_size_empty_for_non_answer():
    from repro.core.minimal import members_by_size

    query, database = _pap(RUNNING_EXAMPLE)
    assert list(members_by_size(query, database, ("zzz",))) == []
