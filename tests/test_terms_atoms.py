"""Unit tests for terms and atoms."""

import pytest

from repro.datalog.atoms import Atom, make_fact, signature
from repro.datalog.terms import (
    Variable,
    constants_of,
    fresh_variable,
    is_constant,
    is_variable,
    variables_of,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_immutable(self):
        v = Variable("x")
        with pytest.raises(AttributeError):
            v.name = "y"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str_and_repr(self):
        assert str(Variable("abc")) == "abc"
        assert "abc" in repr(Variable("abc"))

    def test_not_equal_to_string_of_same_name(self):
        # A variable must never collide with a constant of the same name.
        assert Variable("x") != "x"
        assert hash(Variable("x")) != hash("x") or Variable("x") != "x"


class TestFreshVariable:
    def test_fresh_variables_are_distinct(self):
        a, b = fresh_variable(), fresh_variable()
        assert a != b

    def test_prefix_respected(self):
        assert fresh_variable("blank").name.startswith("blank")


class TestTermPredicates:
    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable("x")
        assert not is_variable(3)

    def test_is_constant(self):
        assert is_constant("a")
        assert is_constant(0)
        assert not is_constant(Variable("x"))

    def test_variables_of_and_constants_of(self):
        terms = [Variable("x"), "a", 1, Variable("y")]
        assert variables_of(terms) == {Variable("x"), Variable("y")}
        assert constants_of(terms) == {"a", 1}


class TestAtom:
    def test_equality_and_hash(self):
        assert Atom("R", ("a", 1)) == Atom("R", ("a", 1))
        assert Atom("R", ("a",)) != Atom("S", ("a",))
        assert Atom("R", ("a",)) != Atom("R", ("b",))
        assert len({Atom("R", ("a",)), Atom("R", ("a",))}) == 1

    def test_arity(self):
        assert Atom("R", ()).arity == 0
        assert Atom("R", ("a", "b", "c")).arity == 3

    def test_is_fact(self):
        assert Atom("R", ("a", 1)).is_fact()
        assert not Atom("R", (Variable("x"), "a")).is_fact()

    def test_variables_and_constants(self):
        atom = Atom("R", (Variable("x"), "a", Variable("x")))
        assert atom.variables() == {Variable("x")}
        assert atom.constants() == {"a"}

    def test_substitute(self):
        atom = Atom("R", (Variable("x"), Variable("y")))
        grounded = atom.substitute({Variable("x"): "a"})
        assert grounded == Atom("R", ("a", Variable("y")))

    def test_ground_requires_total_mapping(self):
        atom = Atom("R", (Variable("x"), Variable("y")))
        with pytest.raises(ValueError):
            atom.ground({Variable("x"): "a"})
        fact = atom.ground({Variable("x"): "a", Variable("y"): "b"})
        assert fact == Atom("R", ("a", "b"))

    def test_immutable(self):
        atom = Atom("R", ("a",))
        with pytest.raises(AttributeError):
            atom.pred = "S"

    def test_str(self):
        assert str(Atom("R", ("a", Variable("x")))) == "R(a, x)"

    def test_empty_pred_rejected(self):
        with pytest.raises(ValueError):
            Atom("", ("a",))

    def test_constants_of_different_types_distinct(self):
        assert Atom("R", (1,)) != Atom("R", ("1",))


class TestMakeFact:
    def test_make_fact(self):
        assert make_fact("R", "a", 1) == Atom("R", ("a", 1))

    def test_make_fact_rejects_variables(self):
        with pytest.raises(ValueError):
            make_fact("R", Variable("x"))


class TestSignature:
    def test_signature(self):
        assert signature(Atom("R", ("a", "b"))) == ("R", 2)
