"""Chaos tests: SIGKILL a sharded worker and prove the contract holds.

ISSUE 8's failure-semantics acceptance, as executable assertions:

* killing the worker that owns a session must be *invisible* to an
  idempotent request — the supervisor respawns the slot, the router
  retries against the new generation, and with a shared ``--state-dir``
  the replacement rehydrates the session from its snapshot (so
  ``session_stats.evaluations`` stays 1: rehydration is never
  re-evaluation);
* a kill *mid-request* must still yield exactly one well-formed
  response line — transparently retried, or a ``worker-failure`` error
  — and the client connection must remain usable afterwards;
* ``update`` (the one non-idempotent op) reconnects across a respawn
  when the failure is detected before the request is sent.

These are real ``kill -9``\\ s of real worker processes, found by pid
through the public ``stats`` op — no test hooks inside the daemon.
"""

import os
import signal
import tempfile
import threading
import time

import pytest

from repro.service.client import ServiceClient, local_sharded_service
from repro.service.protocol import ServiceError
from repro.service.registry import routing_digest
from repro.service.shard import HashRing, worker_slots

PROGRAM_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
"""
DATABASE_TEXT = "e(a, b). e(b, c). e(a, c)."


def chain_db(n: int) -> str:
    return " ".join(f"e(x{i}, x{i + 1})." for i in range(n))


def worker_row(client: ServiceClient, slot: str) -> dict:
    """The named worker's row in the aggregate sharding table."""
    table = client.stats()["result"]["sharding"]["per_worker"]
    (row,) = [r for r in table if r["slot"] == slot]
    return row


def wait_for_respawn(client: ServiceClient, slot: str, timeout: float = 30.0):
    """Block until the supervisor reports *slot* alive with restarts>=1."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        row = worker_row(client, slot)
        if row.get("alive") and row.get("restarts", 0) >= 1:
            return row
        time.sleep(0.1)
    raise AssertionError(f"worker {slot} did not respawn within {timeout}s")


class TestChaosKill:
    def test_idle_kill_is_invisible_and_rehydrates_from_snapshot(self):
        with tempfile.TemporaryDirectory() as state_dir:
            with local_sharded_service(workers=2, state_dir=state_dir) as client:
                digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
                before = client.why(digest, ("a", "c"))["result"]["members"]
                shard = client.stats(digest)["result"]["shard"]
                assert shard["alive"] and shard["restarts"] == 0

                os.kill(shard["pid"], signal.SIGKILL)

                # Same client, same connection: the next why must come
                # back identical, served by the slot's replacement.
                after = client.why(digest, ("a", "c"))["result"]["members"]
                assert after == before

                stats = client.stats(digest)["result"]
                assert stats["shard"]["slot"] == shard["slot"]
                assert stats["shard"]["restarts"] >= 1
                assert stats["shard"]["pid"] != shard["pid"]
                # Rehydrated from the snapshot store, not re-evaluated.
                (row,) = [
                    s for s in stats["sessions"] if s["digest"] == digest
                ]
                assert row["rehydrated"] is True
                assert stats["session_stats"]["evaluations"] == 1
                assert stats["rehydrations"] == 1

    def test_kill_without_state_dir_surfaces_unknown_session(self):
        """No snapshot tier → the replacement worker cannot rehydrate.

        The retry still happens (the op is idempotent and the response
        is well-formed), but the replacement has never seen the digest:
        the honest answer is ``unknown-session``, and re-``open`` with
        the inline texts repairs it.
        """
        with local_sharded_service(workers=2) as client:
            digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
            members = client.why(digest, ("a", "c"))["result"]["members"]
            shard = client.stats(digest)["result"]["shard"]

            os.kill(shard["pid"], signal.SIGKILL)

            with pytest.raises(ServiceError) as excinfo:
                client.why(digest, ("a", "c"))
            assert excinfo.value.code == "unknown-session"

            # The connection survived the error; inline re-open lands on
            # the same slot (routing is digest-stable) and works.
            reopened = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")
            assert reopened["session"] == digest
            assert client.why(digest, ("a", "c"))["result"]["members"] == members

    def test_mid_request_kill_yields_one_well_formed_response(self):
        """kill -9 while the owner is busy: retried or worker-failure.

        Which outcome the client sees is a race (the kill can land
        before the request, mid-evaluation, or after the response is
        already in flight) — the contract is that there is exactly one
        response line, it is well-formed, and the connection stays
        usable.
        """
        with tempfile.TemporaryDirectory() as state_dir:
            with local_sharded_service(workers=2, state_dir=state_dir) as client:
                # A big enough admission to still be running when the
                # kill lands (hundreds of facts through full evaluation).
                database = chain_db(220)
                digest = routing_digest(PROGRAM_TEXT, database, "tc")
                slot = HashRing(worker_slots(2)).lookup(digest)
                victim = worker_row(client, slot)["pid"]

                killer = threading.Timer(
                    0.3, lambda: os.kill(victim, signal.SIGKILL)
                )
                killer.start()
                try:
                    response = client.request(
                        {
                            "op": "open",
                            "program": PROGRAM_TEXT,
                            "database": database,
                            "answer": "tc",
                        }
                    )
                finally:
                    killer.cancel()

                if response.get("ok"):
                    assert response["session"] == digest
                else:
                    assert response["error"]["code"] == "worker-failure"

                # One response, not two: the next exchange pairs up.
                assert client.ping()["result"]["pong"] is True
                wait_for_respawn(client, slot)
                reopened = client.open(PROGRAM_TEXT, database, "tc")
                assert reopened["session"] == digest

    def test_update_reconnects_across_a_respawn(self):
        """Post-respawn ``update`` goes through a fresh connection.

        The router detects the stale worker generation before sending,
        so the connect-phase retry applies even to the one op that is
        never retried after transmission.
        """
        with tempfile.TemporaryDirectory() as state_dir:
            with local_sharded_service(workers=2, state_dir=state_dir) as client:
                digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
                shard = client.stats(digest)["result"]["shard"]

                os.kill(shard["pid"], signal.SIGKILL)
                wait_for_respawn(client, shard["slot"])

                updated = client.update(digest, insert=["e(c, d)."])["result"]
                assert updated["version"] == 1
                members = client.why(digest, ("a", "d"))["result"]["members"]
                assert members  # the inserted edge is derivable post-kill

                stats = client.stats(digest)["result"]
                assert stats["session_stats"]["evaluations"] == 1
                assert stats["session_stats"]["updates"] == 1

    def test_repeated_kills_keep_the_pool_serving(self):
        """Three consecutive kills of the same slot never wedge the pool."""
        with tempfile.TemporaryDirectory() as state_dir:
            with local_sharded_service(workers=2, state_dir=state_dir) as client:
                digest = client.open(PROGRAM_TEXT, DATABASE_TEXT, "tc")["session"]
                expected = client.why(digest, ("a", "c"))["result"]["members"]
                for round_number in range(1, 4):
                    pid = client.stats(digest)["result"]["shard"]["pid"]
                    os.kill(pid, signal.SIGKILL)
                    got = client.why(digest, ("a", "c"))["result"]["members"]
                    assert got == expected, f"divergence after kill {round_number}"
                restarts = client.stats(digest)["result"]["shard"]["restarts"]
                assert restarts >= 3
