"""Solver differential-test battery (ISSUE 9's `test`-archetype core).

Every solving path the pipeline can take — fresh CDCL, the DPLL
reference, the pooled incremental solver (:class:`FormulaPool`, the
raw-CNF analogue of the session's :class:`SolverPool`), and an installed
native backend — must agree on SAT/UNSAT for every formula, and every
SAT answer must come with a genuine model. The inputs are the classic
hard families: uniform random 3-SAT near the phase transition,
pigeonhole, and random-graph coloring (generators in
``tests/strategies.py``), exercised both on fixed seed grids (failures
reproducible from the test id) and through Hypothesis.

The pooled verdicts run through one *shared* warm solver per test class
scope where noted — interleaved guarded formulas, exactly the usage
pattern ``explain_batch`` puts the session pool through.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.incremental import (
    FormulaPool,
    native_backend_available,
    new_sat_solver,
)
from repro.sat.preprocessing import preprocess
from repro.sat.solver import CDCLSolver

from strategies import (
    cnf_formulas,
    graph_coloring,
    pigeonhole,
    random_3sat,
)

#: Backends under differential test: the pure engine always, the native
#: binding when the container has it (the CI `native-sat` job does).
BACKENDS = ["pure"] + (["pysat"] if native_backend_available() else [])

#: Fixed 3-SAT grid: seeds near the phase transition (ratio ~4.26).
PHASE_SEEDS = list(range(20))

#: Pigeonhole shapes: (pigeons, holes) — UNSAT iff pigeons > holes.
PHP_SHAPES = [
    (2, 1), (2, 2), (3, 2), (3, 3), (4, 3),
    (4, 4), (5, 4), (1, 1), (1, 2), (5, 5),
]

#: Coloring shapes: (nodes, edge_prob, colors, seed).
COLORING_SHAPES = [
    (4, 0.5, 2, 0), (5, 0.4, 2, 1), (5, 0.8, 2, 2), (6, 0.5, 3, 3),
    (6, 0.9, 2, 4), (7, 0.3, 3, 5), (7, 0.7, 2, 6), (4, 1.0, 3, 7),
    (5, 1.0, 2, 8), (6, 0.6, 3, 9),
]


def dpll_verdict(cnf: CNF) -> bool:
    """The DPLL reference verdict (no budget; battery formulas are small)."""
    return solve_dpll(cnf) is not None


def assert_valid_model(cnf: CNF, model) -> None:
    """A SAT claim must be backed by a total satisfying assignment."""
    full = {var: bool(model.get(var, False)) for var in range(1, cnf.num_vars + 1)}
    assert cnf.evaluate(full), "claimed model does not satisfy the formula"


def check_agreement(cnf: CNF, backend: str, pool: FormulaPool) -> bool:
    """All four paths agree on *cnf*; returns the shared verdict."""
    expected = dpll_verdict(cnf)

    fresh = new_sat_solver(backend)
    fresh.add_cnf(cnf)
    fresh_verdict = fresh.solve()
    assert fresh_verdict is expected, f"fresh {backend} disagrees with DPLL"
    if fresh_verdict:
        assert_valid_model(cnf, fresh.model())

    handle = pool.add(cnf)
    pooled_verdict = pool.solve(handle)
    assert pooled_verdict is expected, f"pooled {backend} disagrees with DPLL"
    if pooled_verdict:
        assert_valid_model(cnf, pool.model(handle, cnf.num_vars))
    return expected


class TestRandom3SATGrid:
    """20 phase-transition seeds x every backend, one warm pool each."""

    @pytest.fixture(scope="class", params=BACKENDS)
    def warm_pool(self, request):
        """One FormulaPool shared by the whole grid of a backend."""
        return request.param, FormulaPool(request.param)

    @pytest.mark.parametrize("seed", PHASE_SEEDS)
    def test_verdicts_agree(self, seed, warm_pool):
        backend, pool = warm_pool
        cnf = random_3sat(num_vars=8, num_clauses=34, seed=seed)
        check_agreement(cnf, backend, pool)


class TestPigeonhole:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("pigeons,holes", PHP_SHAPES)
    def test_verdict_matches_principle(self, pigeons, holes, backend):
        cnf = pigeonhole(pigeons, holes)
        verdict = check_agreement(cnf, backend, FormulaPool(backend))
        assert verdict is (pigeons <= holes)


class TestGraphColoring:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shape", COLORING_SHAPES, ids=str)
    def test_verdicts_agree_and_decode(self, shape, backend):
        nodes, prob, colors, seed = shape
        cnf, edges = graph_coloring(nodes, prob, colors, seed)
        verdict = check_agreement(cnf, backend, FormulaPool(backend))
        if verdict:
            solver = new_sat_solver(backend)
            solver.add_cnf(cnf)
            assert solver.solve() is True
            model = solver.model()
            coloring = {
                n: next(
                    c for c in range(1, colors + 1)
                    if model.get((n - 1) * colors + c, False)
                )
                for n in range(1, nodes + 1)
            }
            for u, v in edges:
                assert coloring[u] != coloring[v]


class TestAssumptionDifferential:
    """Solve-under-assumptions == solving the strengthened formula."""

    ASSUMPTION_CASES = [
        (0, (1,)), (1, (-1,)), (2, (1, 2)), (3, (-2, 3)),
        (4, (1, -3)), (5, (2,)), (6, (-1, -2)), (7, (3, -4)),
    ]

    @pytest.mark.parametrize("seed,assumptions", ASSUMPTION_CASES)
    def test_assumptions_equal_units(self, seed, assumptions):
        cnf = random_3sat(num_vars=7, num_clauses=29, seed=seed)
        strengthened = cnf.copy()
        for lit in assumptions:
            strengthened.add_clause([lit])
        expected = dpll_verdict(strengthened)
        for backend in BACKENDS:
            solver = new_sat_solver(backend)
            solver.add_cnf(cnf)
            assert solver.solve(assumptions=list(assumptions)) is expected
            # The solver must be reusable after an assumption solve:
            # the unconstrained question is unchanged.
            assert solver.solve() is dpll_verdict(cnf)
            pool = FormulaPool(backend)
            handle = pool.add(cnf)
            assert pool.solve(handle, assumptions) is expected


class TestIncrementalInterleaving:
    """One warm pool, many formulas, adversarial interleavings."""

    def test_sat_unsat_alternation(self):
        pool = FormulaPool()
        cases = []
        for seed in range(10):
            cnf = random_3sat(num_vars=6, num_clauses=26, seed=seed)
            cases.append((pool.add(cnf), cnf, dpll_verdict(cnf)))
        # Two passes in opposite orders: verdicts must be stable however
        # much learned state the interleaved solves deposit.
        for handle, cnf, expected in cases + cases[::-1]:
            assert pool.solve(handle) is expected
            if expected:
                assert_valid_model(cnf, pool.model(handle, cnf.num_vars))

    def test_unsat_core_does_not_poison_sat_neighbors(self):
        pool = FormulaPool()
        php = pigeonhole(4, 3)
        sat_cnf = random_3sat(num_vars=5, num_clauses=10, seed=1)
        assert dpll_verdict(sat_cnf) is True
        php_handle = pool.add(php)
        sat_handle = pool.add(sat_cnf)
        for _ in range(3):
            assert pool.solve(php_handle) is False
            assert pool.solve(sat_handle) is True

    def test_growing_pool_keeps_old_answers(self):
        pool = FormulaPool()
        first = pigeonhole(3, 3)
        first_handle = pool.add(first)
        assert pool.solve(first_handle) is True
        for pigeons in range(2, 6):
            handle = pool.add(pigeonhole(pigeons, pigeons - 1))
            assert pool.solve(handle) is False
            assert pool.solve(first_handle) is True

    def test_assumption_reset_inside_pool(self):
        pool = FormulaPool()
        cnf = random_3sat(num_vars=6, num_clauses=18, seed=3)
        handle = pool.add(cnf)
        base = pool.solve(handle)
        assert base is dpll_verdict(cnf)
        for lit in (1, -1, 2, -2):
            strengthened = cnf.copy()
            strengthened.add_clause([lit])
            assert pool.solve(handle, [lit]) is dpll_verdict(strengthened)
            assert pool.solve(handle) is base

    def test_pool_matches_fresh_on_every_family(self):
        pool = FormulaPool()
        formulas = [
            random_3sat(num_vars=7, num_clauses=30, seed=11),
            pigeonhole(4, 3),
            graph_coloring(5, 0.6, 2, 12)[0],
            pigeonhole(3, 3),
            random_3sat(num_vars=5, num_clauses=21, seed=13),
        ]
        for cnf in formulas:
            check_agreement(cnf, "pure", pool)

    def test_conflict_limited_pool_solver_resumes(self):
        # The session's handoff pattern: a capped solve may return None,
        # but the question's answer must survive the interruption.
        solver = CDCLSolver()
        php = pigeonhole(5, 4)
        solver.add_cnf(php)
        capped = solver.solve(conflict_limit=1)
        assert capped in (None, False)
        assert solver.solve() is False


class TestExhaustiveSmall:
    """Brute-force cross-check on every formula over <= 4 variables."""

    @pytest.mark.parametrize("seed", range(5))
    def test_truth_table_agreement(self, seed):
        cnf = random_3sat(num_vars=4, num_clauses=17, seed=seed)
        brute = any(
            cnf.evaluate(
                {
                    var: bool(mask >> (var - 1) & 1)
                    for var in range(1, cnf.num_vars + 1)
                }
            )
            for mask in range(1 << cnf.num_vars)
        )
        for backend in BACKENDS:
            pool = FormulaPool(backend)
            assert check_agreement(cnf, backend, pool) is brute


class TestHypothesisProperties:
    """Randomized closure over all three families."""

    @given(cnf=cnf_formulas)
    @settings(max_examples=40, deadline=None)
    def test_cdcl_matches_dpll(self, cnf):
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        verdict = solver.solve()
        assert verdict is dpll_verdict(cnf)
        if verdict:
            assert_valid_model(cnf, solver.model())

    @given(cnf=cnf_formulas)
    @settings(max_examples=40, deadline=None)
    def test_pooled_matches_dpll(self, cnf):
        pool = FormulaPool()
        handle = pool.add(cnf)
        verdict = pool.solve(handle)
        assert verdict is dpll_verdict(cnf)
        if verdict:
            assert_valid_model(cnf, pool.model(handle, cnf.num_vars))

    @given(cnf=cnf_formulas)
    @settings(max_examples=40, deadline=None)
    def test_preprocess_preserves_verdict(self, cnf):
        result = preprocess(cnf)
        if result.unsat:
            assert dpll_verdict(cnf) is False
            return
        solver = CDCLSolver()
        solver.add_cnf(result.cnf)
        verdict = solver.solve()
        assert verdict is dpll_verdict(cnf)
        if verdict:
            model = result.extend_model(solver.model())
            assert_valid_model(cnf, model)


@pytest.mark.skipif(
    native_backend_available(), reason="native backend installed"
)
def test_requesting_missing_native_backend_raises():
    """Explicit pysat selection must fail loudly, never silently degrade."""
    from repro.sat.incremental import resolve_sat_backend

    with pytest.raises(RuntimeError):
        resolve_sat_backend("pysat")
    assert resolve_sat_backend("auto") == "pure"
