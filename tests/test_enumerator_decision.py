"""Tests for the incremental enumerator and the membership deciders."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.enumerate import (
    enumerate_why,
    enumerate_why_minimal_depth,
    enumerate_why_nonrecursive,
    enumerate_why_unambiguous,
)
from repro.core.decision import (
    decide_membership,
    decide_why,
    decide_why_minimal_depth,
    decide_why_nonrecursive,
    decide_why_unambiguous,
)
from repro.core.enumerator import WhyProvenanceEnumerator, why_provenance_unambiguous

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
QUERY = DatalogQuery(PROGRAM, "a")
DB1 = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))
DB4 = Database(parse_database(
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."
))

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_QUERY = DatalogQuery(TC, "tc")
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c)."))


def powerset_members(db):
    import itertools

    facts = sorted(db.facts(), key=str)
    for r in range(len(facts) + 1):
        yield from (frozenset(c) for c in itertools.combinations(facts, r))


class TestEnumerator:
    def test_matches_oracle_example2(self):
        family = why_provenance_unambiguous(QUERY, DB1, ("d",))
        assert family == enumerate_why_unambiguous(QUERY, DB1, ("d",))

    def test_matches_oracle_example4(self):
        family = why_provenance_unambiguous(QUERY, DB4, ("d",))
        assert family == enumerate_why_unambiguous(QUERY, DB4, ("d",))

    def test_no_repetitions(self):
        enumerator = WhyProvenanceEnumerator(QUERY, DB4, ("d",))
        members = enumerator.members()
        assert len(members) == len(set(members))

    def test_limit_respected(self):
        enumerator = WhyProvenanceEnumerator(TC_QUERY, TC_DB, ("a", "c"))
        assert len(enumerator.members(limit=1)) == 1

    def test_run_report(self):
        enumerator = WhyProvenanceEnumerator(QUERY, DB4, ("d",))
        report = enumerator.run()
        assert report.members == 2
        assert len(report.delays) == 2
        assert report.exhausted
        assert not report.timed_out
        assert report.build_seconds == report.closure_seconds + report.formula_seconds

    def test_non_answer_tuple(self):
        assert why_provenance_unambiguous(QUERY, DB1, ("zzz",)) == frozenset()

    def test_enumeration_is_resumable(self):
        enumerator = WhyProvenanceEnumerator(QUERY, DB4, ("d",))
        first = enumerator.members(limit=1)
        rest = enumerator.members()
        assert len(first) == 1 and len(rest) == 1
        assert set(first).isdisjoint(rest)

    def test_tc_both_paths(self):
        # tc(a, c) via e(a,c) directly or via e(a,b), e(b,c).
        family = why_provenance_unambiguous(TC_QUERY, TC_DB, ("a", "c"))
        expected = frozenset({
            frozenset(parse_database("e(a, c).")),
            frozenset(parse_database("e(a, b). e(b, c).")),
        })
        assert family == expected


class TestDeciderAgainstOracles:
    """Exhaustive subset sweep on the small running examples."""

    @pytest.mark.parametrize("db,tup", [(DB4, ("d",)), (DB1, ("d",))])
    def test_unambiguous_all_subsets(self, db, tup):
        family = enumerate_why_unambiguous(QUERY, db, tup)
        for subset in powerset_members(db):
            expected = subset in family
            assert decide_why_unambiguous(QUERY, db, tup, subset) == expected, subset

    def test_arbitrary_all_subsets_example4(self):
        family = enumerate_why(QUERY, DB4, ("d",))
        for subset in powerset_members(DB4):
            assert decide_why(QUERY, DB4, ("d",), subset) == (subset in family)

    def test_nonrecursive_all_subsets_example4(self):
        family = enumerate_why_nonrecursive(QUERY, DB4, ("d",))
        for subset in powerset_members(DB4):
            assert decide_why_nonrecursive(QUERY, DB4, ("d",), subset) == (
                subset in family
            )

    def test_minimal_depth_all_subsets_example4(self):
        family = enumerate_why_minimal_depth(QUERY, DB4, ("d",))
        for subset in powerset_members(DB4):
            assert decide_why_minimal_depth(QUERY, DB4, ("d",), subset) == (
                subset in family
            )

    def test_linear_nonrecursive_routes_to_sat(self):
        family = enumerate_why_nonrecursive(TC_QUERY, TC_DB, ("a", "c"))
        for subset in powerset_members(TC_DB):
            assert decide_why_nonrecursive(TC_QUERY, TC_DB, ("a", "c"), subset) == (
                subset in family
            )


class TestDecideMembershipFrontend:
    def test_dispatch(self):
        member = frozenset(parse_database("s(a). t(a, a, d)."))
        for tree_class in ("arbitrary", "unambiguous", "nonrecursive", "minimal-depth"):
            assert decide_membership(QUERY, DB1, ("d",), member, tree_class)

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            decide_membership(QUERY, DB1, ("d",), [], "magic")

    def test_subset_validation(self):
        with pytest.raises(ValueError):
            decide_why(QUERY, DB1, ("d",), parse_database("s(zzz)."))


class TestMinimalDepthUsesFullDatabase:
    def test_budget_comes_from_full_database(self):
        """A subset whose best tree is deeper than the global minimum fails.

        tc(a, c) has rank 1 w.r.t. the full db (edge e(a,c)); the subset
        {e(a,b), e(b,c)} proves it only at depth 2, so it is not in whyMD
        even though it is in why.
        """
        subset = frozenset(parse_database("e(a, b). e(b, c)."))
        assert decide_why(TC_QUERY, TC_DB, ("a", "c"), subset)
        assert not decide_why_minimal_depth(TC_QUERY, TC_DB, ("a", "c"), subset)
        direct = frozenset(parse_database("e(a, c)."))
        assert decide_why_minimal_depth(TC_QUERY, TC_DB, ("a", "c"), direct)


class TestSoundnessWithoutFallback:
    def test_sat_only_mode_is_sound(self):
        """copies-bounded SAT answers True only on real members."""
        family = enumerate_why(QUERY, DB4, ("d",))
        for subset in powerset_members(DB4):
            if decide_why(QUERY, DB4, ("d",), subset, use_oracle_fallback=False):
                assert subset in family
