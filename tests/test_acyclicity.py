"""Tests for the propositional acyclicity encodings.

The correctness statement is the same for both encodings: for every
assignment of the guarded arc variables, the formula (restricted to that
assignment) is satisfiable iff the selected arcs form an acyclic graph.
Both encodings are checked against a Kahn's-algorithm oracle on all arc
subsets of small graphs and against each other on random graphs.
"""

import itertools
import random

import pytest

from repro.sat.acyclicity import (
    arcs_are_acyclic,
    encode_transitive_closure,
    encode_vertex_elimination,
    min_degree_order,
)
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver

ENCODERS = [encode_transitive_closure, encode_vertex_elimination]


def build(encoder, arcs):
    cnf = CNF()
    arc_vars = {arc: cnf.new_var() for arc in arcs}
    stats = encoder(cnf, arc_vars)
    return cnf, arc_vars, stats


def check_selection(cnf, arc_vars, selection):
    """Satisfiability of the encoding under a full arc assignment."""
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assumptions = [
        (var if arc in selection else -var) for arc, var in arc_vars.items()
    ]
    return bool(solver.solve(assumptions=assumptions))


@pytest.mark.parametrize("encoder", ENCODERS)
class TestExhaustiveSmallGraphs:
    def test_triangle_plus_chords(self, encoder):
        arcs = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c"), ("b", "a")]
        cnf, arc_vars, _ = build(encoder, arcs)
        for r in range(len(arcs) + 1):
            for selection in itertools.combinations(arcs, r):
                expected = arcs_are_acyclic(selection)
                assert check_selection(cnf, arc_vars, set(selection)) == expected, selection

    def test_two_cycle(self, encoder):
        arcs = [("x", "y"), ("y", "x")]
        cnf, arc_vars, _ = build(encoder, arcs)
        assert check_selection(cnf, arc_vars, {("x", "y")})
        assert check_selection(cnf, arc_vars, {("y", "x")})
        assert not check_selection(cnf, arc_vars, set(arcs))

    def test_self_loop_always_forbidden(self, encoder):
        arcs = [("v", "v"), ("v", "w")]
        cnf, arc_vars, _ = build(encoder, arcs)
        assert not check_selection(cnf, arc_vars, {("v", "v")})
        assert check_selection(cnf, arc_vars, {("v", "w")})

    def test_empty_selection_sat(self, encoder):
        arcs = [("a", "b"), ("b", "a")]
        cnf, arc_vars, _ = build(encoder, arcs)
        assert check_selection(cnf, arc_vars, set())


class TestRandomAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_encodings_agree(self, seed):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(6)]
        arcs = [
            (u, v)
            for u in nodes
            for v in nodes
            if u != v and rng.random() < 0.35
        ]
        cnf_tc, vars_tc, _ = build(encode_transitive_closure, arcs)
        cnf_ve, vars_ve, _ = build(encode_vertex_elimination, arcs)
        for _ in range(12):
            selection = {arc for arc in arcs if rng.random() < 0.4}
            expected = arcs_are_acyclic(selection)
            assert check_selection(cnf_tc, vars_tc, selection) == expected
            assert check_selection(cnf_ve, vars_ve, selection) == expected


class TestEncodingSizes:
    def test_vertex_elimination_smaller_on_sparse_chain(self):
        """The paper's motivation: O(n * delta) vs O(n^2) variables."""
        arcs = [(f"n{i}", f"n{i+1}") for i in range(30)]
        _, _, stats_tc = build(encode_transitive_closure, arcs)
        _, _, stats_ve = build(encode_vertex_elimination, arcs)
        assert stats_ve.auxiliary_variables < stats_tc.auxiliary_variables
        assert stats_ve.elimination_width <= 2

    def test_stats_fields(self):
        arcs = [("a", "b"), ("b", "c")]
        _, _, stats = build(encode_vertex_elimination, arcs)
        assert stats.method == "vertex-elimination"
        assert stats.nodes == 3
        assert stats.arcs == 2


class TestMinDegreeOrder:
    def test_order_is_permutation(self):
        arcs = [("a", "b"), ("b", "c"), ("c", "a")]
        order = min_degree_order({arc: i + 1 for i, arc in enumerate(arcs)})
        assert sorted(order) == ["a", "b", "c"]

    def test_explicit_order_accepted(self):
        arcs = [("a", "b"), ("b", "c"), ("c", "a")]
        cnf = CNF()
        arc_vars = {arc: cnf.new_var() for arc in arcs}
        stats = encode_vertex_elimination(
            cnf, arc_vars, order=["b", "a", "c"]
        )
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        sel = [arc_vars[("a", "b")], arc_vars[("b", "c")], arc_vars[("c", "a")]]
        assert solver.solve(assumptions=sel) is False


class TestArcsAreAcyclic:
    def test_oracle(self):
        assert arcs_are_acyclic([("a", "b"), ("b", "c")])
        assert not arcs_are_acyclic([("a", "b"), ("b", "a")])
        assert not arcs_are_acyclic([("a", "a")])
        assert arcs_are_acyclic([])
