"""Top-down tabled resolution vs. the bottom-up engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import TopDownEngine, answers_top_down, call_pattern, prove_top_down
from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.datalog.atoms import Atom
from repro.datalog.engine import answers
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Variable


def _tc():
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    return DatalogQuery(program, "t")


def _pap():
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).")
    )
    return query, database


def test_call_pattern_distinguishes_equality_shapes():
    x, y = Variable("X"), Variable("Y")
    assert call_pattern(Atom("p", (x, x))) != call_pattern(Atom("p", (x, y)))
    assert call_pattern(Atom("p", (x, y))) == call_pattern(Atom("p", (y, x)))
    assert call_pattern(parse_atom("p(a, X)")) == ("p", ("a", ("?", 0)))


def test_transitive_closure_matches_bottom_up():
    query = _tc()
    database = Database(parse_database("e(a, b). e(b, c). e(c, a). e(c, d)."))
    assert answers_top_down(query, database) == answers(query, database)


def test_cyclic_data_terminates_and_is_complete():
    query = _tc()
    database = Database(parse_database("e(a, a). e(a, b)."))
    result = answers_top_down(query, database)
    assert result == answers(query, database)
    assert ("a", "a") in result


def test_nonlinear_recursion_matches_bottom_up():
    query, database = _pap()
    assert answers_top_down(query, database) == answers(query, database)


def test_prove_ground_goals():
    query, database = _pap()
    assert prove_top_down(query, database, ("d",)) is True
    assert prove_top_down(query, database, ("zzz",)) is False


def test_prove_requires_ground_goal():
    query, database = _pap()
    engine = TopDownEngine(query.program, database)
    with pytest.raises(ValueError, match="ground goal"):
        engine.prove(parse_atom("a(X)"))


def test_extensional_goal_bypasses_resolution():
    query, database = _pap()
    engine = TopDownEngine(query.program, database)
    result = engine.query(parse_atom("t(a, a, X)"))
    assert result == frozenset(parse_database("t(a, a, b). t(a, a, c). t(a, a, d)."))
    assert engine.stats.subgoal_calls == 0


def test_bound_goal_explores_less_than_free_goal():
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    facts = ". ".join(f"e(n{i}, n{i + 1})" for i in range(12)) + "."
    database = Database(parse_database(facts))
    bound = TopDownEngine(program, database)
    bound.query(parse_atom("t(n0, n1)"))
    free = TopDownEngine(program, database)
    free.query(Atom("t", (Variable("X"), Variable("Y"))))
    assert bound.stats.resolution_steps <= free.stats.resolution_steps


def test_tables_are_reused_across_queries():
    query, database = _pap()
    engine = TopDownEngine(query.program, database)
    engine.query(parse_atom("a(d)"))
    first_calls = engine.stats.subgoal_calls
    engine.query(parse_atom("a(d)"))
    # The second run converges immediately on the filled tables.
    assert engine.stats.subgoal_calls <= 2 * first_calls
    assert engine.stats.table_hits > 0


def test_statistics_dictionary_shape():
    query, database = _pap()
    engine = TopDownEngine(query.program, database)
    engine.prove(parse_atom("a(b)"))
    stats = engine.stats.as_dict()
    assert set(stats) == {
        "subgoal_calls",
        "table_hits",
        "resolution_steps",
        "fixpoint_passes",
    }
    assert stats["fixpoint_passes"] >= 1


def test_repeated_variables_in_goal():
    program = parse_program("p(X, Y) :- e(X, Y).")
    query = DatalogQuery(program, "p")
    database = Database(parse_database("e(a, a). e(a, b)."))
    engine = TopDownEngine(query.program, database)
    x = Variable("X")
    result = engine.query(Atom("p", (x, x)))
    assert result == frozenset(parse_database("p(a, a)."))


def test_constants_in_rule_bodies():
    program = parse_program(
        """
        reach(X) :- start(X).
        reach(Y) :- reach(X), e(X, Y).
        """
    )
    query = DatalogQuery(program, "reach")
    database = Database(parse_database("start(a). e(a, b). e(b, c). e(z, w)."))
    assert answers_top_down(query, database) == {("a",), ("b",), ("c",)}


@settings(max_examples=25, deadline=None)
@given(
    edges=st.sets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=0, max_size=10
    )
)
def test_random_graphs_agree_with_bottom_up(edges):
    query = _tc()
    facts = [Atom("e", (f"n{u}", f"n{v}")) for u, v in edges]
    database = Database(facts)
    assert answers_top_down(query, database) == answers(query, database)


@settings(max_examples=15, deadline=None)
@given(
    triples=st.sets(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
        max_size=6,
    ),
    sources=st.sets(st.integers(0, 2), min_size=1, max_size=2),
)
def test_random_path_systems_agree_with_bottom_up(triples, sources):
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    facts = [Atom("s", (f"n{i}",)) for i in sources]
    facts += [Atom("t", (f"n{u}", f"n{v}", f"n{w}")) for u, v, w in triples]
    database = Database(facts)
    assert answers_top_down(query, database) == answers(query, database)
