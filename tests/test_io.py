"""TSV / facts-directory loading and saving."""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import Database, parse_database
from repro.datalog.atoms import Atom
from repro.datalog.io import (
    load_csv,
    load_facts_dir,
    load_facts_file,
    save_csv,
    save_facts_dir,
    save_facts_file,
)


@pytest.fixture
def sample_db():
    return Database(parse_database(
        "e(a, b). e(b, c). e(a, c). s(a). w(a, 3). w(b, -7)."
    ))


def test_round_trip_facts_dir(tmp_path, sample_db):
    written = save_facts_dir(sample_db, str(tmp_path))
    assert written == {"e": 3, "s": 1, "w": 2}
    assert sorted(os.listdir(tmp_path)) == ["e.facts", "s.facts", "w.facts"]
    loaded = load_facts_dir(str(tmp_path))
    assert loaded == sample_db


def test_round_trip_csv(tmp_path, sample_db):
    path = str(tmp_path / "dump.tsv")
    rows = save_csv(sample_db, path)
    assert rows == len(sample_db)
    assert load_csv(path) == sample_db


def test_integers_round_trip(tmp_path):
    database = Database([Atom("w", ("a", 3)), Atom("w", ("b", -7))])
    save_facts_dir(database, str(tmp_path))
    loaded = load_facts_dir(str(tmp_path))
    facts = {fact.args for fact in loaded}
    assert facts == {("a", 3), ("b", -7)}
    assert all(isinstance(args[1], int) for args in facts)


def test_predicate_from_filename(tmp_path):
    path = tmp_path / "edge.facts"
    path.write_text("a\tb\nb\tc\n")
    facts = load_facts_file(str(path))
    assert {fact.pred for fact in facts} == {"edge"}
    assert len(facts) == 2


def test_explicit_predicate_overrides_filename(tmp_path):
    path = tmp_path / "whatever.txt"
    path.write_text("a\tb\n")
    (fact,) = load_facts_file(str(path), predicate="link")
    assert fact == Atom("link", ("a", "b"))


def test_comments_and_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "e.facts"
    path.write_text("# header\n\na\tb\n# trailing\n")
    facts = load_facts_file(str(path))
    assert facts == [Atom("e", ("a", "b"))]


def test_custom_delimiter(tmp_path):
    path = tmp_path / "e.facts"
    path.write_text("a,b\n")
    (fact,) = load_facts_file(str(path), delimiter=",")
    assert fact.args == ("a", "b")


def test_mixed_predicates_in_one_file_rejected(tmp_path):
    facts = [Atom("e", ("a",)), Atom("f", ("b",))]
    with pytest.raises(ValueError, match="mixed predicates"):
        save_facts_file(facts, str(tmp_path / "bad.facts"))


def test_tab_in_value_rejected(tmp_path):
    facts = [Atom("e", ("a\tb",))]
    with pytest.raises(ValueError, match="not representable"):
        save_facts_file(facts, str(tmp_path / "bad.facts"))


def test_zero_arity_facts_round_trip(tmp_path):
    database = Database([Atom("flag", ())])
    save_facts_dir(database, str(tmp_path))
    loaded = load_facts_dir(str(tmp_path))
    # A nullary fact serializes as an empty line... which load skips;
    # the convention cannot represent nullary relations, so the file is
    # written but reads back empty. Document the asymmetry:
    assert len(loaded) == 0


def test_non_facts_files_are_ignored(tmp_path, sample_db):
    save_facts_dir(sample_db, str(tmp_path))
    (tmp_path / "README.txt").write_text("not facts")
    assert load_facts_dir(str(tmp_path)) == sample_db


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="abcxyz", min_size=1, max_size=4),
            st.integers(-50, 50),
        ),
        max_size=10,
        unique=True,
    )
)
def test_random_relations_round_trip(tmp_path, rows):
    database = Database([Atom("r", pair) for pair in rows])
    target = tmp_path / "rel"
    save_facts_dir(database, str(target))
    assert load_facts_dir(str(target)) == database
