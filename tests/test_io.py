"""TSV / facts-directory loading and saving."""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import Database, parse_database
from repro.datalog.atoms import Atom
from repro.datalog.io import (
    load_csv,
    load_facts_dir,
    load_facts_file,
    save_csv,
    save_facts_dir,
    save_facts_file,
)

from strategies import instance_databases, instance_deltas, instance_programs


@pytest.fixture
def sample_db():
    return Database(parse_database(
        "e(a, b). e(b, c). e(a, c). s(a). w(a, 3). w(b, -7)."
    ))


def test_round_trip_facts_dir(tmp_path, sample_db):
    written = save_facts_dir(sample_db, str(tmp_path))
    assert written == {"e": 3, "s": 1, "w": 2}
    assert sorted(os.listdir(tmp_path)) == ["e.facts", "s.facts", "w.facts"]
    loaded = load_facts_dir(str(tmp_path))
    assert loaded == sample_db


def test_round_trip_csv(tmp_path, sample_db):
    path = str(tmp_path / "dump.tsv")
    rows = save_csv(sample_db, path)
    assert rows == len(sample_db)
    assert load_csv(path) == sample_db


def test_integers_round_trip(tmp_path):
    database = Database([Atom("w", ("a", 3)), Atom("w", ("b", -7))])
    save_facts_dir(database, str(tmp_path))
    loaded = load_facts_dir(str(tmp_path))
    facts = {fact.args for fact in loaded}
    assert facts == {("a", 3), ("b", -7)}
    assert all(isinstance(args[1], int) for args in facts)


def test_predicate_from_filename(tmp_path):
    path = tmp_path / "edge.facts"
    path.write_text("a\tb\nb\tc\n")
    facts = load_facts_file(str(path))
    assert {fact.pred for fact in facts} == {"edge"}
    assert len(facts) == 2


def test_explicit_predicate_overrides_filename(tmp_path):
    path = tmp_path / "whatever.txt"
    path.write_text("a\tb\n")
    (fact,) = load_facts_file(str(path), predicate="link")
    assert fact == Atom("link", ("a", "b"))


def test_comments_and_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "e.facts"
    path.write_text("# header\n\na\tb\n# trailing\n")
    facts = load_facts_file(str(path))
    assert facts == [Atom("e", ("a", "b"))]


def test_custom_delimiter(tmp_path):
    path = tmp_path / "e.facts"
    path.write_text("a,b\n")
    (fact,) = load_facts_file(str(path), delimiter=",")
    assert fact.args == ("a", "b")


def test_mixed_predicates_in_one_file_rejected(tmp_path):
    facts = [Atom("e", ("a",)), Atom("f", ("b",))]
    with pytest.raises(ValueError, match="mixed predicates"):
        save_facts_file(facts, str(tmp_path / "bad.facts"))


def test_tab_in_value_rejected(tmp_path):
    facts = [Atom("e", ("a\tb",))]
    with pytest.raises(ValueError, match="not representable"):
        save_facts_file(facts, str(tmp_path / "bad.facts"))


def test_zero_arity_facts_round_trip(tmp_path):
    database = Database([Atom("flag", ())])
    save_facts_dir(database, str(tmp_path))
    loaded = load_facts_dir(str(tmp_path))
    # A nullary fact serializes as an empty line... which load skips;
    # the convention cannot represent nullary relations, so the file is
    # written but reads back empty. Document the asymmetry:
    assert len(loaded) == 0


def test_non_facts_files_are_ignored(tmp_path, sample_db):
    save_facts_dir(sample_db, str(tmp_path))
    (tmp_path / "README.txt").write_text("not facts")
    assert load_facts_dir(str(tmp_path)) == sample_db


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="abcxyz", min_size=1, max_size=4),
            st.integers(-50, 50),
        ),
        max_size=10,
        unique=True,
    )
)
def test_random_relations_round_trip(tmp_path, rows):
    database = Database([Atom("r", pair) for pair in rows])
    target = tmp_path / "rel"
    save_facts_dir(database, str(target))
    assert load_facts_dir(str(target)) == database


class TestTextRoundTrips:
    """program_to_text / database_to_text: exact parser round-trips."""

    def test_program_round_trip(self):
        from repro.datalog.io import program_to_text
        from repro.datalog.parser import parse_program

        text = "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z)."
        program = parse_program(text)
        assert parse_program(program_to_text(program)) == program
        assert program_to_text(program) == text

    def test_database_round_trip_sorted(self, sample_db):
        from repro.datalog.io import database_to_text

        text = database_to_text(sample_db)
        assert Database(parse_database(text)) == sample_db
        # Sorted rendering: equal databases yield equal texts.
        shuffled = Database(reversed(list(sample_db)))
        assert database_to_text(shuffled) == text

    def test_database_preserves_integer_terms(self):
        from repro.datalog.io import database_to_text

        db = Database([Atom("w", ("a", -7))])
        rebuilt = Database(parse_database(database_to_text(db)))
        assert rebuilt == db
        (fact,) = rebuilt
        assert fact.args[1] == -7 and isinstance(fact.args[1], int)


class TestDeltaLines:
    """The shared +fact./-fact. delta-line parser (CLI watch + service)."""

    def test_insert_line(self):
        from repro.datalog.io import parse_delta_line

        sign, facts = parse_delta_line("+e(a, b).\n")
        assert sign == "+" and facts == parse_database("e(a, b).")

    def test_delete_line_multiple_facts(self):
        from repro.datalog.io import parse_delta_line

        sign, facts = parse_delta_line("  -e(a, b). e(b, c).  ")
        assert sign == "-" and len(facts) == 2

    def test_blank_line_is_none(self):
        from repro.datalog.io import parse_delta_line

        assert parse_delta_line("") is None
        assert parse_delta_line("   \n") is None

    def test_missing_sign_raises(self):
        from repro.datalog.io import parse_delta_line

        with pytest.raises(ValueError, match=r"\+fact\. or -fact\."):
            parse_delta_line("e(a, b).")

    def test_garbage_fact_raises(self):
        from repro.datalog.io import parse_delta_line

        with pytest.raises(ValueError):
            parse_delta_line("+not a fact")

    def test_rule_in_delta_line_raises(self):
        from repro.datalog.io import parse_delta_line

        with pytest.raises(ValueError):
            parse_delta_line("+p(X) :- e(X, Y).")

    def test_delta_from_lines(self):
        from repro.datalog.io import delta_from_lines

        delta = delta_from_lines(["+e(a, b). e(b, c).", "", "-e(c, d)."])
        assert len(delta.inserted) == 2 and len(delta.deleted) == 1

    def test_delta_from_lines_names_bad_line(self):
        from repro.datalog.io import delta_from_lines

        with pytest.raises(ValueError, match="wibble"):
            delta_from_lines(["+e(a, b).", "wibble"])

    def test_delta_from_lines_rejects_overlap(self):
        from repro.datalog.io import delta_from_lines

        with pytest.raises(ValueError, match="inserts and deletes"):
            delta_from_lines(["+e(a, b).", "-e(a, b)."])


class TestGeneratedRoundTrips:
    """Property round-trips over the synthetic workload generators.

    Every program, database and delta a workload family can emit must
    survive the wire: ``parse(program_to_text(p)) == p`` exactly, sorted
    database text rebuilds the same fact set, and a delta's textual
    ``+fact.``/``-fact.`` lines rebuild the same delta — the contract the
    service protocol, ``batch --watch``, and the differential oracle's
    service path all lean on.
    """

    common = settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )

    @given(program=instance_programs())
    @common
    def test_generated_program_round_trip(self, program):
        from repro.datalog.io import program_to_text
        from repro.datalog.parser import parse_program

        text = program_to_text(program)
        assert parse_program(text) == program
        # Rendering is a fixpoint: re-rendering the parse changes nothing.
        assert program_to_text(parse_program(text)) == text

    @given(database=instance_databases())
    @common
    def test_generated_database_round_trip(self, database):
        from repro.datalog.io import database_to_text

        text = database_to_text(database)
        assert Database(parse_database(text)) == database
        assert database_to_text(Database(parse_database(text))) == text

    @given(delta=instance_deltas())
    @common
    def test_generated_delta_lines_round_trip(self, delta):
        from repro.datalog.io import delta_from_lines, delta_to_lines

        assert delta_from_lines(delta_to_lines(delta)) == delta
        # Rendering is deterministic: equal deltas, equal line lists.
        assert delta_to_lines(delta) == delta_to_lines(delta)

    @given(delta=instance_deltas())
    @common
    def test_parse_delta_line_per_fact(self, delta):
        from repro.datalog.io import parse_delta_line

        for fact in sorted(delta.facts(), key=str):
            sign, facts = parse_delta_line(f"+{fact}.")
            assert sign == "+" and facts == [fact]
            sign, facts = parse_delta_line(f"-{fact}.")
            assert sign == "-" and facts == [fact]

    @given(
        junk=st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_malformed_delta_lines_never_crash(self, junk):
        """Arbitrary junk either parses, rejects cleanly, or is blank."""
        from repro.datalog.io import parse_delta_line

        try:
            parsed = parse_delta_line(junk)
        except ValueError:
            return  # clean rejection is the contract
        if parsed is None:
            assert not junk.strip()
        else:
            sign, facts = parsed
            assert sign in "+-"
            assert all(fact.is_fact() for fact in facts)
