"""Cardinality encodings vs. brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cardinality import (
    Totalizer,
    add_at_least_k,
    add_at_most_k,
    add_exactly_k,
    count_true,
)
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver
from repro.sat.enumeration import all_models


def _solution_counts(n, k, constraint, encoding):
    """Projected model count of `constraint(x1..xn, k)` under *encoding*."""
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(n)]
    constraint(cnf, variables, k, encoding=encoding)
    projected = set()
    for model in all_models(cnf, projection=variables):
        projected.add(tuple(model.get(v, False) for v in variables))
    return projected


def _expected(n, predicate):
    return {
        bits
        for bits in itertools.product([False, True], repeat=n)
        if predicate(sum(bits))
    }


@pytest.mark.parametrize("encoding", ["sequential", "totalizer"])
@pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 3), (4, 4), (3, 5)])
def test_at_most_k_exact_solution_set(encoding, n, k):
    got = _solution_counts(n, k, add_at_most_k, encoding)
    assert got == _expected(n, lambda count: count <= k)


@pytest.mark.parametrize("encoding", ["sequential", "totalizer"])
@pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2), (4, 4), (3, 4)])
def test_at_least_k_exact_solution_set(encoding, n, k):
    got = _solution_counts(n, k, add_at_least_k, encoding)
    assert got == _expected(n, lambda count: count >= k)


@pytest.mark.parametrize("encoding", ["sequential", "totalizer"])
@pytest.mark.parametrize("n,k", [(3, 0), (4, 1), (4, 2), (5, 5)])
def test_exactly_k_exact_solution_set(encoding, n, k):
    got = _solution_counts(n, k, add_exactly_k, encoding)
    assert got == _expected(n, lambda count: count == k)


def test_negative_k_rejected():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(3)]
    with pytest.raises(ValueError):
        add_at_most_k(cnf, variables, -1)


def test_unknown_encoding_rejected():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(3)]
    with pytest.raises(ValueError, match="unknown cardinality encoding"):
        add_at_most_k(cnf, variables, 1, encoding="bdd")


def test_at_least_more_than_n_is_unsat():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(2)]
    add_at_least_k(cnf, variables, 3)
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assert solver.solve() is False


def test_at_most_with_negative_literals():
    """Constraints over negated literals count the falses."""
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(3)]
    add_at_most_k(cnf, [-v for v in variables], 1)
    for model in all_models(cnf, projection=variables):
        falses = sum(1 for v in variables if not model.get(v, False))
        assert falses <= 1


def test_totalizer_outputs_are_sorted_unary():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(4)]
    totalizer = Totalizer(cnf, variables)
    outputs = totalizer.outputs()
    assert len(outputs) == 4
    for model in all_models(cnf, projection=variables + outputs):
        count = sum(1 for v in variables if model.get(v, False))
        for index, output in enumerate(outputs):
            assert model.get(output, False) == (count >= index + 1)


def test_totalizer_incremental_tightening():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(5)]
    totalizer = Totalizer(cnf, variables)
    totalizer.enforce_at_most(3)
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assert solver.solve([variables[0], variables[1], variables[2]]) is True
    # Tighten the same totalizer to 1 with a single unit clause.
    solver.add_clause([-totalizer.outputs()[1]])
    assert solver.solve([variables[0], variables[1]]) is False
    assert solver.solve([variables[0]]) is True


def test_empty_totalizer():
    cnf = CNF()
    totalizer = Totalizer(cnf, [])
    assert totalizer.outputs() == []
    totalizer.enforce_at_most(0)  # vacuous
    totalizer.enforce_at_least(0)  # vacuous
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assert solver.solve() is True


def test_count_true_helper():
    model = {1: True, 2: False, 3: True}
    assert count_true(model, [1, 2, 3]) == 2
    assert count_true(model, [-1, -2, -3]) == 1
    assert count_true(model, []) == 0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 5),
    k=st.integers(0, 6),
    encoding=st.sampled_from(["sequential", "totalizer"]),
)
def test_random_bounds_match_brute_force(n, k, encoding):
    got = _solution_counts(n, k, add_at_most_k, encoding)
    assert got == _expected(n, lambda count: count <= k)
