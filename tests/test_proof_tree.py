"""Unit tests for proof trees (Definition 1) and their refinements."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.provenance.proof_tree import (
    InvalidProofTree,
    ProofTree,
    ProofTreeNode,
    is_minimal_depth,
    min_tree_depth,
)

# The paper's running example (Example 1): path accessibility.
PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
DB = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))


def leaf(text: str) -> ProofTreeNode:
    from repro.datalog.parser import parse_atom

    return ProofTreeNode(parse_atom(text))


def node(fact_text: str, children) -> ProofTreeNode:
    from repro.datalog.parser import parse_atom

    return ProofTreeNode(parse_atom(fact_text), children)


def simple_tree() -> ProofTree:
    """The first proof tree of Example 1: A(d) from S(a), T(a,a,d)."""
    a_a = node("a(a)", [leaf("s(a)")])
    a_a2 = node("a(a)", [leaf("s(a)")])
    return ProofTree(node("a(d)", [a_a, a_a2, leaf("t(a, a, d)")]))


def complex_tree() -> ProofTree:
    """The second proof tree of Example 1 (A(a) derived from itself)."""
    def a_of_a():
        return node("a(a)", [leaf("s(a)")])

    a_b = node("a(b)", [a_of_a(), a_of_a(), leaf("t(a, a, b)")])
    a_c = node("a(c)", [a_of_a(), a_of_a(), leaf("t(a, a, c)")])
    inner_a = node("a(a)", [a_b, a_c, leaf("t(b, c, a)")])
    return ProofTree(node("a(d)", [a_of_a(), inner_a, leaf("t(a, a, d)")]))


class TestStructure:
    def test_support_simple(self):
        assert simple_tree().support() == frozenset(
            parse_database("s(a). t(a, a, d).")
        )

    def test_support_complex_is_whole_database(self):
        assert complex_tree().support() == DB.facts()

    def test_depth(self):
        assert simple_tree().depth() == 2
        assert complex_tree().depth() == 4

    def test_size_and_leaves(self):
        tree = simple_tree()
        assert tree.size() == 6
        assert len(list(tree.leaves())) == 3

    def test_single_leaf_tree(self):
        tree = ProofTree.leaf(Atom("s", ("a",)))
        assert tree.depth() == 0
        assert tree.support() == frozenset({Atom("s", ("a",))})


class TestValidation:
    def test_valid_trees(self):
        simple_tree().validate(PROGRAM, DB, expected_root=Atom("a", ("d",)))
        complex_tree().validate(PROGRAM, DB)

    def test_wrong_root(self):
        with pytest.raises(InvalidProofTree, match="root"):
            simple_tree().validate(PROGRAM, DB, expected_root=Atom("a", ("b",)))

    def test_leaf_not_in_database(self):
        tree = ProofTree(node("a(z)", [leaf("s(z)")]))
        assert not tree.is_valid(PROGRAM, DB)

    def test_unjustified_internal_node(self):
        tree = ProofTree(node("a(d)", [leaf("s(a)")]))  # wrong rule shape
        with pytest.raises(InvalidProofTree, match="no rule"):
            tree.validate(PROGRAM, DB)

    def test_children_order_matters_for_rule_matching(self):
        # t-atom must be the third child per the rule.
        a_a = node("a(a)", [leaf("s(a)")])
        bad = ProofTree(node("a(d)", [leaf("t(a, a, d)"), a_a, node("a(a)", [leaf("s(a)")])]))
        assert not bad.is_valid(PROGRAM, DB)


class TestIsomorphism:
    def test_isomorphic_trees(self):
        assert simple_tree().is_isomorphic(simple_tree())
        assert not simple_tree().is_isomorphic(complex_tree())

    def test_isomorphism_ignores_child_order(self):
        t1 = ProofTree(node("p(a)", [leaf("q(a)"), leaf("r(a)")]))
        t2 = ProofTree(node("p(a)", [leaf("r(a)"), leaf("q(a)")]))
        assert t1.is_isomorphic(t2)


class TestSubtreeCount:
    def test_scount_simple(self):
        assert simple_tree().scount() == 1

    def test_scount_complex(self):
        # a(a) occurs with two different subtrees (leaf-derived and t-derived).
        assert complex_tree().scount() == 2


class TestRefinedClasses:
    def test_simple_tree_all_classes(self):
        tree = simple_tree()
        assert tree.is_non_recursive()
        assert tree.is_unambiguous()
        assert is_minimal_depth(tree, PROGRAM, DB)

    def test_complex_tree_is_recursive_and_ambiguous(self):
        tree = complex_tree()
        assert not tree.is_non_recursive()  # a(a) derived from itself
        assert not tree.is_unambiguous()
        assert not is_minimal_depth(tree, PROGRAM, DB)

    def test_unambiguous_implies_nonrecursive(self):
        # Example 4 database: ambiguous but non-recursive tree.
        db4 = Database(parse_database(
            "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."
        ))
        def a_via(src):
            base = node(f"a({src})", [leaf(f"s({src})")])
            base2 = node(f"a({src})", [leaf(f"s({src})")])
            return node("a(c)", [base, base2, leaf(f"t({src}, {src}, c)")])
        tree = ProofTree(node("a(d)", [a_via("a"), a_via("b"), leaf("t(c, c, d)")]))
        tree.validate(PROGRAM, db4)
        assert tree.is_non_recursive()
        assert not tree.is_unambiguous()


class TestMinTreeDepth:
    def test_matches_rank(self):
        assert min_tree_depth(PROGRAM, DB, Atom("a", ("a",))) == 1
        assert min_tree_depth(PROGRAM, DB, Atom("a", ("d",))) == 2

    def test_underivable_fact(self):
        with pytest.raises(ValueError):
            min_tree_depth(PROGRAM, DB, Atom("a", ("zzz",)))


class TestDerive:
    def test_derive_checks_body(self):
        from repro.datalog.rules import GroundRule

        rule = PROGRAM.rules[0]
        ground = rule.instantiate({next(iter(rule.head.variables())): "a"})
        tree = ProofTree.derive(ground, [ProofTree.leaf(Atom("s", ("a",)))])
        assert tree.root.fact == Atom("a", ("a",))
        with pytest.raises(ValueError):
            ProofTree.derive(ground, [ProofTree.leaf(Atom("s", ("b",)))])
        with pytest.raises(ValueError):
            ProofTree.derive(ground, [])

    def test_pretty_output(self):
        text = simple_tree().pretty()
        assert "a(d)" in text and "s(a)" in text
