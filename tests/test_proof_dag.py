"""Unit tests for proof DAGs and compressed DAGs."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.provenance.grounding import HyperEdge, downward_closure
from repro.provenance.proof_dag import (
    CompressedDAG,
    InvalidProofDAG,
    ProofDAG,
    compressed_dag_from_edges,
)

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
DB = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))


def example3_simple() -> ProofDAG:
    """The first proof DAG of Example 3 (shared leaves)."""
    labels = {
        0: parse_atom("a(d)"),
        1: parse_atom("a(a)"),
        2: parse_atom("a(a)"),
        3: parse_atom("s(a)"),
        4: parse_atom("t(a, a, d)"),
    }
    children = {0: [1, 2, 4], 1: [3], 2: [3]}
    return ProofDAG(labels, children, 0)


class TestProofDAG:
    def test_support(self):
        assert example3_simple().support() == frozenset(
            parse_database("s(a). t(a, a, d).")
        )

    def test_validate(self):
        example3_simple().validate(PROGRAM, DB, expected_root=parse_atom("a(d)"))

    def test_depth(self):
        assert example3_simple().depth() == 2

    def test_cycle_detection(self):
        labels = {0: parse_atom("a(d)"), 1: parse_atom("a(d)")}
        dag = ProofDAG(labels, {0: [1], 1: [0]}, 0)
        assert not dag.is_acyclic()
        with pytest.raises(InvalidProofDAG):
            dag.validate(PROGRAM, DB)

    def test_unique_root_required(self):
        labels = {
            0: parse_atom("a(a)"),
            1: parse_atom("s(a)"),
            2: parse_atom("a(a)"),
        }
        dag = ProofDAG(labels, {0: [1], 2: [1]}, 0)  # node 2 is a second root
        with pytest.raises(InvalidProofDAG, match="root"):
            dag.validate(PROGRAM, DB)

    def test_leaf_must_be_database_fact(self):
        labels = {0: parse_atom("a(q)"), 1: parse_atom("s(q)")}
        dag = ProofDAG(labels, {0: [1]}, 0)
        with pytest.raises(InvalidProofDAG, match="leaf"):
            dag.validate(PROGRAM, DB)

    def test_unravel_preserves_support_and_validity(self):
        tree = example3_simple().unravel()
        assert tree.support() == example3_simple().support()
        tree.validate(PROGRAM, DB)

    def test_unravel_budget(self):
        with pytest.raises(InvalidProofDAG, match="exceeds"):
            example3_simple().unravel(max_nodes=2)

    def test_is_unambiguous_and_nonrecursive(self):
        dag = example3_simple()
        assert dag.is_unambiguous()
        assert dag.is_non_recursive()


class TestCompressedDAG:
    def closure(self):
        return downward_closure(PROGRAM, DB, parse_atom("a(d)"))

    def test_minimal_compressed_dag(self):
        dag = CompressedDAG(
            parse_atom("a(d)"),
            {
                parse_atom("a(d)"): frozenset(parse_database("t(a, a, d).")) | {parse_atom("a(a)")},
                parse_atom("a(a)"): frozenset({parse_atom("s(a)")}),
            },
        )
        dag.validate(PROGRAM, DB, expected_root=parse_atom("a(d)"))
        assert dag.support() == frozenset(parse_database("s(a). t(a, a, d)."))

    def test_cycle_rejected(self):
        dag = CompressedDAG(
            parse_atom("a(d)"),
            {
                parse_atom("a(d)"): frozenset({parse_atom("a(d)")}),
            },
        )
        assert not dag.is_acyclic()
        with pytest.raises(InvalidProofDAG):
            dag.validate(PROGRAM, DB)

    def test_unjustified_choice_rejected(self):
        dag = CompressedDAG(
            parse_atom("a(d)"),
            {parse_atom("a(d)"): frozenset({parse_atom("s(a)")})},
        )
        with pytest.raises(InvalidProofDAG, match="no ground rule"):
            dag.validate(PROGRAM, DB)

    def test_unravel_is_unambiguous_proof_tree(self):
        dag = CompressedDAG(
            parse_atom("a(d)"),
            {
                parse_atom("a(d)"): frozenset({parse_atom("a(a)"), parse_atom("t(a, a, d)")}),
                parse_atom("a(a)"): frozenset({parse_atom("s(a)")}),
            },
        )
        tree = dag.unravel(PROGRAM)
        tree.validate(PROGRAM, DB)
        assert tree.is_unambiguous()
        assert tree.support() == dag.support()

    def test_to_proof_dag(self):
        dag = CompressedDAG(
            parse_atom("a(d)"),
            {
                parse_atom("a(d)"): frozenset({parse_atom("a(a)"), parse_atom("t(a, a, d)")}),
                parse_atom("a(a)"): frozenset({parse_atom("s(a)")}),
            },
        )
        proof_dag = dag.to_proof_dag(PROGRAM)
        proof_dag.validate(PROGRAM, DB)
        assert proof_dag.support() == dag.support()

    def test_from_edges_rejects_duplicate_heads(self):
        e1 = HyperEdge(parse_atom("a(a)"), frozenset({parse_atom("s(a)")}))
        e2 = HyperEdge(
            parse_atom("a(a)"),
            frozenset({parse_atom("a(b)"), parse_atom("a(c)"), parse_atom("t(b, c, a)")}),
        )
        with pytest.raises(InvalidProofDAG, match="two hyperedges"):
            compressed_dag_from_edges(parse_atom("a(a)"), [e1, e2])

    def test_nodes_only_reachable(self):
        dag = CompressedDAG(
            parse_atom("a(a)"),
            {
                parse_atom("a(a)"): frozenset({parse_atom("s(a)")}),
                # Unreachable choice should not pollute nodes/support.
                parse_atom("a(b)"): frozenset({parse_atom("s(b)")}),
            },
        )
        assert dag.nodes() == {parse_atom("a(a)"), parse_atom("s(a)")}
        assert dag.support() == frozenset({parse_atom("s(a)")})
