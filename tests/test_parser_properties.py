"""Property-based tests for the parser: print/parse round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable

predicate_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
constant_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
variable_names = st.from_regex(r"[A-Z][A-Za-z0-9_]{0,6}", fullmatch=True)
integers = st.integers(min_value=-999, max_value=999)

constants = st.one_of(constant_names, integers)
terms = st.one_of(constants, variable_names.map(Variable))


@st.composite
def atoms(draw, ground=False):
    pred = draw(predicate_names)
    arity = draw(st.integers(min_value=0, max_value=4))
    pool = constants if ground else terms
    args = tuple(draw(pool) for _ in range(arity))
    return Atom(pred, args)


@st.composite
def safe_rules(draw):
    body = draw(st.lists(atoms(), min_size=1, max_size=3))
    body_vars = sorted(
        {t for atom in body for t in atom.variables()}, key=lambda v: v.name
    )
    head_pred = draw(predicate_names.map(lambda p: "h_" + p))
    arity = draw(st.integers(min_value=0, max_value=3))
    if body_vars:
        head_args = tuple(
            draw(st.one_of(st.sampled_from(body_vars), constants))
            for _ in range(arity)
        )
    else:
        head_args = tuple(draw(constants) for _ in range(arity))
    return Rule(Atom(head_pred, head_args), tuple(body))


common = settings(max_examples=60, deadline=None)


class TestRoundTrips:
    @given(atom=atoms(ground=True))
    @common
    def test_fact_round_trip(self, atom):
        assert parse_atom(str(atom)) == atom

    @given(atom=atoms())
    @common
    def test_atom_with_variables_round_trip(self, atom):
        assert parse_atom(str(atom)) == atom

    @given(rule=safe_rules())
    @common
    def test_rule_round_trip(self, rule):
        try:
            Program([rule])
        except ValueError:
            return  # the random rule uses one predicate with two arities
        parsed = parse_program(str(rule) + "\n")
        assert list(parsed.rules) == [rule]

    @given(rules=st.lists(safe_rules(), min_size=1, max_size=4))
    @common
    def test_program_round_trip(self, rules):
        try:
            program = Program(rules)
        except ValueError:
            # Arity conflicts between randomly drawn rules are fine to skip.
            return
        assert parse_program(str(program)) == program

    @given(facts=st.lists(atoms(ground=True), min_size=0, max_size=6))
    @common
    def test_database_round_trip(self, facts):
        text = "\n".join(f"{fact}." for fact in facts)
        assert set(parse_database(text)) == set(facts)
