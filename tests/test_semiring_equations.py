"""Equation-system provenance vs. the paper's oracles.

The headline checks: solving the downward-closure equation system in the
why semiring reproduces ``why(t, D, Q)`` exactly (Definition 2, validated
against the brute-force oracle), and every coarser semiring agrees with
the corresponding specialization.
"""

import pytest

from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.datalog.engine import answers, evaluate
from repro.provenance import (
    downward_closure,
    enumerate_why,
    enumerate_why_unambiguous,
)
from repro.semiring import (
    INFINITY,
    BooleanSemiring,
    CountingSemiring,
    DivergentSystem,
    LineageSemiring,
    MinWhySemiring,
    PolynomialSemiring,
    TropicalSemiring,
    WhySemiring,
    kleene_solve,
    minimize_family,
    polynomial_to_counting,
    polynomial_to_why,
    semiring_provenance,
    system_from_closure,
)


def _pap():
    """The paper's running example (path accessibility, Examples 1-3)."""
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).")
    )
    return query, database


def _nonrecursive_pair():
    """A small non-recursive query with two independent witnesses."""
    program = parse_program(
        """
        p(X) :- r(X, Y), s(Y).
        out(X) :- p(X).
        """
    )
    query = DatalogQuery(program, "out")
    database = Database(parse_database("r(a, b). r(a, c). s(b). s(c)."))
    return query, database


def test_why_semiring_matches_oracle_on_running_example():
    query, database = _pap()
    value = semiring_provenance(query, database, ("d",), WhySemiring())
    assert value == enumerate_why(query, database, ("d",))
    # Example 2 spells the family out: the small support and D itself.
    small = frozenset(parse_database("s(a). t(a, a, d)."))
    assert value == frozenset({small, database.facts()})


def test_why_semiring_matches_oracle_on_nonrecursive_query():
    query, database = _nonrecursive_pair()
    value = semiring_provenance(query, database, ("a",), WhySemiring())
    assert value == enumerate_why(query, database, ("a",))
    assert len(value) >= 2  # two independent witnesses plus their union


def test_min_why_is_the_antichain_of_why():
    query, database = _pap()
    value = semiring_provenance(query, database, ("d",), MinWhySemiring())
    oracle = minimize_family(enumerate_why(query, database, ("d",)))
    assert value == oracle
    small = frozenset(parse_database("s(a). t(a, a, d)."))
    assert value == frozenset({small})


def test_boolean_semiring_is_query_answering():
    query, database = _pap()
    ring = BooleanSemiring()
    answer_tuples = answers(query, database)
    for constant in ("a", "b", "c", "d"):
        expected = (constant,) in answer_tuples
        assert semiring_provenance(query, database, (constant,), ring) is expected


def test_boolean_semiring_zero_for_non_answer():
    query, database = _nonrecursive_pair()
    assert semiring_provenance(query, database, ("b",), BooleanSemiring()) is False
    assert semiring_provenance(query, database, ("b",), WhySemiring()) == frozenset()


def test_counting_semiring_reports_infinity_on_recursion():
    query, database = _pap()
    # Example 1: A(d) has infinitely many proof trees (A(a) can be
    # rederived through T(b, c, a) forever).
    assert semiring_provenance(query, database, ("d",), CountingSemiring()) == INFINITY


def test_counting_semiring_exact_on_nonrecursive():
    query, database = _nonrecursive_pair()
    # out(a) <- p(a), and p(a) has two derivations (via b and via c).
    assert semiring_provenance(query, database, ("a",), CountingSemiring()) == 2


def test_counting_acyclic_even_with_recursive_rules():
    # Recursive program, but the data reaches no derivation cycle.
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    query = DatalogQuery(program, "t")
    database = Database(parse_database("e(a, b). e(b, c)."))
    assert semiring_provenance(query, database, ("a", "c"), CountingSemiring()) == 1


def test_tropical_semiring_counts_cheapest_leaves():
    query, database = _pap()
    # The cheapest proof tree of A(d) has leaves S(a), S(a), T(a,a,d)
    # (leaf multiplicity counts, matching proof-tree leaves).
    assert semiring_provenance(query, database, ("d",), TropicalSemiring()) == 3
    assert semiring_provenance(query, database, ("a",), TropicalSemiring()) == 1


def test_tropical_with_custom_costs():
    query, database = _nonrecursive_pair()
    costs = {fact: (5 if "b" in repr(fact) else 1) for fact in database}
    value = semiring_provenance(
        query, database, ("a",), TropicalSemiring(), annotate=costs.__getitem__
    )
    # The witness through c costs 1 + 1; the one through b costs 5 + 5.
    assert value == 2


def test_lineage_is_union_of_why_members():
    query, database = _pap()
    value = semiring_provenance(query, database, ("d",), LineageSemiring())
    oracle = frozenset().union(*enumerate_why(query, database, ("d",)))
    assert value == oracle


def test_polynomial_agrees_with_counting_and_why_on_nonrecursive():
    query, database = _nonrecursive_pair()
    value = semiring_provenance(query, database, ("a",), PolynomialSemiring())
    assert polynomial_to_counting(value) == 2
    assert polynomial_to_why(value) == enumerate_why(query, database, ("a",))


def test_polynomial_raises_on_divergent_recursion():
    query, database = _pap()
    with pytest.raises(DivergentSystem):
        semiring_provenance(query, database, ("d",), PolynomialSemiring())


def test_system_from_closure_shape():
    query, database = _pap()
    closure = downward_closure(query.program, database, query.answer_atom(("d",)))
    ring = WhySemiring()
    system = system_from_closure(closure, database, ring)
    assert system.root == query.answer_atom(("d",))
    assert set(system.leaves) == set(closure.nodes & database.facts())
    assert all(head not in database for head in system.equations)
    assert system.size() >= len(system.equations)
    assert set(system.unknowns()) == set(system.equations)


def test_kleene_solve_assigns_zero_to_underivable():
    program = parse_program("p(X) :- q(X), p(X).")
    query = DatalogQuery(program, "p")
    database = Database(parse_database("q(a)."))
    # p(a) only derivable from itself: no proof tree exists.
    assert semiring_provenance(query, database, ("a",), BooleanSemiring()) is False


def test_single_rule_copy_query():
    # The smallest possible closure: one rule instance, one leaf.
    program = parse_program("p(X) :- q(X).")
    query = DatalogQuery(program, "p")
    database = Database(parse_database("q(a)."))
    value = semiring_provenance(query, database, ("a",), WhySemiring())
    assert value == frozenset({frozenset(parse_database("q(a)."))})


def test_why_agreement_on_ambiguity_example():
    """Example 4's database: why contains more members than whyUN."""
    query, _ = _pap()
    database = Database(
        parse_database("s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).")
    )
    why = semiring_provenance(query, database, ("d",), WhySemiring())
    assert why == enumerate_why(query, database, ("d",))
    why_un = enumerate_why_unambiguous(query, database, ("d",))
    assert why_un <= why
    # The whole database is a member of why (the ambiguous tree of
    # Example 4) but not of whyUN.
    assert database.facts() in why
    assert database.facts() not in why_un


def test_ranks_bound_the_kleene_rounds():
    query, database = _pap()
    result = evaluate(query.program, database)
    closure = downward_closure(query.program, database, query.answer_atom(("d",)))
    system = system_from_closure(closure, database, BooleanSemiring())
    values = kleene_solve(system, BooleanSemiring())
    for fact in closure.nodes:
        if fact in database:
            continue
        assert values[fact] is True
        assert result.ranks[fact] >= 1
