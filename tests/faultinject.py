"""Fault injection for the durable warm-state tier.

The snapshot store routes every mutating filesystem operation through
one seam (:class:`repro.service.store.StoreFS`). :class:`CrashingFS`
wraps that seam with a global operation counter and raises
:class:`SimulatedCrash` *instead of performing* the N-th operation —
after which every further operation raises too, because a crashed
process performs nothing. Run the same workload twice and you have a
complete crash-point enumeration:

    counting = CrashingFS()            # crash_at=None: count only
    workload(SnapshotStore(root, fs=counting))
    for crash_at in range(len(counting.ops)):
        fs = CrashingFS(crash_at=crash_at)
        with pytest.raises(SimulatedCrash):
            workload(SnapshotStore(fresh_root, fs=fs))
        # ... reopen fresh_root with a real StoreFS and assert recovery

``torn=True`` additionally models the half-written sector: when the
crashed operation is a ``write``, the first half of the payload reaches
the file before the crash. That is the input the WAL's torn-tail salvage
and the snapshot's length/checksum verification exist for.

Reads are deliberately un-instrumented, mirroring the seam itself:
recovery code must read whatever the crash left behind.
"""

from typing import Callable, List, Optional, Tuple

from repro.service.store import StoreFS


class SimulatedCrash(RuntimeError):
    """The injected process death: raised in place of a filesystem op."""


class CrashingFS(StoreFS):
    """A :class:`StoreFS` that dies at the N-th mutating operation.

    Parameters
    ----------
    crash_at:
        Zero-based index (into :attr:`ops`) of the operation to crash
        on, or ``None`` to only count. The crashed operation itself is
        *not* performed (except a torn prefix, below), and every later
        operation raises :class:`SimulatedCrash` as well.
    torn:
        When the crashed operation is a ``write``, first write the first
        half of the payload — a torn append / torn temp file.
    """

    def __init__(self, crash_at: Optional[int] = None, torn: bool = False):
        self.crash_at = crash_at
        self.torn = torn
        #: Every mutating operation observed, in order: ``(name, detail)``.
        self.ops: List[Tuple[str, str]] = []
        self.crashed = False

    def _tick(self, name: str, detail: str, torn_write: Optional[Callable] = None):
        if self.crashed:
            raise SimulatedCrash(f"{name} on dead process")
        index = len(self.ops)
        self.ops.append((name, detail))
        if self.crash_at is not None and index == self.crash_at:
            self.crashed = True
            if torn_write is not None and self.torn:
                torn_write()
            raise SimulatedCrash(f"op {index}: {name} {detail}")

    # -- instrumented operations ----------------------------------------------

    def open(self, path: str, mode: str):
        """Count opens that create or extend a file; pass reads through."""
        if "w" in mode or "a" in mode:
            self._tick("open", f"{path} {mode}")
        return super().open(path, mode)

    def write(self, handle, data: bytes) -> None:
        """Count; on a torn crash, half the payload lands first."""
        self._tick(
            "write",
            f"{len(data)} bytes",
            torn_write=lambda: StoreFS.write(self, handle, data[: len(data) // 2]),
        )
        super().write(handle, data)

    def fsync(self, handle) -> None:
        """Count: a crash here leaves the write visible but un-synced."""
        self._tick("fsync", "handle")
        super().fsync(handle)

    def fsync_path(self, path: str) -> None:
        """Count: a crash here leaves the rename visible but un-synced."""
        self._tick("fsync_path", path)
        super().fsync_path(path)

    def replace(self, source: str, destination: str) -> None:
        """Count: the atomic commit point of snapshot writes."""
        self._tick("replace", destination)
        super().replace(source, destination)

    def truncate(self, path: str, length: int) -> None:
        """Count: torn-tail repair is itself a crash point."""
        self._tick("truncate", f"{path}@{length}")
        super().truncate(path, length)

    def remove(self, path: str) -> None:
        """Count: invalidation deletes are crash points too."""
        self._tick("remove", path)
        super().remove(path)

    def makedirs(self, path: str) -> None:
        """Count only the first creation of each directory."""
        import os

        if not os.path.isdir(path):
            self._tick("makedirs", path)
        super().makedirs(path)
