"""Cross-subsystem agreement on real scenario workloads.

Three independent implementations of why-provenance exist in this
repository: the brute-force oracles, the SAT pipeline, and the
why-semiring fixpoint.  These tests make them vote on actual Table 1
scenario databases (scaled), plus the Souffle-style witness and the
minimal-member extractors.
"""

import pytest

from repro.baselines import single_witness_why
from repro.core.enumerator import WhyProvenanceEnumerator
from repro.core.minimal import minimal_members, smallest_member
from repro.datalog.engine import evaluate
from repro.harness.runner import sample_answer_tuples
from repro.semiring import (
    BooleanSemiring,
    MinWhySemiring,
    WhySemiring,
    minimize_family,
    semiring_provenance,
)
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def doctors_case():
    scenario = get_scenario("Doctors-2")
    query = scenario.query()
    database = scenario.database("D1").restrict(query.program.edb)
    evaluation = evaluate(query.program, database)
    tup = sample_answer_tuples(query, database, count=1, seed=3, evaluation=evaluation)[0]
    return query, database, tup


def test_doctors_sat_equals_semiring(doctors_case):
    query, database, tup = doctors_case
    enumerator = WhyProvenanceEnumerator(query, database, tup)
    sat_family = {record.support for record in enumerator.enumerate(limit=500)}
    semiring_family = semiring_provenance(query, database, tup, WhySemiring())
    # Doctors is linear and non-recursive, so why == whyUN and the two
    # routes must produce the same family (Fig. 5's fairness argument).
    assert query.is_linear and query.is_non_recursive
    assert sat_family == set(semiring_family)


def test_doctors_minimal_members_consistent(doctors_case):
    query, database, tup = doctors_case
    min_family = semiring_provenance(query, database, tup, MinWhySemiring())
    sat_minimal = set(minimal_members(query, database, tup))
    assert sat_minimal == set(min_family)
    smallest = smallest_member(query, database, tup)
    assert smallest in sat_minimal or any(
        len(smallest) == len(member) for member in sat_minimal
    )
    assert len(smallest) == min(len(member) for member in sat_minimal)


def test_doctors_witness_is_a_member(doctors_case):
    query, database, tup = doctors_case
    witness = single_witness_why(query, database, tup)
    family = semiring_provenance(query, database, tup, WhySemiring())
    assert witness in family


def test_boolean_semiring_on_scenario_answers(doctors_case):
    query, database, tup = doctors_case
    assert semiring_provenance(query, database, tup, BooleanSemiring()) is True


@pytest.mark.parametrize("scenario_name", ["TransClosure", "Andersen"])
def test_recursive_scenarios_minimal_agreement(scenario_name):
    scenario = get_scenario(scenario_name)
    query = scenario.query()
    # Use a deliberately small slice of the scenario database so the
    # brute-force side stays fast.
    database = scenario.database(scenario.database_names()[0]).restrict(
        query.program.edb
    )
    evaluation = evaluate(query.program, database)
    tuples = sample_answer_tuples(query, database, count=1, seed=5, evaluation=evaluation)
    tup = tuples[0]
    sat_minimal = set(minimal_members(query, database, tup, limit=50))
    assert sat_minimal  # the tuple is an answer, so a member exists
    for member in sat_minimal:
        for other in sat_minimal:
            assert not (member < other)  # an antichain
    witness = single_witness_why(query, database, tup)
    if len(sat_minimal) < 50:
        # The witness is a member of why, so it contains a minimal member
        # (only checkable when the minimal family was not truncated).
        assert any(member <= witness for member in sat_minimal)
