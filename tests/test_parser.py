"""Unit tests for the Datalog parser."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import (
    ParseError,
    parse_atom,
    parse_database,
    parse_program,
    parse_rule,
)
from repro.datalog.terms import Variable


class TestParseProgram:
    def test_transitive_closure(self):
        program = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            """
        )
        assert len(program.rules) == 2
        assert program.idb == {"tc"}
        assert program.edb == {"e"}

    def test_case_convention(self):
        rule = parse_rule("p(X, a) :- q(X, Y42, b7).")
        assert rule.head.args[0] == Variable("X")
        assert rule.head.args[1] == "a"
        body_args = rule.body[0].args
        assert body_args == (Variable("X"), Variable("Y42"), "b7")

    def test_underscore_is_variable(self):
        rule = parse_rule("p(X) :- q(X, _pad).")
        assert rule.body[0].args[1] == Variable("_pad")

    def test_integers_and_strings(self):
        facts = parse_database("r(1, -2, 'hello world', \"x y\").")
        assert facts == [Atom("r", (1, -2, "hello world", "x y"))]

    def test_comments_ignored(self):
        program = parse_program(
            """
            % a comment
            p(X) :- q(X).  # trailing comment
            """
        )
        assert len(program.rules) == 1

    def test_facts_rejected_in_program(self):
        with pytest.raises(ParseError):
            parse_program("p(a).")

    def test_rules_rejected_in_database(self):
        with pytest.raises(ParseError):
            parse_database("p(X) :- q(X).")

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            parse_program("p(X, Y) :- q(X).")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X) & r(X).")

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("p(X) :- q(X).\np(X) :- .\n")


class TestParseAtom:
    def test_with_and_without_dot(self):
        assert parse_atom("p(a, B)") == Atom("p", ("a", Variable("B")))
        assert parse_atom("p(a).") == Atom("p", ("a",))

    def test_zero_arity(self):
        assert parse_atom("done") == Atom("done", ())


class TestRoundTrip:
    def test_program_str_reparses(self):
        text = """
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- tc(X, Y), e(Y, Z).
        """
        program = parse_program(text)
        reparsed = parse_program(str(program))
        assert program == reparsed

    def test_database_round_trip(self):
        facts = parse_database("e(a, b). e(b, c). s(a).")
        text = " ".join(f"{fact}." for fact in facts)
        assert set(parse_database(text)) == set(facts)
