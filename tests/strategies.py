"""Shared Hypothesis strategies over the synthetic workload generators.

The property tests (``test_synthetic.py``, the io round-trips in
``test_io.py``) all want the same inputs: a workload family name, a
seeded :class:`~repro.scenarios.synthetic.SyntheticInstance`, and small
well-formed programs/deltas derived from one. Wrapping the generators
here keeps the seed/size bounds in one place — small enough that a
Hypothesis run stays fast, wide enough to hit every family shape
(cyclic/acyclic chains, bushy/path-like trees, every widejoin fan-in).
"""

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.plans import ENGINES
from repro.datalog.terms import Variable
from repro.scenarios.synthetic import FAMILIES, SyntheticInstance, generate_instance

#: Every family name (including the repodata-shaped ``deps`` family), as
#: a sampling strategy — new families join every property automatically.
family_names = st.sampled_from(sorted(FAMILIES))

#: Every evaluation engine name (``repro.datalog.plans.ENGINES``), for
#: engine-differential properties.
engines = st.sampled_from(ENGINES)

#: Seeds kept small: the generators are uniform in the seed, and small
#: seeds make failures reproducible by eye (`repro fuzz --seeds N`).
seeds = st.integers(min_value=0, max_value=10_000)

#: Sizes spanning degenerate (1) through comfortably multi-derivation.
sizes = st.integers(min_value=1, max_value=24)

#: Delta-sequence lengths for update-replay properties.
delta_rounds = st.integers(min_value=0, max_value=3)


@st.composite
def synthetic_instances(
    draw,
    families=family_names,
    size=sizes,
    seed=seeds,
    rounds=delta_rounds,
) -> SyntheticInstance:
    """One generated instance, optionally with a delta sequence."""
    return generate_instance(
        draw(families),
        size=draw(size),
        seed=draw(seed),
        delta_rounds=draw(rounds),
    )


@st.composite
def deps_instances(draw, size=sizes, seed=seeds, rounds=delta_rounds):
    """A ``deps``-family instance: repodata EDB plus upgrade deltas.

    The dedicated strategy for the dependency-resolution properties
    (install-justification shape, upgrade-delta structure) that only
    hold on this family.
    """
    return draw(
        synthetic_instances(
            families=st.just("deps"), size=size, seed=seed, rounds=rounds
        )
    )


@st.composite
def instance_programs(draw):
    """A generated program (the io round-trip tests' subject)."""
    return draw(synthetic_instances(rounds=st.just(0))).query.program


@st.composite
def instance_databases(draw):
    """A generated database (sorted text round-trips, facts-file dumps)."""
    return draw(synthetic_instances(rounds=st.just(0))).database


#: Variable pool for random rule bodies (small, to force shared joins).
_body_variables = st.sampled_from([Variable(f"v{i}") for i in range(6)])

#: Terms mixing variables with a few constants.
_body_terms = st.one_of(_body_variables, st.sampled_from(["c0", "c1", "c2"]))


@st.composite
def rule_bodies(draw, max_atoms: int = 6):
    """A random rule body: atoms over a tiny predicate/term pool.

    Used by the join-planning properties (``tests/test_plans.py``): small
    variable and constant pools make shared variables — the thing join
    ordering is about — overwhelmingly likely.
    """
    n_atoms = draw(st.integers(min_value=1, max_value=max_atoms))
    body = []
    for _ in range(n_atoms):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        arity = draw(st.integers(min_value=0, max_value=3))
        args = tuple(draw(_body_terms) for _ in range(arity))
        body.append(Atom(pred, args))
    return tuple(body)


# -- random CNF generators (solver differential battery) --------------------
#
# Deterministic formula factories plus Hypothesis wrappers. The factories
# take an explicit seed/shape so the battery can also enumerate fixed
# grids ("20 seeds x every backend") outside Hypothesis, with failures
# reproducible from the parametrize id alone.


def random_3sat(num_vars: int, num_clauses: int, seed: int):
    """A uniform random 3-SAT formula (the classic hard distribution).

    At ratio ``num_clauses / num_vars ~ 4.26`` the instances sit near the
    satisfiability phase transition, where both SAT and UNSAT outcomes
    are common and solvers work hardest — the sweet spot for
    differential testing.
    """
    import random as _random

    from repro.sat.cnf import CNF

    rng = _random.Random(seed)
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        lits = rng.sample(range(1, num_vars + 1), min(3, num_vars))
        cnf.add_clause([lit if rng.random() < 0.5 else -lit for lit in lits])
    return cnf


def pigeonhole(pigeons: int, holes: int):
    """The pigeonhole principle ``PHP(pigeons, holes)`` as CNF.

    UNSAT exactly when ``pigeons > holes`` (and famously hard for
    resolution as the gap narrows); SAT otherwise. Variable ``x_{p,h}``
    is ``(p - 1) * holes + h``.
    """
    from repro.sat.cnf import CNF

    cnf = CNF(num_vars=pigeons * holes)

    def var(p: int, h: int) -> int:
        return (p - 1) * holes + h

    for p in range(1, pigeons + 1):
        cnf.add_clause([var(p, h) for h in range(1, holes + 1)])
    for h in range(1, holes + 1):
        for p1 in range(1, pigeons + 1):
            for p2 in range(p1 + 1, pigeons + 1):
                cnf.add_clause([-var(p1, h), -var(p2, h)])
    return cnf


def graph_coloring(num_nodes: int, edge_prob: float, colors: int, seed: int):
    """Proper ``colors``-coloring of a random graph, as CNF.

    Variable ``x_{n,c}`` is ``(n - 1) * colors + c``. Returns the CNF
    together with the edge list so tests can check decoded colorings.
    """
    import random as _random

    from repro.sat.cnf import CNF

    rng = _random.Random(seed)
    edges = [
        (u, v)
        for u in range(1, num_nodes + 1)
        for v in range(u + 1, num_nodes + 1)
        if rng.random() < edge_prob
    ]
    cnf = CNF(num_vars=num_nodes * colors)

    def var(n: int, c: int) -> int:
        return (n - 1) * colors + c

    for n in range(1, num_nodes + 1):
        cnf.add_clause([var(n, c) for c in range(1, colors + 1)])
        for c1 in range(1, colors + 1):
            for c2 in range(c1 + 1, colors + 1):
                cnf.add_clause([-var(n, c1), -var(n, c2)])
    for u, v in edges:
        for c in range(1, colors + 1):
            cnf.add_clause([-var(u, c), -var(v, c)])
    return cnf, edges


@st.composite
def random_3sat_formulas(draw, max_vars: int = 12):
    """Hypothesis wrapper: a 3-SAT instance near the phase transition."""
    num_vars = draw(st.integers(min_value=3, max_value=max_vars))
    ratio = draw(st.floats(min_value=3.0, max_value=5.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_3sat(num_vars, max(1, round(num_vars * ratio)), seed)


@st.composite
def pigeonhole_formulas(draw, max_holes: int = 4):
    """Hypothesis wrapper: PHP with pigeons in ``holes +- 1``."""
    holes = draw(st.integers(min_value=1, max_value=max_holes))
    pigeons = draw(st.integers(min_value=max(1, holes - 1), max_value=holes + 1))
    return pigeonhole(pigeons, holes)


@st.composite
def coloring_formulas(draw, max_nodes: int = 7):
    """Hypothesis wrapper: random-graph coloring (CNF only)."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    edge_prob = draw(st.floats(min_value=0.2, max_value=0.9))
    colors = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return graph_coloring(num_nodes, edge_prob, colors, seed)[0]


#: Any battery formula: the three families, one strategy.
cnf_formulas = st.one_of(
    random_3sat_formulas(), pigeonhole_formulas(), coloring_formulas()
)


@st.composite
def instance_deltas(draw):
    """One non-empty delta drawn from a generated instance's sequence.

    The generators guarantee every requested round emits, so a
    ``rounds >= 1`` instance always has a delta to draw from.
    """
    instance = draw(
        synthetic_instances(rounds=st.integers(min_value=1, max_value=3))
    )
    return instance.deltas[draw(st.integers(0, len(instance.deltas) - 1))]
