"""Shared Hypothesis strategies over the synthetic workload generators.

The property tests (``test_synthetic.py``, the io round-trips in
``test_io.py``) all want the same inputs: a workload family name, a
seeded :class:`~repro.scenarios.synthetic.SyntheticInstance`, and small
well-formed programs/deltas derived from one. Wrapping the generators
here keeps the seed/size bounds in one place — small enough that a
Hypothesis run stays fast, wide enough to hit every family shape
(cyclic/acyclic chains, bushy/path-like trees, every widejoin fan-in).
"""

from hypothesis import strategies as st

from repro.scenarios.synthetic import FAMILIES, SyntheticInstance, generate_instance

#: Every family name, as a sampling strategy.
family_names = st.sampled_from(sorted(FAMILIES))

#: Seeds kept small: the generators are uniform in the seed, and small
#: seeds make failures reproducible by eye (`repro fuzz --seeds N`).
seeds = st.integers(min_value=0, max_value=10_000)

#: Sizes spanning degenerate (1) through comfortably multi-derivation.
sizes = st.integers(min_value=1, max_value=24)

#: Delta-sequence lengths for update-replay properties.
delta_rounds = st.integers(min_value=0, max_value=3)


@st.composite
def synthetic_instances(
    draw,
    families=family_names,
    size=sizes,
    seed=seeds,
    rounds=delta_rounds,
) -> SyntheticInstance:
    """One generated instance, optionally with a delta sequence."""
    return generate_instance(
        draw(families),
        size=draw(size),
        seed=draw(seed),
        delta_rounds=draw(rounds),
    )


@st.composite
def instance_programs(draw):
    """A generated program (the io round-trip tests' subject)."""
    return draw(synthetic_instances(rounds=st.just(0))).query.program


@st.composite
def instance_databases(draw):
    """A generated database (sorted text round-trips, facts-file dumps)."""
    return draw(synthetic_instances(rounds=st.just(0))).database


@st.composite
def instance_deltas(draw):
    """One non-empty delta drawn from a generated instance's sequence."""
    instance = draw(
        synthetic_instances(rounds=st.integers(min_value=1, max_value=3))
    )
    if not instance.deltas:
        # A degenerate database can yield no sensible deltas; fall back
        # to deleting one of the instance's own facts (trivially valid
        # over its schema).
        from repro.datalog.database import Delta

        fact = sorted(instance.database, key=str)[0]
        return Delta(deleted=frozenset((fact,)))
    return instance.deltas[draw(st.integers(0, len(instance.deltas) - 1))]
