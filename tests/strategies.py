"""Shared Hypothesis strategies over the synthetic workload generators.

The property tests (``test_synthetic.py``, the io round-trips in
``test_io.py``) all want the same inputs: a workload family name, a
seeded :class:`~repro.scenarios.synthetic.SyntheticInstance`, and small
well-formed programs/deltas derived from one. Wrapping the generators
here keeps the seed/size bounds in one place — small enough that a
Hypothesis run stays fast, wide enough to hit every family shape
(cyclic/acyclic chains, bushy/path-like trees, every widejoin fan-in).
"""

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.plans import ENGINES
from repro.datalog.terms import Variable
from repro.scenarios.synthetic import FAMILIES, SyntheticInstance, generate_instance

#: Every family name, as a sampling strategy.
family_names = st.sampled_from(sorted(FAMILIES))

#: Every evaluation engine name (``repro.datalog.plans.ENGINES``), for
#: engine-differential properties.
engines = st.sampled_from(ENGINES)

#: Seeds kept small: the generators are uniform in the seed, and small
#: seeds make failures reproducible by eye (`repro fuzz --seeds N`).
seeds = st.integers(min_value=0, max_value=10_000)

#: Sizes spanning degenerate (1) through comfortably multi-derivation.
sizes = st.integers(min_value=1, max_value=24)

#: Delta-sequence lengths for update-replay properties.
delta_rounds = st.integers(min_value=0, max_value=3)


@st.composite
def synthetic_instances(
    draw,
    families=family_names,
    size=sizes,
    seed=seeds,
    rounds=delta_rounds,
) -> SyntheticInstance:
    """One generated instance, optionally with a delta sequence."""
    return generate_instance(
        draw(families),
        size=draw(size),
        seed=draw(seed),
        delta_rounds=draw(rounds),
    )


@st.composite
def instance_programs(draw):
    """A generated program (the io round-trip tests' subject)."""
    return draw(synthetic_instances(rounds=st.just(0))).query.program


@st.composite
def instance_databases(draw):
    """A generated database (sorted text round-trips, facts-file dumps)."""
    return draw(synthetic_instances(rounds=st.just(0))).database


#: Variable pool for random rule bodies (small, to force shared joins).
_body_variables = st.sampled_from([Variable(f"v{i}") for i in range(6)])

#: Terms mixing variables with a few constants.
_body_terms = st.one_of(_body_variables, st.sampled_from(["c0", "c1", "c2"]))


@st.composite
def rule_bodies(draw, max_atoms: int = 6):
    """A random rule body: atoms over a tiny predicate/term pool.

    Used by the join-planning properties (``tests/test_plans.py``): small
    variable and constant pools make shared variables — the thing join
    ordering is about — overwhelmingly likely.
    """
    n_atoms = draw(st.integers(min_value=1, max_value=max_atoms))
    body = []
    for _ in range(n_atoms):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        arity = draw(st.integers(min_value=0, max_value=3))
        args = tuple(draw(_body_terms) for _ in range(arity))
        body.append(Atom(pred, args))
    return tuple(body)


@st.composite
def instance_deltas(draw):
    """One non-empty delta drawn from a generated instance's sequence."""
    instance = draw(
        synthetic_instances(rounds=st.integers(min_value=1, max_value=3))
    )
    if not instance.deltas:
        # A degenerate database can yield no sensible deltas; fall back
        # to deleting one of the instance's own facts (trivially valid
        # over its schema).
        from repro.datalog.database import Delta

        fact = sorted(instance.database, key=str)[0]
        return Delta(deleted=frozenset((fact,)))
    return instance.deltas[draw(st.integers(0, len(instance.deltas) - 1))]
