"""Tests for the parallel batch provenance service.

The load-bearing property: a worker pool must be *invisible* in the
results. ``explain_batch(workers=N)`` returns the same witnesses in the
same order as the serial path for every tuple — across scenarios, across
skewed closure sizes, and across every fallback (``workers=1``, tiny
batches, unpicklable snapshots).
"""

import pickle

import pytest

import repro.core.parallel as parallel_module
from repro.core.parallel import (
    BatchResult,
    EvaluationSnapshot,
    FactResult,
    ParallelProvenanceExplainer,
    explain_fact,
)
from repro.core.session import ProvenanceSession
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_database, parse_program, parse_rule
from repro.datalog.program import DatalogQuery, Program
from repro.datalog.terms import Variable

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c). e(b, d)."))
TC_QUERY = DatalogQuery(TC, "tc")

FORK_AVAILABLE = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="parallel pool requires the fork start method"
)


def _assert_batches_identical(serial: BatchResult, parallel: BatchResult):
    """Same tuples, same witnesses, same witness order, same flags."""
    assert len(serial.results) == len(parallel.results)
    for left, right in zip(serial.results, parallel.results):
        assert left.index == right.index
        assert left.tuple_value == right.tuple_value
        assert left.is_answer == right.is_answer
        assert left.members == right.members  # same witnesses, same order
        assert left.exhausted == right.exhausted
        assert (left.error is None) == (right.error is None)


class TestPickling:
    def test_core_types_roundtrip(self):
        rule = parse_rule("tc(X, Z) :- tc(X, Y), e(Y, Z).")
        for value in (
            Variable("X"),
            Atom("e", ("a", 1)),
            rule,
            rule.instantiate(
                {Variable("X"): "a", Variable("Y"): "b", Variable("Z"): "c"}
            ),
            TC,
            TC_QUERY,
        ):
            clone = pickle.loads(pickle.dumps(value))
            assert clone == value
            assert hash(clone) == hash(value)

    def test_database_roundtrip_rebuilds_indexes(self):
        clone = pickle.loads(pickle.dumps(TC_DB))
        assert clone == TC_DB
        assert set(clone.matching("e", {0: "a"})) == set(TC_DB.matching("e", {0: "a"}))
        assert clone.count("e") == TC_DB.count("e")

    def test_evaluation_result_roundtrip(self):
        result = evaluate(TC, TC_DB, record_instances=True)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.model == result.model
        assert clone.ranks == result.ranks
        assert set(clone.instances) == set(result.instances)

    def test_snapshot_sheds_gri_cache(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        session.gri()  # memoize the GRI maps on the evaluation object
        snapshot = EvaluationSnapshot.capture(session)
        assert not hasattr(snapshot.evaluation, "_gri_maps_cache")
        blob = snapshot.to_bytes()
        restored = EvaluationSnapshot.from_bytes(blob).restore()
        assert restored.stats.evaluations == 0  # evaluation came pre-installed
        for tup in session.answers():
            assert restored.why(tup) == session.why(tup)
        assert restored.stats.evaluations == 0


class TestSerialBatch:
    def test_all_answers_by_default(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch()
        assert [r.tuple_value for r in batch.results] == session.answers()
        assert batch.workers == 1 and not batch.parallel
        assert batch.fallback_reason is None
        assert session.stats.evaluations == 1

    def test_batch_matches_session_why(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch()
        for result in batch.results:
            assert result.is_answer
            assert result.members == session.why(result.tuple_value)
            assert result.exhausted
            assert result.seconds >= 0

    def test_invalid_and_non_answer_tuples(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch([("a", "b"), ("a",), ("zz", "a")])
        ok, invalid, non_answer = batch.results
        assert ok.is_answer and ok.members
        assert invalid.error is not None and not invalid.members
        assert not non_answer.is_answer and non_answer.error is None
        assert len(batch.failures()) == 2

    def test_limit_and_fact_result_shape(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch([("a", "d")], limit=1)
        (result,) = batch.results
        assert len(result.members) == 1
        assert len(result.delays) == 1
        assert not result.exhausted  # stopped by the limit, not the solver
        assert result.build_seconds == result.closure_seconds + result.formula_seconds


@needs_fork
class TestParallelMatchesSerial:
    def test_transitive_closure(self):
        serial = ProvenanceSession(TC_QUERY, TC_DB).explain_batch(workers=1)
        parallel = ProvenanceSession(TC_QUERY, TC_DB).explain_batch(workers=2)
        assert parallel.parallel and parallel.workers == 2
        assert parallel.snapshot_bytes > 0
        _assert_batches_identical(serial, parallel)

    def test_andersen_sampled_tuples(self):
        from repro.harness.runner import sample_answer_tuples
        from repro.scenarios import get_scenario

        scenario = get_scenario("Andersen")
        query = scenario.query()
        database = scenario.database("D1").restrict(query.program.edb)
        session = ProvenanceSession(query, database)
        tuples = sample_answer_tuples(
            query, database, count=6, seed=7, evaluation=session.evaluation
        )
        serial = session.explain_batch(tuples, workers=1, limit=10)
        parallel = session.fork().explain_batch(tuples, workers=2, limit=10)
        assert parallel.parallel
        _assert_batches_identical(serial, parallel)

    def test_skewed_closure_batch_with_unit_chunks(self):
        # A long chain gives tc(n0, n9) a deep closure while tc(n0, n1)
        # stays tiny; chunk_size=1 exercises work stealing over the skew.
        chain = Database(
            parse_database(" ".join(f"e(n{i}, n{i + 1})." for i in range(9)))
        )
        session = ProvenanceSession(TC_QUERY, chain)
        tuples = [("n0", f"n{i}") for i in range(1, 10)] + [("n3", "n9")]
        serial = session.explain_batch(tuples, workers=1)
        parallel = ParallelProvenanceExplainer(
            ProvenanceSession(TC_QUERY, chain), workers=3, chunk_size=1
        ).explain_batch(tuples)
        assert parallel.parallel and parallel.chunk_size == 1
        _assert_batches_identical(serial, parallel)

    def test_mixed_validity_batch(self):
        tuples = [("a", "b"), ("a",), ("zz", "a"), ("a", "d")]
        serial = ProvenanceSession(TC_QUERY, TC_DB).explain_batch(tuples, workers=1)
        parallel = ProvenanceSession(TC_QUERY, TC_DB).explain_batch(tuples, workers=2)
        _assert_batches_identical(serial, parallel)


class TestFallbacks:
    def test_workers_one_is_a_plain_serial_run(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch(workers=1)
        assert not batch.parallel
        assert batch.fallback_reason is None  # serial was requested, not forced

    def test_single_tuple_batch_falls_back(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch([("a", "b")], workers=4)
        assert not batch.parallel
        assert "smaller than two" in batch.fallback_reason
        assert batch.results[0].members == session.why(("a", "b"))

    def test_unpicklable_snapshot_falls_back(self, monkeypatch):
        def boom(self):
            raise pickle.PicklingError("nope")

        monkeypatch.setattr(parallel_module.EvaluationSnapshot, "to_bytes", boom)
        session = ProvenanceSession(TC_QUERY, TC_DB)
        batch = session.explain_batch(workers=2)
        assert not batch.parallel
        assert "snapshot not picklable" in batch.fallback_reason
        _assert_batches_identical(session.fork().explain_batch(workers=1), batch)

    def test_unavailable_start_method_falls_back(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        explainer = ParallelProvenanceExplainer(
            session, workers=2, start_method="no-such-method"
        )
        batch = explainer.explain_batch()
        assert not batch.parallel
        assert "unavailable" in batch.fallback_reason

    def test_workers_zero_means_one_per_core(self):
        from repro.core.parallel import default_worker_count

        session = ProvenanceSession(TC_QUERY, TC_DB)
        for auto in (0, None):
            explainer = ParallelProvenanceExplainer(session, workers=auto)
            assert explainer.workers == default_worker_count()

    def test_harness_rejects_workers_on_the_foil_path(self):
        from repro.harness.runner import run_database
        from repro.scenarios import get_scenario

        scenario = get_scenario("TransClosure")
        name = scenario.database_names()[0]
        with pytest.raises(ValueError, match="use_session"):
            run_database(scenario, name, use_session=False, workers=2)

    def test_explain_fact_is_the_shared_routine(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        result = explain_fact(session, ("a", "d"), index=5)
        assert isinstance(result, FactResult)
        assert result.index == 5
        assert result.members == session.why(("a", "d"))


@needs_fork
class TestIntegration:
    def test_cli_batch_workers_matches_serial_output(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "program.dl"
        program.write_text("tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).\n")
        database = tmp_path / "data.dl"
        database.write_text("e(a, b). e(b, c). e(a, c).")
        argv = ["batch", str(program), str(database), "--answer", "tc", "--all-answers"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "sharded over 2 worker(s)" in captured.err

    def test_harness_workers_match_serial_member_counts(self):
        from repro.harness.runner import run_database
        from repro.scenarios import get_scenario

        scenario = get_scenario("TransClosure")
        name = scenario.database_names()[0]
        kwargs = dict(tuples_per_database=4, member_limit=5, timeout_seconds=None)
        serial = run_database(scenario, name, workers=1, **kwargs)
        parallel = run_database(scenario, name, workers=2, **kwargs)
        assert [r.tuple_value for r in serial.tuple_runs] == [
            r.tuple_value for r in parallel.tuple_runs
        ]
        assert [r.members for r in serial.tuple_runs] == [
            r.members for r in parallel.tuple_runs
        ]
