"""Tests for the experiment harness: stats, runner, table rendering."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.harness.runner import (
    DatabaseRun,
    TupleRun,
    run_database,
    run_tuple,
    sample_answer_tuples,
)
from repro.harness.stats import BoxStats, box_stats, mean, quantile
from repro.harness.tables import (
    figure_build_times,
    figure_comparison,
    figure_delays,
    render_table,
    table1,
)
from repro.scenarios import all_scenarios, get_scenario

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_QUERY = DatalogQuery(TC, "tc")
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c)."))


class TestStats:
    def test_quantiles(self):
        data = sorted([1.0, 2.0, 3.0, 4.0])
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 4.0
        assert quantile(data, 0.5) == pytest.approx(2.5)

    def test_box_stats(self):
        box = box_stats([5.0, 1.0, 3.0, 2.0, 4.0])
        assert box.minimum == 1.0
        assert box.median == 3.0
        assert box.maximum == 5.0
        assert box.count == 5
        assert box.as_row(scale=1000.0)[2] == pytest.approx(3000.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            mean([])

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        box = box_stats([7.0])
        assert box.minimum == box.median == box.maximum == 7.0


class TestSampling:
    def test_deterministic(self):
        t1 = sample_answer_tuples(TC_QUERY, TC_DB, count=3, seed=5)
        t2 = sample_answer_tuples(TC_QUERY, TC_DB, count=3, seed=5)
        assert t1 == t2

    def test_returns_answers_only(self):
        from repro.datalog.engine import answers

        sampled = sample_answer_tuples(TC_QUERY, TC_DB, count=3, seed=1)
        answer_set = answers(TC_QUERY, TC_DB)
        assert all(t in answer_set for t in sampled)

    def test_fewer_answers_than_requested(self):
        small = Database(parse_database("e(a, b)."))
        sampled = sample_answer_tuples(TC_QUERY, small, count=5)
        assert sampled == [("a", "b")]

    def test_no_answers(self):
        assert sample_answer_tuples(TC_QUERY, Database(), count=5) == []


class TestRunner:
    def test_run_tuple_records_everything(self):
        run = run_tuple(TC_QUERY, TC_DB, ("a", "c"), member_limit=10)
        assert run.members == 2  # direct edge or two-hop path
        assert len(run.delays) == 2
        assert run.exhausted
        assert run.build_seconds >= 0
        assert run.delay_box() is not None

    def test_run_database_smallest_scenario(self):
        scenario = get_scenario("Doctors-2")
        run = run_database(
            scenario, "D1", tuples_per_database=2, member_limit=5, timeout_seconds=10
        )
        assert run.scenario == "Doctors-2"
        assert len(run.tuple_runs) == 2
        assert run.fact_count > 0
        assert all(r.members >= 1 for r in run.tuple_runs)

    def test_member_limit(self):
        run = run_tuple(TC_QUERY, TC_DB, ("a", "c"), member_limit=1)
        assert run.members == 1
        assert not run.exhausted

    def test_run_database_with_deltas_reserves_after_updates(self):
        from repro.datalog.atoms import Atom
        from repro.datalog.database import Delta

        scenario = get_scenario("TransClosure")
        database = scenario.database("bitcoin")
        some_edge = sorted(database.facts(), key=str)[0]
        deltas = [
            Delta.delete(some_edge),
            Delta.insert(Atom("e", ("tnew", "tnew2"))),
        ]
        run = run_database(
            scenario, "bitcoin", tuples_per_database=2, member_limit=3,
            timeout_seconds=5, deltas=deltas,
        )
        assert len(run.update_runs) == 2
        assert [u.database for u in run.update_runs] == [
            "bitcoin+u1", "bitcoin+u2",
        ]
        for update_run in run.update_runs:
            assert update_run.tuple_runs  # re-sampled and re-served
            assert all(r.members >= 1 for r in update_run.tuple_runs)
        # The second update's fact count reflects both deltas.
        assert run.update_runs[1].fact_count == run.fact_count

    def test_run_database_deltas_require_session_path(self):
        from repro.datalog.database import Delta

        scenario = get_scenario("TransClosure")
        with pytest.raises(ValueError, match="incremental maintenance"):
            run_database(
                scenario, "bitcoin", tuples_per_database=1,
                use_session=False, deltas=[Delta()],
            )


class TestTables:
    def test_render_alignment(self):
        text = render_table(["A", "Bee"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "---" in lines[1]

    def test_table1_lists_all_scenarios(self):
        text = table1(all_scenarios())
        assert "TransClosure" in text
        assert "Doctors-7" in text
        assert "non-linear, recursive" in text

    def test_figure_build_times(self):
        run = run_tuple(TC_QUERY, TC_DB, ("a", "c"), member_limit=5)
        db_run = DatabaseRun("TC", "toy", len(TC_DB), [run])
        text = figure_build_times([db_run], "Figure X")
        assert "Closure (s)" in text and "toy" in text

    def test_figure_delays(self):
        run = run_tuple(TC_QUERY, TC_DB, ("a", "c"), member_limit=5)
        db_run = DatabaseRun("TC", "toy", len(TC_DB), [run])
        text = figure_delays([db_run], "Figure Y")
        assert "Median (ms)" in text

    def test_figure_delays_empty(self):
        db_run = DatabaseRun("TC", "toy", 4, [])
        text = figure_delays([db_run], "Figure Y")
        assert "toy" in text

    def test_figure_comparison(self):
        text = figure_comparison([["Doctors-1", "(a)", "0.1", "0.2", 3]])
        assert "SAT-based" in text and "All-at-once" in text
