"""Property-based tests (hypothesis) for the core invariants.

Random Datalog instances are drawn from two controlled families — chain /
DAG graphs under the transitive-closure program, and random instances of
the path-accessibility program — small enough that the exponential oracles
terminate, rich enough to exercise cycles, sharing and ambiguity.
"""

import random as stdlib_random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.program import DatalogQuery
from repro.datalog.engine import evaluate, stage_sets
from repro.provenance.enumerate import why_families
from repro.provenance.grounding import downward_closure
from repro.core.decision import decide_why_unambiguous
from repro.core.enumerator import why_provenance_unambiguous
from repro.sat.acyclicity import (
    arcs_are_acyclic,
    encode_transitive_closure,
    encode_vertex_elimination,
)
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.solver import CDCLSolver, solve_cnf

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_QUERY = DatalogQuery(TC, "tc")

PA = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
PA_QUERY = DatalogQuery(PA, "a")

NODES = ["a", "b", "c", "d"]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=1,
    max_size=7,
    unique=True,
)


def tc_database(edges):
    return Database(Atom("e", (u, v)) for u, v in edges if u != v)


pa_strategy = st.fixed_dictionaries(
    {
        "sources": st.lists(st.sampled_from(NODES), min_size=1, max_size=2, unique=True),
        "triples": st.lists(
            st.tuples(
                st.sampled_from(NODES), st.sampled_from(NODES), st.sampled_from(NODES)
            ),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    }
)


def pa_database(spec):
    db = Database()
    for s in spec["sources"]:
        db.add(Atom("s", (s,)))
    for y, z, x in spec["triples"]:
        db.add(Atom("t", (y, z, x)))
    return db


common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEngineProperties:
    @given(edges=edges_strategy)
    @common_settings
    def test_naive_and_seminaive_agree(self, edges):
        db = tc_database(edges)
        naive = evaluate(TC, db, method="naive")
        semi = evaluate(TC, db, method="seminaive")
        assert naive.model == semi.model
        assert naive.ranks == semi.ranks

    @given(edges=edges_strategy)
    @common_settings
    def test_rank_is_first_stage(self, edges):
        db = tc_database(edges)
        result = evaluate(TC, db)
        stages = stage_sets(TC, db)
        for fact, rank in result.ranks.items():
            assert fact in stages[min(rank, len(stages) - 1)]
            if rank > 0:
                assert fact not in stages[rank - 1]

    @given(spec=pa_strategy)
    @common_settings
    def test_model_facts_have_closures(self, spec):
        db = pa_database(spec)
        result = evaluate(PA, db)
        for fact in result.model.relation("a"):
            closure = downward_closure(PA, db, fact, evaluation=result)
            assert closure.root == fact
            assert closure.nodes <= result.model.facts()


class TestProvenanceProperties:
    @given(spec=pa_strategy)
    @common_settings
    def test_family_containments(self, spec):
        db = pa_database(spec)
        result = evaluate(PA, db)
        facts = sorted(result.model.relation("a"), key=str)[:2]
        for fact in facts:
            families = why_families(PA_QUERY, db, fact.args)
            assert families["whyUN"] <= families["whyNR"] <= families["why"]
            assert families["whyMD"] <= families["why"]
            assert families["whyUN"], "an answer always has an unambiguous tree"
            for member in families["why"]:
                assert member <= db.facts()

    @given(spec=pa_strategy)
    @common_settings
    def test_sat_pipeline_matches_oracle(self, spec):
        db = pa_database(spec)
        result = evaluate(PA, db)
        facts = sorted(result.model.relation("a"), key=str)[:2]
        for fact in facts:
            families = why_families(PA_QUERY, db, fact.args)
            sat_family = why_provenance_unambiguous(PA_QUERY, db, fact.args)
            assert sat_family == families["whyUN"]

    @given(spec=pa_strategy)
    @common_settings
    def test_membership_decider_consistent_with_enumeration(self, spec):
        db = pa_database(spec)
        result = evaluate(PA, db)
        facts = sorted(result.model.relation("a"), key=str)[:1]
        for fact in facts:
            family = why_provenance_unambiguous(PA_QUERY, db, fact.args)
            for member in family:
                assert decide_why_unambiguous(PA_QUERY, db, fact.args, member)
            assert not decide_why_unambiguous(PA_QUERY, db, fact.args, frozenset())

    @given(edges=edges_strategy)
    @common_settings
    def test_minimal_depth_members_exist(self, edges):
        db = tc_database(edges)
        if not len(db):
            return
        result = evaluate(TC, db)
        facts = sorted(result.model.relation("tc"), key=str)[:2]
        for fact in facts:
            families = why_families(TC_QUERY, db, fact.args)
            assert families["whyMD"], "the minimal-depth tree always exists"


class TestSatProperties:
    @given(
        clauses=st.lists(
            st.lists(
                st.integers(min_value=1, max_value=6).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=18,
        )
    )
    @common_settings
    def test_cdcl_agrees_with_dpll(self, clauses):
        cnf = CNF(6)
        for clause in clauses:
            cnf.add_clause(tuple(clause))
        model = solve_cnf(cnf)
        dpll = solve_dpll(cnf)
        assert (model is None) == (dpll is None)
        if model is not None:
            assert cnf.evaluate(model)

    @given(
        arcs=st.lists(
            st.tuples(st.sampled_from("uvwx"), st.sampled_from("uvwx")),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        selector=st.integers(min_value=0, max_value=255),
    )
    @common_settings
    def test_acyclicity_encodings_match_oracle(self, arcs, selector):
        selection = {arc for i, arc in enumerate(arcs) if selector & (1 << i)}
        expected = arcs_are_acyclic(sorted(selection))
        for encoder in (encode_transitive_closure, encode_vertex_elimination):
            cnf = CNF()
            arc_vars = {arc: cnf.new_var() for arc in arcs}
            encoder(cnf, arc_vars)
            solver = CDCLSolver()
            solver.add_cnf(cnf)
            assumptions = [
                (var if arc in selection else -var)
                for arc, var in arc_vars.items()
            ]
            assert bool(solver.solve(assumptions=assumptions)) == expected
