"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, check_over_schema
from repro.datalog.terms import Variable


def sample_db():
    return Database([
        Atom("e", ("a", "b")),
        Atom("e", ("b", "c")),
        Atom("e", ("a", "c")),
        Atom("s", ("a",)),
    ])


class TestBasics:
    def test_len_contains_iter(self):
        db = sample_db()
        assert len(db) == 4
        assert Atom("e", ("a", "b")) in db
        assert Atom("e", ("c", "a")) not in db
        assert set(db) == db.facts()

    def test_add_returns_newness(self):
        db = Database()
        assert db.add(Atom("p", ("a",)))
        assert not db.add(Atom("p", ("a",)))

    def test_add_rejects_non_ground(self):
        with pytest.raises(ValueError):
            Database().add(Atom("p", (Variable("x"),)))

    def test_update_counts_new(self):
        db = sample_db()
        added = db.update([Atom("s", ("a",)), Atom("s", ("b",))])
        assert added == 1

    def test_discard(self):
        db = sample_db()
        assert db.discard(Atom("s", ("a",)))
        assert not db.discard(Atom("s", ("a",)))
        assert Atom("s", ("a",)) not in db
        assert db.count("s") == 0

    def test_equality_with_set(self):
        db = sample_db()
        assert db == sample_db()
        assert db == set(sample_db().facts())

    def test_copy_is_independent(self):
        db = sample_db()
        dup = db.copy()
        dup.add(Atom("s", ("z",)))
        assert Atom("s", ("z",)) not in db


class TestAccess:
    def test_relation(self):
        db = sample_db()
        assert db.relation("e") == {
            Atom("e", ("a", "b")),
            Atom("e", ("b", "c")),
            Atom("e", ("a", "c")),
        }
        assert db.relation("nope") == frozenset()

    def test_predicates(self):
        assert sample_db().predicates() == {"e", "s"}

    def test_active_domain(self):
        assert sample_db().active_domain() == {"a", "b", "c"}

    def test_count(self):
        db = sample_db()
        assert db.count("e") == 3
        assert db.count("s") == 1
        assert db.count("nope") == 0


class TestMatching:
    def test_unbound_scan(self):
        db = sample_db()
        assert len(list(db.matching("e", {}))) == 3

    def test_single_position(self):
        db = sample_db()
        facts = set(db.matching("e", {0: "a"}))
        assert facts == {Atom("e", ("a", "b")), Atom("e", ("a", "c"))}

    def test_multi_position(self):
        db = sample_db()
        facts = set(db.matching("e", {0: "a", 1: "c"}))
        assert facts == {Atom("e", ("a", "c"))}

    def test_no_match(self):
        db = sample_db()
        assert list(db.matching("e", {0: "zzz"})) == []
        assert list(db.matching("nope", {})) == []

    def test_matching_reflects_discard(self):
        db = sample_db()
        db.discard(Atom("e", ("a", "b")))
        assert set(db.matching("e", {0: "a"})) == {Atom("e", ("a", "c"))}

    def test_matching_safe_under_mutation_single_binding(self):
        # The single-binding path used to alias the raw index set; adding
        # or discarding mid-iteration then blew up with RuntimeError.
        db = sample_db()
        seen = []
        for fact in db.matching("e", {0: "a"}):
            db.add(Atom("e", ("a", str(len(seen)))))
            db.discard(Atom("e", ("b", "c")))
            seen.append(fact)
        assert set(seen) == {Atom("e", ("a", "b")), Atom("e", ("a", "c"))}

    def test_matching_safe_under_mutation_no_bindings(self):
        db = sample_db()
        seen = []
        for fact in db.matching("e", {}):
            db.discard(fact)
            seen.append(fact)
        assert len(seen) == 3
        assert db.count("e") == 0

    def test_matching_safe_under_mutation_multi_binding(self):
        db = sample_db()
        seen = []
        for fact in db.matching("e", {0: "a", 1: "b"}):
            db.add(Atom("e", ("a", "zz")))
            seen.append(fact)
        assert seen == [Atom("e", ("a", "b"))]


class TestDiscardCleansIndexes:
    def test_emptied_buckets_are_deleted(self):
        # Churn must not leave empty sets behind in the secondary indexes.
        db = Database()
        for i in range(100):
            fact = Atom("p", (f"v{i}", i))
            db.add(fact)
            db.discard(fact)
        assert len(db) == 0
        assert db._by_pred == {}
        assert db._index == {}
        assert db.predicates() == frozenset()

    def test_partial_discard_keeps_shared_buckets(self):
        db = sample_db()
        db.discard(Atom("e", ("a", "b")))
        # ("e", 0, "a") is still inhabited by e(a, c); ("e", 1, "b") is gone.
        assert ("e", 0, "a") in db._index
        assert ("e", 1, "b") not in db._index
        assert set(db.matching("e", {0: "a"})) == {Atom("e", ("a", "c"))}

    def test_discard_then_add_round_trips(self):
        db = sample_db()
        fact = Atom("s", ("a",))
        db.discard(fact)
        assert "s" not in db.predicates()
        db.add(fact)
        assert set(db.matching("s", {0: "a"})) == {fact}


class TestRestrictSubset:
    def test_restrict(self):
        db = sample_db()
        restricted = db.restrict(["s"])
        assert set(restricted) == {Atom("s", ("a",))}

    def test_subset_validates(self):
        db = sample_db()
        sub = db.subset([Atom("s", ("a",))])
        assert len(sub) == 1
        with pytest.raises(ValueError):
            db.subset([Atom("s", ("nope",))])


class TestSchemaCheck:
    def test_check_over_schema(self):
        db = sample_db()
        check_over_schema(db, ["e", "s"])
        with pytest.raises(ValueError, match="outside"):
            check_over_schema(db, ["e"])
