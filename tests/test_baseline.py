"""Tests for the all-at-once baseline (the Figure 5 comparator)."""

import pytest

from repro.baselines.all_at_once import (
    AllAtOnceReport,
    BaselineBudgetExceeded,
    all_at_once_why,
)
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.enumerate import enumerate_why, enumerate_why_unambiguous
from repro.core.enumerator import why_provenance_unambiguous

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
QUERY = DatalogQuery(PROGRAM, "a")
DB1 = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))

NR_PROGRAM = parse_program(
    """
    p(X) :- q(X, Y).
    top(X) :- p(X), u(X).
    """
)
NR_QUERY = DatalogQuery(NR_PROGRAM, "top")
NR_DB = Database(parse_database("q(a, b). q(a, c). u(a)."))


class TestCorrectness:
    def test_matches_why_oracle(self):
        report = all_at_once_why(QUERY, DB1, ("d",))
        assert report.members == enumerate_why(QUERY, DB1, ("d",))

    def test_non_answer(self):
        report = all_at_once_why(QUERY, DB1, ("zzz",))
        assert report.members == frozenset()
        assert report.iterations == 0

    def test_linear_nonrecursive_matches_sat_pipeline(self):
        """On linear+non-recursive queries, why == whyUN: the Figure 5
        comparison computes the same family via both approaches."""
        baseline = all_at_once_why(NR_QUERY, NR_DB, ("a",)).members
        sat_based = why_provenance_unambiguous(NR_QUERY, NR_DB, ("a",))
        assert baseline == sat_based
        assert baseline == enumerate_why_unambiguous(NR_QUERY, NR_DB, ("a",))

    def test_budget(self):
        with pytest.raises(BaselineBudgetExceeded):
            all_at_once_why(QUERY, DB1, ("d",), max_supports_per_fact=1)


class TestReport:
    def test_timings_recorded(self):
        report = all_at_once_why(QUERY, DB1, ("d",))
        assert report.closure_seconds >= 0
        assert report.saturation_seconds >= 0
        assert report.total_seconds == pytest.approx(
            report.closure_seconds + report.saturation_seconds
        )
        assert report.iterations >= 1

    def test_accepts_precomputed_closure(self):
        from repro.provenance.grounding import downward_closure

        closure = downward_closure(QUERY.program, DB1, QUERY.answer_atom(("d",)))
        report = all_at_once_why(QUERY, DB1, ("d",), closure=closure)
        assert report.members == enumerate_why(QUERY, DB1, ("d",))
