"""Tests for the instrumented engine trace and the ProvenanceSession.

The load-bearing properties:

* the trace recorded by ``evaluate(..., record_instances=True)`` equals
  the set produced by re-matching every rule over the final model
  (``ground_instances``) — checked on fixed programs and on random
  programs/databases via hypothesis;
* session-served downward closures equal freshly computed ones;
* a session evaluates its ``(D, Sigma)`` pair exactly once across many
  target-fact queries, asserted via a call counter on the engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.session as session_module
from repro.core.decision import decide_membership
from repro.core.enumerator import why_provenance_unambiguous
from repro.core.minimal import minimal_members, smallest_member
from repro.core.session import ProvenanceSession
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine import evaluate, ground_instances
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import DatalogQuery, Program
from repro.provenance.grounding import FactNotDerivable, downward_closure

from test_parser_properties import safe_rules

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
DB = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))
QUERY = DatalogQuery(PROGRAM, "a")

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c)."))
TC_QUERY = DatalogQuery(TC, "tc")


@st.composite
def programs_with_databases(draw):
    """A random safe program plus a database over its predicates.

    Facts are drawn over the program's own predicates (head and body
    alike, so intensional seeds occur) from a tiny constant pool, which
    makes rule bodies actually join.
    """
    rules = draw(st.lists(safe_rules(), min_size=1, max_size=4))
    try:
        program = Program(rules)
    except ValueError:
        # Arity conflicts between randomly drawn rules: discard politely.
        return None
    preds = sorted(program.arities().items())
    pool = ["c1", "c2", "c3"]
    facts = []
    for pred, arity in preds:
        count = draw(st.integers(min_value=0, max_value=3))
        for _ in range(count):
            args = tuple(draw(st.sampled_from(pool)) for _ in range(arity))
            facts.append(Atom(pred, args))
    return program, Database(facts)


common = settings(max_examples=60, deadline=None)


class TestInstanceTrace:
    def test_trace_equals_ground_instances_fixed(self):
        for program, db in ((PROGRAM, DB), (TC, TC_DB)):
            result = evaluate(program, db, record_instances=True)
            assert set(result.instances) == set(ground_instances(program, result.model))

    def test_trace_off_by_default(self):
        assert evaluate(PROGRAM, DB).instances is None

    def test_naive_and_seminaive_traces_agree(self):
        semi = evaluate(PROGRAM, DB, method="seminaive", record_instances=True)
        naive = evaluate(PROGRAM, DB, method="naive", record_instances=True)
        assert set(semi.instances) == set(naive.instances)

    def test_trace_has_no_duplicates(self):
        result = evaluate(PROGRAM, DB, record_instances=True)
        assert len(result.instances) == len(set(result.instances))

    def test_trace_with_seeded_intensional_facts(self):
        # The round-0 delta must expose database-seeded idb facts (the
        # CurNode pattern of the App. D.3 rewriting).
        db = Database(parse_database("tc(a, b). e(b, c)."))
        result = evaluate(TC, db, record_instances=True)
        assert set(result.instances) == set(ground_instances(TC, result.model))
        assert parse_atom("tc(a, c)") in result.model

    @given(drawn=programs_with_databases())
    @common
    def test_trace_equals_ground_instances_random(self, drawn):
        if drawn is None:
            return
        program, db = drawn
        for method in ("seminaive", "naive"):
            result = evaluate(program, db, method=method, record_instances=True)
            assert set(result.instances) == set(
                ground_instances(program, result.model)
            ), method


class TestSessionClosures:
    def test_closure_matches_fresh_computation(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        for tup in session.answers():
            fact = session.answer_fact(tup)
            cached = session.closure(fact)
            fresh = downward_closure(TC, TC_DB, fact)
            assert cached.root == fresh.root
            assert cached.nodes == fresh.nodes
            assert cached.database_nodes == fresh.database_nodes
            assert {
                head: frozenset(edges)
                for head, edges in cached.hyperedges_by_head.items()
            } == {
                head: frozenset(edges)
                for head, edges in fresh.hyperedges_by_head.items()
            }
            assert {
                head: frozenset(instances)
                for head, instances in cached.instances_by_head.items()
            } == {
                head: frozenset(instances)
                for head, instances in fresh.instances_by_head.items()
            }

    def test_closure_cached_by_fact(self):
        session = ProvenanceSession(QUERY, DB)
        fact = parse_atom("a(d)")
        assert session.closure(fact) is session.closure(fact)
        assert session.stats.closure_builds == 1
        assert session.stats.closure_hits == 1

    def test_closure_of_underivable_fact_raises(self):
        session = ProvenanceSession(QUERY, DB)
        with pytest.raises(FactNotDerivable):
            session.closure(parse_atom("a(zzz)"))
        assert session.closure_or_none(parse_atom("a(zzz)")) is None

    def test_foil_session_uses_demand_driven_grounding(self):
        # record_instances=False is the documented foil: closures must come
        # from the demand-driven path (no trace, no full-GRI materialization)
        # and still agree with the instrumented ones.
        foil = ProvenanceSession(TC_QUERY, TC_DB, record_instances=False)
        instrumented = ProvenanceSession(TC_QUERY, TC_DB)
        assert foil.evaluation.instances is None
        for tup in instrumented.answers():
            fact = instrumented.answer_fact(tup)
            a, b = foil.closure(fact), instrumented.closure(fact)
            assert a.nodes == b.nodes
            assert {h: frozenset(e) for h, e in a.hyperedges_by_head.items()} == {
                h: frozenset(e) for h, e in b.hyperedges_by_head.items()
            }
        assert foil._gri is None  # the foil never built the full GRI

    def test_decide_default_matches_free_function(self):
        # session.decide without a tree class must agree with the
        # decide_membership default ("arbitrary"), not silently use whyUN.
        session = ProvenanceSession(QUERY, DB)
        whole = DB.facts()
        assert session.decide(("d",), whole) == decide_membership(
            QUERY, DB, ("d",), whole
        )
        # The discriminating case: the whole database is a member under
        # arbitrary trees but not under unambiguous ones.
        assert session.decide(("d",), whole) is True
        assert session.decide(("d",), whole, "unambiguous") is False

    def test_gri_matches_module_function(self):
        from repro.provenance.grounding import rule_instance_graph

        session = ProvenanceSession(QUERY, DB)
        expected = rule_instance_graph(PROGRAM, DB)
        got = session.gri()
        assert {h: frozenset(es) for h, es in got.items() if es} == {
            h: frozenset(es) for h, es in expected.items() if es
        }


class TestSessionEvaluatesOnce:
    def test_single_evaluation_across_queries(self, monkeypatch):
        calls = {"n": 0}
        real_evaluate = session_module.evaluate

        def counting_evaluate(*args, **kwargs):
            calls["n"] += 1
            return real_evaluate(*args, **kwargs)

        monkeypatch.setattr(session_module, "evaluate", counting_evaluate)
        session = ProvenanceSession(QUERY, DB)
        for tup in session.answers():
            session.why(tup)
            session.closure_for(tup)
            session.min_dag_depth(tup)
            member = session.smallest_member(tup)
            assert session.decide(tup, member, "unambiguous")
        assert calls["n"] == 1
        assert session.stats.evaluations == 1
        assert session.stats.gri_builds == 1

    def test_invalidate_forces_reevaluation(self):
        session = ProvenanceSession(QUERY, DB)
        session.why(("d",))
        session.invalidate()
        session.why(("d",))
        assert session.stats.evaluations == 2

    def test_fork_shares_nothing(self):
        session = ProvenanceSession(QUERY, DB)
        session.why(("d",))
        fork = session.fork()
        assert fork.stats.evaluations == 0
        fork.why(("d",))
        assert fork.stats.evaluations == 1
        assert session.stats.evaluations == 1


class TestSessionAgreesWithFreeFunctions:
    def test_why_matches_unsessioned_pipeline(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        for tup in session.answers():
            expected = why_provenance_unambiguous(TC_QUERY, TC_DB, tup)
            assert frozenset(session.why(tup)) == expected

    def test_decisions_match_unsessioned(self):
        session = ProvenanceSession(QUERY, DB)
        candidates = [
            frozenset(parse_database("s(a). t(a, a, d).")),
            frozenset(parse_database("s(a).")),
            DB.facts(),
        ]
        for tree_class in ("arbitrary", "unambiguous", "nonrecursive", "minimal-depth"):
            for candidate in candidates:
                expected = decide_membership(QUERY, DB, ("d",), candidate, tree_class)
                got = decide_membership(
                    QUERY, DB, ("d",), candidate, tree_class, session=session
                )
                assert got == expected, (tree_class, candidate)
                assert session.decide(("d",), candidate, tree_class) == expected

    def test_warm_decision_solver_is_reused(self):
        session = ProvenanceSession(QUERY, DB)
        member = frozenset(parse_database("s(a). t(a, a, d)."))
        assert session.decide(("d",), member, "unambiguous")
        solver = session.decision_solver(("d",))
        assert session.decision_solver(("d",)) is solver
        # Deciding again (positively and negatively) must not corrupt the
        # warm solver: assumptions retract, blocking clauses never land.
        assert session.decide(("d",), member, "unambiguous")
        assert not session.decide(("d",), frozenset(parse_database("s(a).")), "unambiguous")
        assert session.decide(("d",), member, "unambiguous")

    def test_minimal_matches_unsessioned(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        for tup in session.answers():
            assert session.smallest_member(tup) is not None
            expected = {frozenset(m) for m in minimal_members(TC_QUERY, TC_DB, tup)}
            got = {frozenset(m) for m in session.minimal_members(tup)}
            assert got == expected
            direct = smallest_member(TC_QUERY, TC_DB, tup, session=session)
            assert len(direct) == min(len(m) for m in expected)

    def test_session_acyclicity_flows_to_every_method(self):
        # A session configured with a non-default acyclicity must use it
        # consistently: decisions and minimal explanations follow the same
        # encoding as enumeration, and the caches are shared (one key).
        session = ProvenanceSession(TC_QUERY, TC_DB, acyclicity="transitive-closure")
        tup = ("a", "c")
        members = session.why(tup)
        member = members[0]
        assert session.decide(tup, member, "unambiguous")
        assert session.smallest_member(tup) is not None
        encodings = [key for key, enc in session._encodings.items() if enc is not None]
        assert encodings == [(parse_atom("tc(a, c)"), 1, "transitive-closure")]
        assert frozenset(members) == why_provenance_unambiguous(
            TC_QUERY, TC_DB, tup, acyclicity="transitive-closure"
        )

    def test_why_of_non_answer_is_empty(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        assert session.why(("d", "a")) == []
        assert not session.is_answer(("d", "a"))

    def test_enumerator_is_warm_and_incremental(self):
        session = ProvenanceSession(TC_QUERY, TC_DB)
        enumerator = session.enumerator(("a", "c"))
        assert session.enumerator(("a", "c")) is enumerator
        first = enumerator.members(limit=1)
        rest = enumerator.members()
        assert len(first) == 1
        # Incremental continuation: no member is repeated.
        assert not (set(first) & set(rest))
        assert frozenset(first + rest) == why_provenance_unambiguous(
            TC_QUERY, TC_DB, ("a", "c")
        )
