"""Unit tests for body matching and the bottom-up engine."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine import (
    answers,
    evaluate,
    ground_instances,
    holds,
    immediate_consequences,
    stage_sets,
)
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.datalog.terms import Variable
from repro.datalog.unify import match_atom, match_body, plan_order

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)

PATH_DB = Database(parse_database("e(a, b). e(b, c). e(c, d)."))


class TestMatchAtom:
    def test_binds_variables(self):
        subst = match_atom(Atom("e", (X, Y)), Atom("e", ("a", "b")))
        assert subst == {X: "a", Y: "b"}

    def test_repeated_variable(self):
        pattern = Atom("e", (X, X))
        assert match_atom(pattern, Atom("e", ("a", "a"))) == {X: "a"}
        assert match_atom(pattern, Atom("e", ("a", "b"))) is None

    def test_respects_base(self):
        pattern = Atom("e", (X, Y))
        assert match_atom(pattern, Atom("e", ("a", "b")), {X: "z"}) is None
        assert match_atom(pattern, Atom("e", ("a", "b")), {X: "a"}) == {X: "a", Y: "b"}

    def test_constant_mismatch(self):
        assert match_atom(Atom("e", ("q", Y)), Atom("e", ("a", "b"))) is None
        assert match_atom(Atom("f", (X, Y)), Atom("e", ("a", "b"))) is None


class TestMatchBody:
    def test_join(self):
        body = (Atom("e", (X, Y)), Atom("e", (Y, Z)))
        results = list(match_body(body, PATH_DB))
        pairs = {(s[X], s[Z]) for s in results}
        assert pairs == {("a", "c"), ("b", "d")}

    def test_base_substitution(self):
        body = (Atom("e", (X, Y)),)
        results = list(match_body(body, PATH_DB, {X: "a"}))
        assert len(results) == 1
        assert results[0][Y] == "b"

    def test_empty_result(self):
        body = (Atom("e", (X, X)),)
        assert list(match_body(body, PATH_DB)) == []

    def test_cross_product(self):
        body = (Atom("e", (X, Y)), Atom("e", (Z, Variable("w"))))
        assert len(list(match_body(body, PATH_DB))) == 9

    def test_long_chain(self):
        # Deep joins must not hit recursion limits.
        chain_db = Database(
            Atom("e", (f"n{i}", f"n{i+1}")) for i in range(50)
        )
        variables = [Variable(f"v{i}") for i in range(41)]
        body = tuple(
            Atom("e", (variables[i], variables[i + 1])) for i in range(40)
        )
        # Paths of length 40 in a 50-edge chain start at n0 .. n10.
        results = list(match_body(body, chain_db))
        assert len(results) == 11


class TestPlanOrder:
    def test_prefers_bound_atoms(self):
        body = [Atom("e", (Y, Z)), Atom("e", (X, Y))]
        order = plan_order(body, {X: "a"})
        assert order[0] == Atom("e", (X, Y))

    def test_keeps_all_atoms(self):
        body = [Atom("e", (X, Y)), Atom("f", (Z,)), Atom("g", (Y, Z))]
        assert sorted(map(str, plan_order(body))) == sorted(map(str, body))


class TestEvaluation:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_transitive_closure(self, method):
        result = evaluate(TC, PATH_DB, method=method)
        tc_facts = {f.args for f in result.model.relation("tc")}
        assert tc_facts == {
            ("a", "b"), ("b", "c"), ("c", "d"),
            ("a", "c"), ("b", "d"), ("a", "d"),
        }

    def test_methods_agree_on_ranks(self):
        naive = evaluate(TC, PATH_DB, method="naive")
        semi = evaluate(TC, PATH_DB, method="seminaive")
        assert naive.model == semi.model
        assert naive.ranks == semi.ranks

    def test_ranks_match_stage_sets(self):
        result = evaluate(TC, PATH_DB)
        stages = stage_sets(TC, PATH_DB)
        for fact, rank in result.ranks.items():
            first = next(i for i, stage in enumerate(stages) if fact in stage)
            assert first == rank, f"{fact}: rank {rank}, stage {first}"

    def test_extensional_facts_rank_zero(self):
        result = evaluate(TC, PATH_DB)
        for fact in PATH_DB:
            assert result.ranks[fact] == 0

    def test_rank_growth_along_chain(self):
        result = evaluate(TC, PATH_DB)
        assert result.ranks[Atom("tc", ("a", "b"))] == 1
        assert result.ranks[Atom("tc", ("a", "c"))] == 2
        assert result.ranks[Atom("tc", ("a", "d"))] == 3

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            evaluate(TC, PATH_DB, method="magic")

    def test_empty_database(self):
        result = evaluate(TC, Database())
        assert result.model == set()
        assert result.rounds == 0

    def test_nonlinear_program(self):
        program = parse_program(
            """
            a(X) :- s(X).
            a(X) :- a(Y), a(Z), t(Y, Z, X).
            """
        )
        db = Database(parse_database(
            "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
        ))
        result = evaluate(program, db)
        derived = {f.args[0] for f in result.model.relation("a")}
        assert derived == {"a", "b", "c", "d"}


class TestAnswers:
    def test_answers(self):
        query = DatalogQuery(TC, "tc")
        assert ("a", "d") in answers(query, PATH_DB)
        assert holds(query, PATH_DB, ("a", "d"))
        assert not holds(query, PATH_DB, ("d", "a"))


class TestGroundInstances:
    def test_instances_over_model(self):
        result = evaluate(TC, PATH_DB)
        instances = list(ground_instances(TC, result.model))
        heads = {g.head for g in instances}
        assert Atom("tc", ("a", "d")) in heads
        # Every instance body lies in the model and justifies its head.
        for g in instances:
            assert all(atom in result.model for atom in g.body)
            assert g.head in result.model

    def test_instance_counts(self):
        result = evaluate(TC, PATH_DB)
        instances = list(ground_instances(TC, result.model))
        # Rule 1: 3 base instances; rule 2: tc(x,y) x e(y,z) joins.
        rule2 = [g for g in instances if len(g.body) == 2]
        assert len(instances) == 3 + len(rule2)


class TestImmediateConsequences:
    def test_one_step(self):
        out = immediate_consequences(TC, PATH_DB)
        assert Atom("tc", ("a", "b")) in out
        assert Atom("tc", ("a", "c")) not in out
