"""Unit tests for the GRI and downward closure (Definition 42 / App. D.3)."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.grounding import (
    FactNotDerivable,
    downward_closure,
    downward_closure_via_rewriting,
    min_dag_depth,
    rule_instance_graph,
)

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
DB = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))
QUERY = DatalogQuery(PROGRAM, "a")

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_DB = Database(parse_database("e(a, b). e(b, c). e(c, d)."))
TC_QUERY = DatalogQuery(TC, "tc")


class TestRuleInstanceGraph:
    def test_heads_are_model_facts(self):
        gri = rule_instance_graph(PROGRAM, DB)
        heads = set(gri)
        assert parse_atom("a(a)") in heads
        assert parse_atom("a(d)") in heads

    def test_hyperedge_targets_deduplicate(self):
        gri = rule_instance_graph(PROGRAM, DB)
        edges_ad = gri[parse_atom("a(d)")]
        # a(d) <- {a(a), t(a,a,d)} with the duplicate a(a) collapsed.
        targets = {frozenset(map(str, e.targets)) for e in edges_ad}
        assert frozenset({"a(a)", "t(a, a, d)"}) in targets

    def test_base_facts_have_no_edges(self):
        gri = rule_instance_graph(PROGRAM, DB)
        assert parse_atom("s(a)") not in gri


class TestDownwardClosure:
    def test_contains_only_reachable(self):
        closure = downward_closure(TC, TC_DB, parse_atom("tc(b, c)"))
        assert parse_atom("e(b, c)") in closure.nodes
        assert parse_atom("e(c, d)") not in closure.nodes
        assert parse_atom("tc(a, d)") not in closure.nodes

    def test_database_nodes(self):
        closure = downward_closure(PROGRAM, DB, parse_atom("a(d)"))
        assert closure.database_nodes == DB.facts()  # everything is relevant here

    def test_root_recorded(self):
        closure = downward_closure(PROGRAM, DB, parse_atom("a(d)"))
        assert closure.root == parse_atom("a(d)")

    def test_underivable_fact_raises(self):
        with pytest.raises(FactNotDerivable):
            downward_closure(PROGRAM, DB, parse_atom("a(zzz)"))

    def test_instances_carry_multisets(self):
        closure = downward_closure(PROGRAM, DB, parse_atom("a(d)"))
        instances = closure.instances_by_head[parse_atom("a(d)")]
        bodies = {tuple(map(str, inst.body)) for inst in instances}
        # The recursive rule instantiates with y = z = a: body multiset
        # keeps both occurrences of a(a).
        assert ("a(a)", "a(a)", "t(a, a, d)") in bodies

    def test_potential_edges(self):
        closure = downward_closure(TC, TC_DB, parse_atom("tc(a, c)"))
        pairs = {(str(u), str(v)) for u, v in closure.potential_edges()}
        assert ("tc(a, c)", "tc(a, b)") in pairs
        assert ("tc(a, b)", "e(a, b)") in pairs

    def test_edge_count_positive(self):
        closure = downward_closure(PROGRAM, DB, parse_atom("a(d)"))
        assert closure.edge_count() >= len(closure.intensional_nodes())


class TestRewritingConstruction:
    @pytest.mark.parametrize(
        "query,db,fact",
        [
            (QUERY, DB, "a(d)"),
            (QUERY, DB, "a(a)"),
            (TC_QUERY, TC_DB, "tc(a, d)"),
            (TC_QUERY, TC_DB, "tc(b, c)"),
        ],
    )
    def test_agrees_with_direct_construction(self, query, db, fact):
        """The App. D.3 rewriting yields the same closure as the direct BFS."""
        target = parse_atom(fact)
        direct = downward_closure(query.program, db, target)
        rewritten = downward_closure_via_rewriting(query, db, target)
        assert direct.nodes == rewritten.nodes
        direct_edges = {
            (head, edge.targets)
            for head, edges in direct.hyperedges_by_head.items()
            for edge in edges
        }
        rewritten_edges = {
            (head, edge.targets)
            for head, edges in rewritten.hyperedges_by_head.items()
            for edge in edges
        }
        assert direct_edges == rewritten_edges
        assert direct.database_nodes == rewritten.database_nodes

    def test_underivable_fact_raises(self):
        with pytest.raises(FactNotDerivable):
            downward_closure_via_rewriting(QUERY, DB, parse_atom("a(zzz)"))


class TestMinDagDepth:
    def test_chain_depths(self):
        assert min_dag_depth(TC, TC_DB, parse_atom("tc(a, b)")) == 1
        assert min_dag_depth(TC, TC_DB, parse_atom("tc(a, c)")) == 2
        assert min_dag_depth(TC, TC_DB, parse_atom("tc(a, d)")) == 3
        assert min_dag_depth(TC, TC_DB, parse_atom("e(a, b)")) == 0

    def test_underivable(self):
        with pytest.raises(FactNotDerivable):
            min_dag_depth(TC, TC_DB, parse_atom("tc(d, a)"))
