"""Synthetic workload families and the cross-stack differential oracle.

Three layers: the generators (determinism, scenario plumbing, delta
sanity), the oracle (path agreement over random seeds — the fuzz
invariant, run in-process here; the TCP path joins in a fixed-instance
test), and the shrinker (driven by an injected divergence, since the
real stack currently agrees everywhere).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.session import ProvenanceSession
from repro.scenarios import get_scenario
from repro.scenarios.synthetic import (
    DEFAULT_SIZE,
    FAMILIES,
    generate_instance,
    scenario_from_name,
    synthetic,
)
from repro.testing.oracle import (
    ALL_PATHS,
    OracleConfig,
    run_oracle,
    shrink,
)

from strategies import synthetic_instances

#: The oracle evaluates every example through several full pipelines;
#: generous deadlines and few examples keep the property honest but fast.
oracle_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

quick_settings = settings(max_examples=40, deadline=None)


class TestGeneratorDeterminism:
    @given(instance=synthetic_instances())
    @quick_settings
    def test_same_seed_same_texts(self, instance):
        again = generate_instance(
            instance.family,
            size=instance.size,
            seed=instance.seed,
            delta_rounds=len(instance.deltas) or 0,
        )
        assert again.program_text() == instance.program_text()
        assert again.database_text() == instance.database_text()

    @given(instance=synthetic_instances())
    @quick_settings
    def test_delta_sequence_is_deterministic(self, instance):
        again = generate_instance(
            instance.family,
            size=instance.size,
            seed=instance.seed,
            delta_rounds=len(instance.deltas),
        )
        assert again.delta_lines() == instance.delta_lines()

    @given(instance=synthetic_instances())
    @quick_settings
    def test_database_is_over_edb_schema(self, instance):
        edb = instance.query.program.edb
        assert all(fact.pred in edb for fact in instance.database)

    @given(instance=synthetic_instances())
    @quick_settings
    def test_deltas_apply_cleanly_and_stay_on_schema(self, instance):
        edb = instance.query.program.edb
        db = instance.database.copy()
        for delta in instance.deltas:
            assert all(fact.pred in edb for fact in delta.facts())
            effective = db.apply(delta)
            # The generator tracks a simulated copy, so every staged
            # insertion is genuinely new and every deletion genuinely hits.
            assert effective.inserted == delta.inserted
            assert effective.deleted == delta.deleted

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown synthetic family"):
            generate_instance("nosuch")

    def test_non_positive_size_raises(self):
        with pytest.raises(ValueError, match="positive"):
            generate_instance("chain", size=0)

    def test_every_family_has_answers_at_default_size(self):
        for family in FAMILIES:
            instance = generate_instance(family, size=DEFAULT_SIZE, seed=0)
            session = ProvenanceSession(instance.query, instance.database.copy())
            assert session.answers(), f"{family} has no answers at default size"


class TestScenarioPlumbing:
    def test_scenario_builds_and_rebuilds(self):
        instance = generate_instance("grid", size=12, seed=4)
        scenario = instance.scenario()
        assert scenario.name == "synthetic-grid-n12-s4"
        assert scenario.database("gen") == instance.database
        assert scenario.query() == instance.query

    def test_get_scenario_resolves_synthetic_names(self):
        scenario = get_scenario("synthetic-tree-n10-s2")
        assert scenario.name == "synthetic-tree-n10-s2"
        assert scenario.database_names() == ["gen"]
        assert scenario.database("gen") == synthetic("tree", size=10, seed=2).database("gen")

    def test_get_scenario_still_rejects_garbage(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("synthetic-but-not-really")

    def test_scenario_from_name_ignores_foreign_names(self):
        assert scenario_from_name("TransClosure") is None
        assert scenario_from_name("synthetic-chain-n5") is None

    def test_scenario_from_name_rejects_unknown_family(self):
        with pytest.raises(KeyError, match="unknown synthetic family"):
            scenario_from_name("synthetic-zebra-n5-s1")


class TestOracleAgreement:
    """The fuzz invariant, as properties (in-process paths for speed)."""

    @given(
        instance=synthetic_instances(
            size=st.integers(4, 14),
            seed=st.integers(0, 200),
        )
    )
    @oracle_settings
    def test_in_process_paths_agree(self, instance):
        config = OracleConfig(
            paths=("cold", "warm", "incremental"), limit=3, tuples_per_state=2
        )
        report = run_oracle(instance, config)
        assert report.ok, "\n".join(d.describe() for d in report.divergences)

    def test_all_five_paths_agree_on_fixed_instances(self):
        for family, seed in (("chain", 9), ("widejoin", 9), ("mixed", 9)):
            instance = generate_instance(family, size=10, seed=seed, delta_rounds=1)
            report = run_oracle(
                instance, OracleConfig(paths=ALL_PATHS, limit=3, tuples_per_state=2)
            )
            assert report.ok, report.summary()

    def test_report_shape(self):
        instance = generate_instance("chain", size=6, seed=0, delta_rounds=2)
        config = OracleConfig(paths=("cold", "incremental"))
        report = run_oracle(instance, config)
        assert report.states == 3  # base + two deltas
        assert set(report.observations) == {"cold", "incremental"}
        assert all(len(texts) == 3 for texts in report.observations.values())
        assert "ok" in report.summary()

    def test_config_rejects_unknown_path(self):
        with pytest.raises(ValueError, match="unknown oracle paths"):
            OracleConfig(paths=("cold", "quantum"))

    def test_config_rejects_single_path(self):
        with pytest.raises(ValueError, match="at least two"):
            OracleConfig(paths=("cold",))


class TestShrinking:
    """Drive the shrinker with an injected, fact-triggered divergence."""

    @pytest.fixture
    def lying_warm_path(self, monkeypatch):
        """Make the 'warm' path lie whenever the marker fact is present."""
        from repro.datalog.atoms import Atom
        from repro.testing import oracle as oracle_module

        marker = Atom("c_e", ("n0", "n1"))
        real_cold = oracle_module._PATH_RUNNERS["cold"]

        def lying(instance, config):
            texts = real_cold(instance, config)
            if marker in instance.database:
                texts = [text + "<LIE>" for text in texts]
            return texts

        monkeypatch.setitem(oracle_module._PATH_RUNNERS, "warm", lying)
        return marker

    def test_divergence_detected_and_shrunk(self, lying_warm_path):
        instance = generate_instance("chain", size=10, seed=0, delta_rounds=2)
        config = OracleConfig(paths=("cold", "warm"), limit=2, tuples_per_state=2)
        report = run_oracle(instance, config)
        assert not report.ok
        assert report.divergences[0].path_b == "warm"
        assert report.divergences[0].text_b.endswith("<LIE>")

        result = shrink(instance, config, max_checks=120)
        minimal = result.instance
        # The trigger is one fact: a correct shrink keeps it and drops
        # essentially everything else.
        assert lying_warm_path in minimal.database
        assert len(minimal.database) == 1
        assert not minimal.deltas
        assert len(minimal.query.program.rules) == 1
        assert not run_oracle(minimal, config).ok
        assert result.final_shape <= result.initial_shape
        assert "shrunk" in result.describe()

    def test_shrink_treats_crash_as_failure(self, monkeypatch):
        from repro.testing import oracle as oracle_module

        def crashing(instance, config):
            raise RuntimeError("path blew up")

        monkeypatch.setitem(oracle_module._PATH_RUNNERS, "warm", crashing)
        instance = generate_instance("chain", size=6, seed=1, delta_rounds=1)
        config = OracleConfig(paths=("cold", "warm"))
        result = shrink(instance, config, max_checks=40)
        # Everything still "fails" (crashes), so the shrinker drives the
        # instance to its structural floor within budget.
        assert result.checks <= 40
        assert len(result.instance.query.program.rules) >= 1
