"""Synthetic workload families and the cross-stack differential oracle.

Three layers: the generators (determinism, scenario plumbing, delta
sanity), the oracle (path agreement over random seeds — the fuzz
invariant, run in-process here; the TCP path joins in a fixed-instance
test), and the shrinker (driven by an injected divergence, since the
real stack currently agrees everywhere).
"""

import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.session import ProvenanceSession
from repro.datalog.database import Database
from repro.scenarios import get_scenario
from repro.scenarios.synthetic import (
    DEFAULT_SIZE,
    FAMILIES,
    _generate_deltas,
    generate_instance,
    scenario_from_name,
    synthetic,
)
from repro.testing.oracle import (
    ALL_PATHS,
    OracleConfig,
    run_oracle,
    shrink,
)

from strategies import deps_instances, family_names, synthetic_instances

#: The oracle evaluates every example through several full pipelines;
#: generous deadlines and few examples keep the property honest but fast.
oracle_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

quick_settings = settings(max_examples=40, deadline=None)


class TestGeneratorDeterminism:
    @given(instance=synthetic_instances())
    @quick_settings
    def test_same_seed_same_texts(self, instance):
        again = generate_instance(
            instance.family,
            size=instance.size,
            seed=instance.seed,
            delta_rounds=len(instance.deltas) or 0,
        )
        assert again.program_text() == instance.program_text()
        assert again.database_text() == instance.database_text()

    @given(instance=synthetic_instances())
    @quick_settings
    def test_delta_sequence_is_deterministic(self, instance):
        again = generate_instance(
            instance.family,
            size=instance.size,
            seed=instance.seed,
            delta_rounds=len(instance.deltas),
        )
        assert again.delta_lines() == instance.delta_lines()

    @given(instance=synthetic_instances())
    @quick_settings
    def test_database_is_over_edb_schema(self, instance):
        edb = instance.query.program.edb
        assert all(fact.pred in edb for fact in instance.database)

    @given(instance=synthetic_instances())
    @quick_settings
    def test_deltas_apply_cleanly_and_stay_on_schema(self, instance):
        edb = instance.query.program.edb
        db = instance.database.copy()
        for delta in instance.deltas:
            assert all(fact.pred in edb for fact in delta.facts())
            effective = db.apply(delta)
            # The generator tracks a simulated copy, so every staged
            # insertion is genuinely new and every deletion genuinely hits.
            assert effective.inserted == delta.inserted
            assert effective.deleted == delta.deleted

    @given(
        family=family_names,
        size=st.integers(1, 20),
        seed=st.integers(0, 500),
        rounds=st.integers(0, 5),
    )
    @quick_settings
    def test_every_requested_round_emits(self, family, size, seed, rounds):
        # The docstring contract: exactly ``delta_rounds`` deltas, every
        # one non-empty — never a silent shortfall.
        instance = generate_instance(family, size=size, seed=seed, delta_rounds=rounds)
        assert len(instance.deltas) == rounds
        assert all(delta for delta in instance.deltas)

    def test_rounds_keep_emitting_from_an_empty_database(self):
        # Deletions can in principle drain the simulated state; the
        # generic generator must then fall back to fully fresh inserts
        # (predicates/arities come from the program, not the database).
        deltas = _generate_deltas(
            "chain", 4, 0, Database(), ["c_e"], {"c_e": 2}, 5
        )
        assert len(deltas) == 5
        assert all(delta for delta in deltas)

    def test_no_edb_program_surfaces_the_shortfall(self):
        with pytest.raises(ValueError, match="no EDB predicates"):
            _generate_deltas("chain", 4, 0, Database(), [], {}, 2)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown synthetic family"):
            generate_instance("nosuch")

    def test_non_positive_size_raises(self):
        with pytest.raises(ValueError, match="positive"):
            generate_instance("chain", size=0)

    def test_every_family_has_answers_at_default_size(self):
        for family in FAMILIES:
            instance = generate_instance(family, size=DEFAULT_SIZE, seed=0)
            session = ProvenanceSession(instance.query, instance.database.copy())
            assert session.answers(), f"{family} has no answers at default size"


class TestScenarioPlumbing:
    def test_scenario_builds_and_rebuilds(self):
        instance = generate_instance("grid", size=12, seed=4)
        scenario = instance.scenario()
        assert scenario.name == "synthetic-grid-n12-s4"
        assert scenario.database("gen") == instance.database
        assert scenario.query() == instance.query

    def test_get_scenario_resolves_synthetic_names(self):
        scenario = get_scenario("synthetic-tree-n10-s2")
        assert scenario.name == "synthetic-tree-n10-s2"
        assert scenario.database_names() == ["gen"]
        assert scenario.database("gen") == synthetic("tree", size=10, seed=2).database("gen")

    def test_get_scenario_still_rejects_garbage(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("synthetic-but-not-really")

    def test_scenario_from_name_ignores_foreign_names(self):
        assert scenario_from_name("TransClosure") is None
        assert scenario_from_name("synthetic-chain-n5") is None

    def test_scenario_from_name_rejects_unknown_family(self):
        with pytest.raises(KeyError, match="unknown synthetic family"):
            scenario_from_name("synthetic-zebra-n5-s1")

    def test_get_scenario_rejects_zero_size_with_contract_error(self):
        # Regression: a well-shaped name with an impossible size used to
        # leak generate_instance's bare ValueError through get_scenario
        # instead of the documented known-scenarios KeyError.
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("synthetic-chain-n0-s0")

    def test_scenario_from_name_treats_zero_size_as_foreign(self):
        assert scenario_from_name("synthetic-chain-n0-s0") is None
        assert scenario_from_name("synthetic-deps-n0-s3") is None

    def test_scenario_factories_do_not_regenerate(self, monkeypatch):
        # Regression: scenario() used to regenerate the whole instance
        # (parse + database build + deltas) once per query access and
        # once per database build.
        import repro.scenarios.synthetic as synthetic_module

        calls = {"count": 0}
        real = FAMILIES["chain"]

        def counting(size, rng):
            calls["count"] += 1
            return real(size, rng)

        monkeypatch.setitem(synthetic_module.FAMILIES, "chain", counting)
        instance = generate_instance("chain", size=8, seed=1)
        assert calls["count"] == 1
        scenario = instance.scenario()
        assert scenario.query() == instance.query
        first = scenario.database("gen")
        second = scenario.database("gen")
        assert calls["count"] == 1, "scenario factories regenerated the instance"
        # Copy-before-mutate still holds: each build is a private copy.
        assert first == second == instance.database
        assert first is not second
        assert first is not instance.database


class TestDepsFamily:
    """The dependency-resolution workload: repodata shape, upgrade deltas."""

    def test_determinism_over_a_seed_band(self):
        for seed in range(12):
            first = generate_instance("deps", size=14, seed=seed, delta_rounds=3)
            again = generate_instance("deps", size=14, seed=seed, delta_rounds=3)
            assert again.program_text() == first.program_text()
            assert again.database_text() == first.database_text()
            assert again.delta_lines() == first.delta_lines()

    def test_name_round_trip(self):
        instance = generate_instance("deps", size=9, seed=5)
        assert instance.name == "synthetic-deps-n9-s5"
        scenario = get_scenario(instance.name)
        assert scenario.name == instance.name
        assert scenario.database("gen") == instance.database
        assert scenario.query() == instance.query

    def test_repodata_shape(self):
        instance = generate_instance("deps", size=16, seed=0)
        predicates = {fact.pred for fact in instance.database}
        assert predicates == {
            "dep_root",
            "dep_depends",
            "dep_provides",
            "dep_conflicts",
        }
        # Every version provides something, and every dependency names a
        # capability some version provides (installs are resolvable).
        provided = {
            fact.args[1]
            for fact in instance.database
            if fact.pred == "dep_provides"
        }
        depended = {
            fact.args[1]
            for fact in instance.database
            if fact.pred == "dep_depends"
        }
        assert depended <= provided
        assert instance.query.answer_predicate == "dep_justified"

    def test_roots_justify_themselves(self):
        instance = generate_instance("deps", size=16, seed=3)
        session = ProvenanceSession(instance.query, instance.database.copy())
        answers = set(session.answers())
        roots = {
            fact.args[0] for fact in instance.database if fact.pred == "dep_root"
        }
        assert roots
        for root in roots:
            assert (root, root) in answers
        # Every justified package traces back to a root.
        assert {answer[1] for answer in answers} <= roots

    @given(instance=deps_instances(rounds=st.integers(1, 3)))
    @quick_settings
    def test_deltas_are_upgrade_shaped(self, instance):
        version = re.compile(r"^p(\d+)v(\d+)$")
        for delta in instance.deltas:
            if not delta.deleted:
                continue  # the drained-repo fallback round inserts only
            # One retired package-version per round: it anchors every
            # deletion, and the published successor — the single first
            # argument of every insertion — bumps its version number.
            published = {fact.args[0] for fact in delta.inserted}
            assert len(published) == 1
            (new,) = published
            new_match = version.match(new)
            assert new_match is not None
            retired = [
                arg
                for fact in delta.deleted
                for arg in fact.args
                if version.match(str(arg))
                and version.match(str(arg)).group(1) == new_match.group(1)
                and all(
                    str(arg) in map(str, other.args) for other in delta.deleted
                )
            ]
            assert retired, "deletions do not share a retired version"
            old = retired[0]
            assert int(new_match.group(2)) > int(
                version.match(str(old)).group(2)
            )

    @given(seed=st.integers(0, 60))
    @oracle_settings
    def test_oracle_agreement_over_a_seed_band(self, seed):
        instance = generate_instance("deps", size=10, seed=seed, delta_rounds=2)
        config = OracleConfig(
            paths=("cold", "warm", "incremental"), limit=3, tuples_per_state=2
        )
        report = run_oracle(instance, config)
        assert report.ok, "\n".join(d.describe() for d in report.divergences)


class TestOracleAgreement:
    """The fuzz invariant, as properties (in-process paths for speed)."""

    @given(
        instance=synthetic_instances(
            size=st.integers(4, 14),
            seed=st.integers(0, 200),
        )
    )
    @oracle_settings
    def test_in_process_paths_agree(self, instance):
        config = OracleConfig(
            paths=("cold", "warm", "incremental"), limit=3, tuples_per_state=2
        )
        report = run_oracle(instance, config)
        assert report.ok, "\n".join(d.describe() for d in report.divergences)

    def test_all_five_paths_agree_on_fixed_instances(self):
        for family, seed in (("chain", 9), ("widejoin", 9), ("mixed", 9), ("deps", 9)):
            instance = generate_instance(family, size=10, seed=seed, delta_rounds=1)
            report = run_oracle(
                instance, OracleConfig(paths=ALL_PATHS, limit=3, tuples_per_state=2)
            )
            assert report.ok, report.summary()

    def test_report_shape(self):
        instance = generate_instance("chain", size=6, seed=0, delta_rounds=2)
        config = OracleConfig(paths=("cold", "incremental"))
        report = run_oracle(instance, config)
        assert report.states == 3  # base + two deltas
        assert set(report.observations) == {"cold", "incremental"}
        assert all(len(texts) == 3 for texts in report.observations.values())
        assert "ok" in report.summary()

    def test_config_rejects_unknown_path(self):
        with pytest.raises(ValueError, match="unknown oracle paths"):
            OracleConfig(paths=("cold", "quantum"))

    def test_config_rejects_single_path(self):
        with pytest.raises(ValueError, match="at least two"):
            OracleConfig(paths=("cold",))


class TestShrinking:
    """Drive the shrinker with an injected, fact-triggered divergence."""

    @pytest.fixture
    def lying_warm_path(self, monkeypatch):
        """Make the 'warm' path lie whenever the marker fact is present."""
        from repro.datalog.atoms import Atom
        from repro.testing import oracle as oracle_module

        marker = Atom("c_e", ("n0", "n1"))
        real_cold = oracle_module._PATH_RUNNERS["cold"]

        def lying(instance, config):
            texts = real_cold(instance, config)
            if marker in instance.database:
                texts = [text + "<LIE>" for text in texts]
            return texts

        monkeypatch.setitem(oracle_module._PATH_RUNNERS, "warm", lying)
        return marker

    def test_divergence_detected_and_shrunk(self, lying_warm_path):
        instance = generate_instance("chain", size=10, seed=0, delta_rounds=2)
        config = OracleConfig(paths=("cold", "warm"), limit=2, tuples_per_state=2)
        report = run_oracle(instance, config)
        assert not report.ok
        assert report.divergences[0].path_b == "warm"
        assert report.divergences[0].text_b.endswith("<LIE>")

        result = shrink(instance, config, max_checks=120)
        minimal = result.instance
        # The trigger is one fact: a correct shrink keeps it and drops
        # essentially everything else.
        assert lying_warm_path in minimal.database
        assert len(minimal.database) == 1
        assert not minimal.deltas
        assert len(minimal.query.program.rules) == 1
        assert not run_oracle(minimal, config).ok
        assert result.final_shape <= result.initial_shape
        assert "shrunk" in result.describe()

    def test_shrink_treats_crash_as_failure(self, monkeypatch):
        from repro.testing import oracle as oracle_module

        def crashing(instance, config):
            raise RuntimeError("path blew up")

        monkeypatch.setitem(oracle_module._PATH_RUNNERS, "warm", crashing)
        instance = generate_instance("chain", size=6, seed=1, delta_rounds=1)
        config = OracleConfig(paths=("cold", "warm"))
        result = shrink(instance, config, max_checks=40)
        # Everything still "fails" (crashes), so the shrinker drives the
        # instance to its structural floor within budget.
        assert result.checks <= 40
        assert len(result.instance.query.program.rules) >= 1
