"""Provenance circuits: construction, sharing, evaluation, unfolding."""

import pytest

from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.provenance import downward_closure, enumerate_why
from repro.semiring import (
    INFINITY,
    BooleanSemiring,
    CountingSemiring,
    CyclicClosure,
    TropicalSemiring,
    WhySemiring,
    circuit_from_closure,
    count_proof_trees,
    provenance_circuit,
    semiring_provenance,
    unfolded_circuit,
)
from repro.semiring.circuits import INPUT, PLUS, TIMES


def _pap():
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).")
    )
    return query, database


def _diamond():
    """Non-recursive program whose closure shares a sub-derivation."""
    program = parse_program(
        """
        mid(X) :- base(X).
        left(X) :- mid(X), lfl(X).
        right(X) :- mid(X), rfl(X).
        top(X) :- left(X), right(X).
        """
    )
    query = DatalogQuery(program, "top")
    database = Database(parse_database("base(a). lfl(a). rfl(a)."))
    return query, database


def test_acyclic_circuit_matches_equations_in_every_semiring():
    query, database = _diamond()
    circuit = provenance_circuit(query, database, ("a",))
    for ring in (BooleanSemiring(), CountingSemiring(), TropicalSemiring(), WhySemiring()):
        assert ring.equal(
            circuit.evaluate(ring),
            semiring_provenance(query, database, ("a",), ring),
        )


def test_circuit_shares_common_subderivations():
    query, database = _diamond()
    circuit = provenance_circuit(query, database, ("a",))
    # mid(a)/base(a) feeds both left and right, but appears once.
    input_gates = [gate for gate in circuit.gates if gate.kind == INPUT]
    assert len(input_gates) == 3
    assert set(circuit.inputs()) == database.facts()


def test_circuit_gate_kinds_and_topology():
    query, database = _diamond()
    circuit = provenance_circuit(query, database, ("a",))
    for index, gate in enumerate(circuit.gates):
        assert gate.kind in (INPUT, PLUS, TIMES)
        for child in gate.children:
            assert child < index  # children precede parents
    assert 0 <= circuit.output < circuit.size()
    assert circuit.depth() >= 2


def test_cyclic_closure_is_rejected():
    query, database = _pap()
    with pytest.raises(CyclicClosure):
        provenance_circuit(query, database, ("d",))


def test_unfolded_circuit_counts_grow_with_height():
    query, database = _pap()
    counts = [count_proof_trees(query, database, ("d",), height) for height in range(2, 9)]
    assert counts[0] >= 1
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[-1] > counts[0]  # Example 1: infinitely many proof trees


def test_unfolded_circuit_zero_below_rank():
    query, database = _pap()
    # A(d) needs height 2 (A(d) <- A(a), A(a), T with A(a) <- S(a)).
    assert count_proof_trees(query, database, ("d",), 1) == 0
    assert count_proof_trees(query, database, ("d",), 2) >= 1


def test_unfolded_circuit_why_converges_to_full_why():
    query, database = _pap()
    fact = query.answer_atom(("d",))
    closure = downward_closure(query.program, database, fact)
    ring = WhySemiring()
    deep = unfolded_circuit(closure, database, 12).evaluate(ring)
    assert deep == enumerate_why(query, database, ("d",))
    shallow = unfolded_circuit(closure, database, 2).evaluate(ring)
    assert shallow < deep  # only the small support fits in height 2


def test_unfolded_circuit_boolean_matches_rank_threshold():
    query, database = _pap()
    fact = query.answer_atom(("d",))
    closure = downward_closure(query.program, database, fact)
    ring = BooleanSemiring()
    assert unfolded_circuit(closure, database, 1).evaluate(ring) is False
    assert unfolded_circuit(closure, database, 2).evaluate(ring) is True


def test_unfolded_circuit_rejects_negative_height():
    query, database = _pap()
    fact = query.answer_atom(("d",))
    closure = downward_closure(query.program, database, fact)
    with pytest.raises(ValueError):
        unfolded_circuit(closure, database, -1)


def test_count_proof_trees_of_non_answer_is_zero():
    query, database = _diamond()
    assert count_proof_trees(query, database, ("zzz",), 5) == 0


def test_acyclic_circuit_on_copy_rule():
    program = parse_program("p(X) :- q(X).")
    query = DatalogQuery(program, "p")
    database = Database(parse_database("q(a)."))
    circuit = provenance_circuit(query, database, ("a",))
    # One input gate; the unary plus/times collapse into it.
    assert circuit.size() == 1
    assert circuit.evaluate(CountingSemiring()) == 1


def test_transitive_closure_chain_counts_paths():
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    query = DatalogQuery(program, "t")
    database = Database(parse_database("e(a, b). e(b, c). e(a, c)."))
    # t(a, c) has two derivations: direct edge, and a -> b -> c.
    circuit = provenance_circuit(query, database, ("a", "c"))
    assert circuit.evaluate(CountingSemiring()) == 2
    assert circuit.evaluate(TropicalSemiring()) == 1  # the direct edge
    why = circuit.evaluate(WhySemiring())
    assert why == enumerate_why(query, database, ("a", "c"))


def test_counting_semiring_saturation_matches_unbounded_growth():
    """kleene saturation (INFINITY) iff circuit counts keep growing."""
    query, database = _pap()
    assert semiring_provenance(query, database, ("d",), CountingSemiring()) == INFINITY
    low = count_proof_trees(query, database, ("d",), 6)
    high = count_proof_trees(query, database, ("d",), 10)
    assert high > low
