"""Integration tests: the whole pipeline on the paper's worked examples
and on small instances of every scenario family."""

import pytest

from repro import (
    Atom,
    Database,
    DatalogQuery,
    WhyProvenanceEnumerator,
    all_at_once_why,
    decide_membership,
    enumerate_why_unambiguous,
    parse_database,
    parse_program,
    why_provenance_unambiguous,
)
from repro.datalog.engine import evaluate
from repro.harness.runner import run_tuple, sample_answer_tuples
from repro.scenarios import get_scenario


class TestPaperRunningExample:
    """Examples 1-4 of the paper, end to end through the public API."""

    def setup_method(self):
        self.program = parse_program(
            """
            a(X) :- s(X).
            a(X) :- a(Y), a(Z), t(Y, Z, X).
            """
        )
        self.query = DatalogQuery(self.program, "a")
        self.db = Database(parse_database(
            "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
        ))

    def test_example2_why_provenance(self):
        minimal = frozenset(parse_database("s(a). t(a, a, d)."))
        assert decide_membership(self.query, self.db, ("d",), minimal, "arbitrary")
        assert decide_membership(self.query, self.db, ("d",), self.db.facts(), "arbitrary")
        # No other member exists.
        middle = frozenset(parse_database("s(a). t(a, a, b). t(a, a, d)."))
        assert not decide_membership(self.query, self.db, ("d",), middle, "arbitrary")

    def test_example2_unambiguous_via_sat(self):
        family = why_provenance_unambiguous(self.query, self.db, ("d",))
        assert family == frozenset({frozenset(parse_database("s(a). t(a, a, d)."))})

    def test_all_answers_have_provenance(self):
        evaluation = evaluate(self.program, self.db)
        for fact in evaluation.model.relation("a"):
            family = why_provenance_unambiguous(self.query, self.db, fact.args)
            assert family, fact


class TestScenarioPipelines:
    """One tuple per scenario family through build + enumerate + validate."""

    @pytest.mark.parametrize(
        "scenario_name,db_name",
        [
            ("TransClosure", "bitcoin"),
            ("Doctors-2", "D1"),
            ("Galen", "D1"),
            ("Andersen", "D1"),
            ("CSDA", "httpd"),
        ],
    )
    def test_pipeline(self, scenario_name, db_name):
        scenario = get_scenario(scenario_name)
        query = scenario.query()
        db = scenario.database(db_name).restrict(query.program.edb)
        evaluation = evaluate(query.program, db)
        tuples = sample_answer_tuples(query, db, count=1, seed=3, evaluation=evaluation)
        assert tuples, "scenario produced no answers"
        run = run_tuple(
            query,
            db,
            tuples[0],
            member_limit=5,
            timeout_seconds=20,
            evaluation=evaluation,
        )
        assert run.members >= 1
        # Every enumerated member must be a verified unambiguous witness.
        enumerator = WhyProvenanceEnumerator(
            query, db, tuples[0], evaluation=evaluation
        )
        for record in enumerator.enumerate(limit=3, timeout_seconds=20):
            assert decide_membership(
                query, db, tuples[0], record.support, "unambiguous"
            )


class TestMembersAreVerifiableProofTrees:
    """Each SAT member decodes to a compressed DAG that unravels into a
    valid unambiguous proof tree with exactly that support."""

    def test_decode_unravel_validate(self):
        program = parse_program(
            """
            a(X) :- s(X).
            a(X) :- a(Y), a(Z), t(Y, Z, X).
            """
        )
        query = DatalogQuery(program, "a")
        db = Database(parse_database(
            "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."
        ))
        from repro.core.encoder import encode_why_provenance
        from repro.sat.enumeration import enumerate_models
        from repro.sat.solver import CDCLSolver

        encoding = encode_why_provenance(query, db, ("d",))
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        seen = set()
        while solver.solve():
            model = solver.model()
            dag = encoding.decode_compressed_dag(model)
            dag.validate(program, db, expected_root=Atom("a", ("d",)))
            tree = dag.unravel(program)
            tree.validate(program, db)
            assert tree.is_unambiguous()
            assert tree.support() == encoding.decode_support(model)
            seen.add(tree.support())
            blocking = [
                (-var if model[var] else var)
                for var in encoding.database_fact_vars.values()
            ]
            if not solver.add_clause(blocking):
                break
        assert seen == enumerate_why_unambiguous(query, db, ("d",))


class TestBaselineAgainstPipeline:
    @pytest.mark.parametrize("variant", [1, 2, 5])
    def test_doctors_figure5_agreement(self, variant):
        """For the Doctors family the two approaches compute the same set."""
        from repro.scenarios.doctors import doctors_database, doctors_query

        query = doctors_query(variant)
        db = doctors_database(num_doctors=8, num_patients=10, seed=5)
        db = db.restrict(query.program.edb)
        evaluation = evaluate(query.program, db)
        tuples = sample_answer_tuples(query, db, count=2, seed=1, evaluation=evaluation)
        for tup in tuples:
            sat_family = why_provenance_unambiguous(query, db, tup)
            baseline = all_at_once_why(query, db, tup).members
            assert sat_family == baseline
