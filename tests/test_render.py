"""DOT rendering of proof objects."""

from repro.baselines import SouffleStyleProvenance
from repro.core.encoder import encode_why_provenance
from repro.datalog import Database, DatalogQuery, parse_database, parse_program
from repro.datalog.parser import parse_atom
from repro.provenance import downward_closure
from repro.provenance.render import (
    circuit_to_dot,
    closure_to_dot,
    compressed_dag_to_dot,
    proof_dag_to_dot,
    proof_tree_to_dot,
    support_table,
)
from repro.sat.solver import CDCLSolver
from repro.semiring import provenance_circuit


def _pap():
    program = parse_program(
        """
        a(X) :- s(X).
        a(X) :- a(Y), a(Z), t(Y, Z, X).
        """
    )
    query = DatalogQuery(program, "a")
    database = Database(
        parse_database("s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).")
    )
    return query, database


def test_proof_tree_dot_shapes_and_edges():
    query, database = _pap()
    tree = SouffleStyleProvenance(query.program, database).explain(parse_atom("a(d)"))
    dot = proof_tree_to_dot(tree, database)
    assert dot.startswith("digraph proof_tree {")
    assert dot.rstrip().endswith("}")
    # Database facts render as boxes, derived facts as ellipses.
    assert 'label="s(a)", shape=box' in dot
    assert 'label="a(d)", shape=ellipse' in dot
    assert "->" in dot


def test_proof_tree_dot_without_database_marks_everything_ellipse():
    query, database = _pap()
    tree = SouffleStyleProvenance(query.program, database).explain(parse_atom("a(d)"))
    dot = proof_tree_to_dot(tree)
    assert "shape=box" not in dot


def test_compressed_and_proof_dag_dot():
    query, database = _pap()
    encoding = encode_why_provenance(query, database, ("d",))
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    assert solver.solve() is True
    compressed = encoding.decode_compressed_dag(solver.model())
    dot = compressed_dag_to_dot(compressed, database)
    assert dot.startswith("digraph compressed_dag {")
    assert dot.count("shape=box") == len(
        [f for f in compressed.nodes() if f in database]
    )
    dag = compressed.to_proof_dag(query.program)
    dag_dot = proof_dag_to_dot(dag, database)
    assert dag_dot.startswith("digraph proof_dag {")
    assert dag_dot.count("->") >= dot.count("->") - dot.count("arrowhead")


def test_closure_dot_has_one_junction_per_hyperedge():
    query, database = _pap()
    closure = downward_closure(query.program, database, parse_atom("a(d)"))
    dot = closure_to_dot(closure, database)
    assert dot.count("shape=point") == closure.edge_count()
    assert "arrowhead=none" in dot


def test_circuit_dot_marks_gate_kinds():
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    query = DatalogQuery(program, "t")
    database = Database(parse_database("e(a, b). e(b, c). e(a, c)."))
    circuit = provenance_circuit(query, database, ("a", "c"))
    dot = circuit_to_dot(circuit)
    assert 'label="+"' in dot
    assert "×" in dot
    assert "penwidth=2" in dot
    assert dot.count("shape=box") == len(circuit.inputs())


def test_quotes_are_escaped():
    from repro.datalog.atoms import Atom
    from repro.provenance.proof_tree import ProofTree

    tree = ProofTree.leaf(Atom("p", ('va"lue',)))
    dot = proof_tree_to_dot(tree)
    assert '\\"' in dot


def test_support_table_orders_by_size():
    query, database = _pap()
    small = frozenset(parse_database("s(a). t(a, a, d)."))
    table = support_table([database.facts(), small])
    lines = table.splitlines()
    assert len(lines) == 2
    assert "( 2 facts)" in lines[0]
    assert "( 5 facts)" in lines[1]
