"""End-to-end validation of the paper's hardness reductions.

Each reduction is checked on random instances against a classical oracle
(brute-force 3SAT / Hamiltonian cycle), exercising the deciders on
adversarial inputs at the same time.
"""

import pytest

from repro.core.decision import (
    decide_why,
    decide_why_minimal_depth,
    decide_why_nonrecursive,
)
from repro.datalog.atoms import Atom
from repro.reductions.hamiltonian import (
    brute_force_hamiltonian_cycle,
    hamiltonian_database,
    hamiltonian_instance,
    hamiltonian_query,
    random_digraph,
)
from repro.reductions.minimal_depth import (
    minimal_depth_instance,
    minimal_depth_query,
    uniform_proof_depth,
)
from repro.reductions.three_sat import (
    brute_force_3sat,
    random_3cnf,
    three_sat_database,
    three_sat_instance,
    three_sat_query,
)


class TestThreeSatQueryShape:
    def test_fixed_query_is_linear(self):
        query = three_sat_query()
        assert query.is_linear()
        assert not query.is_non_recursive()
        assert len(query.program.rules) == 8
        assert query.classify() == "LDat"

    def test_database_size_polynomial(self):
        clauses = [(1, 2, 3), (-1, -2, 3)]
        db = three_sat_database(clauses, 3)
        # Var x3, Next x3, Last x1, C x2.
        assert len(db) == 3 + 3 + 1 + 2

    def test_clause_validation(self):
        with pytest.raises(ValueError):
            three_sat_database([(1, 2)], 3)  # not 3 literals
        with pytest.raises(ValueError):
            three_sat_database([(1, 2, 9)], 3)  # literal out of range
        with pytest.raises(ValueError):
            three_sat_database([(1, 2, 0)], 3)  # zero literal


class TestThreeSatEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_reduction_correct(self, seed):
        clauses = random_3cnf(4, 5 + (seed % 3), seed=seed)
        query, db, tup = three_sat_instance(clauses, 4)
        expected = brute_force_3sat(clauses, 4) is not None
        assert decide_why(query, db, tup, db.facts()) == expected

    def test_unsatisfiable_core(self):
        # (x) & (!x) in all eight sign combinations of three vars: UNSAT.
        clauses = [
            (1, 2, 3), (1, 2, -3), (1, -2, 3), (1, -2, -3),
            (-1, 2, 3), (-1, 2, -3), (-1, -2, 3), (-1, -2, -3),
        ]
        assert brute_force_3sat(clauses, 3) is None
        query, db, tup = three_sat_instance(clauses, 3)
        assert not decide_why(query, db, tup, db.facts())

    def test_trivially_satisfiable(self):
        clauses = [(1, 2, 3)]
        query, db, tup = three_sat_instance(clauses, 3)
        assert decide_why(query, db, tup, db.facts())


class TestHamiltonianQueryShape:
    def test_fixed_query_is_linear(self):
        query = hamiltonian_query()
        assert query.is_linear()
        assert len(query.program.rules) == 4
        assert query.answer_predicate == "Path"

    def test_database_encoding(self):
        db = hamiltonian_database(["u", "v"], [("u", "v"), ("v", "u")])
        assert Atom("First", (1,)) in db
        assert Atom("E", ("u", "v", 1, 2, 3)) in db
        assert Atom("E", ("v", "u", 2, 3, 3)) in db

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            hamiltonian_database(["u"], [("u", "w")])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            hamiltonian_instance([], [])


class TestHamiltonianEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_reduction_correct(self, seed):
        nodes, edges = random_digraph(
            4, 0.35, seed=seed, ensure_cycle=(seed % 2 == 0)
        )
        query, db, tup = hamiltonian_instance(nodes, edges)
        expected = brute_force_hamiltonian_cycle(nodes, edges) is not None
        assert decide_why_nonrecursive(query, db, tup, db.facts()) == expected

    def test_explicit_cycle(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        query, db, tup = hamiltonian_instance(nodes, edges)
        assert decide_why_nonrecursive(query, db, tup, db.facts())

    def test_path_without_cycle(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b"), ("b", "c")]
        query, db, tup = hamiltonian_instance(nodes, edges)
        assert brute_force_hamiltonian_cycle(nodes, edges) is None
        assert not decide_why_nonrecursive(query, db, tup, db.facts())

    def test_start_node_immaterial(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        for start in nodes:
            query, db, tup = hamiltonian_instance(nodes, edges, start=start)
            assert decide_why_nonrecursive(query, db, tup, db.facts())


class TestMinimalDepthReduction:
    def test_fixed_query_is_linear(self):
        query = minimal_depth_query()
        assert query.is_linear()
        assert len(query.program.rules) == 10

    @pytest.mark.parametrize("seed", range(4))
    def test_reduction_correct(self, seed):
        clauses = random_3cnf(3, 3, seed=seed)
        query, db, tup = minimal_depth_instance(clauses, 3)
        expected = brute_force_3sat(clauses, 3) is not None
        assert decide_why_minimal_depth(query, db, tup, db.facts()) == expected

    def test_lemma35_uniform_depth(self):
        """All proof trees of R(v1) have depth n*(m+2)+1."""
        from repro.datalog.engine import evaluate
        from repro.provenance.grounding import downward_closure

        clauses = [(1, 2, 3)]
        query, db, tup = minimal_depth_instance(clauses, 3)
        evaluation = evaluate(query.program, db)
        fact = query.answer_atom(tup)
        assert fact in evaluation.model
        assert evaluation.ranks[fact] == uniform_proof_depth(3, 1)

    def test_agrees_with_plain_membership(self):
        """On this construction whyMD membership == why membership."""
        for seed in range(3):
            clauses = random_3cnf(3, 2, seed=seed + 40)
            query, db, tup = minimal_depth_instance(clauses, 3)
            md = decide_why_minimal_depth(query, db, tup, db.facts())
            plain = decide_why(query, db, tup, db.facts())
            assert md == plain


class TestRandomGenerators:
    def test_random_3cnf_shape(self):
        clauses = random_3cnf(6, 10, seed=3)
        assert len(clauses) == 10
        for clause in clauses:
            variables = {abs(l) for l in clause}
            assert len(variables) == 3

    def test_random_3cnf_deterministic(self):
        assert random_3cnf(5, 8, seed=9) == random_3cnf(5, 8, seed=9)

    def test_random_digraph_planted_cycle(self):
        nodes, edges = random_digraph(5, 0.0, seed=1, ensure_cycle=True)
        assert brute_force_hamiltonian_cycle(nodes, edges) is not None

    def test_random_digraph_deterministic(self):
        assert random_digraph(5, 0.3, seed=2) == random_digraph(5, 0.3, seed=2)
