"""Harness round-trips through the service daemon: byte-identical output.

The acceptance contract of the serving layer: routing an experiment
through a real local daemon (`run_database(service=...)` — admission,
sampling, batch, delta replay, all over TCP) produces *exactly* the
in-process results — same sampled tuples, same witnesses in the same
order, same exhaustion flags — over TransClosure and Andersen, including
after update sequences.
"""

import pytest

from repro.core.session import ProvenanceSession
from repro.datalog.atoms import Atom
from repro.datalog.database import Delta
from repro.datalog.io import database_to_text, program_to_text
from repro.harness.runner import run_database
from repro.scenarios import get_scenario
from repro.service.client import local_service
from repro.service.protocol import render_members

#: Small budgets: the contract is identity, not scale.
BUDGET = dict(tuples_per_database=3, member_limit=8, timeout_seconds=10.0)


def strip_timings(run):
    """A DatabaseRun as comparable data (timings excluded, counts kept)."""
    return {
        "scenario": run.scenario,
        "database": run.database,
        "fact_count": run.fact_count,
        "tuples": [
            (r.tuple_value, r.members, r.exhausted, len(r.delays))
            for r in run.tuple_runs
        ],
        "updates": [strip_timings(u) for u in run.update_runs],
    }


def deltas_for(scenario_name: str):
    """A small insert-then-delete update sequence in the scenario schema."""
    if scenario_name == "TransClosure":
        edge = Atom("e", ("u_new", "u_new2"))
        return [Delta.insert(edge), Delta.delete(edge)]
    # Andersen: a fresh points-to base fact.
    fact = Atom("addressof", ("u_new", "u_new2"))
    return [Delta.insert(fact), Delta.delete(fact)]


CASES = [("TransClosure", "bitcoin"), ("Andersen", "D1")]


@pytest.mark.parametrize("scenario_name,database_name", CASES)
def test_service_round_trip_matches_in_process(scenario_name, database_name):
    scenario = get_scenario(scenario_name)
    local = run_database(scenario, database_name, **BUDGET)
    via_service = run_database(scenario, database_name, service=True, **BUDGET)
    assert strip_timings(via_service) == strip_timings(local)


@pytest.mark.parametrize("scenario_name,database_name", CASES)
def test_service_round_trip_matches_after_updates(scenario_name, database_name):
    scenario = get_scenario(scenario_name)
    deltas = deltas_for(scenario_name)
    local = run_database(scenario, database_name, deltas=deltas, **BUDGET)
    via_service = run_database(
        scenario, database_name, deltas=deltas, service=True, **BUDGET
    )
    assert strip_timings(via_service) == strip_timings(local)
    assert len(via_service.update_runs) == len(deltas)


@pytest.mark.parametrize("scenario_name,database_name", CASES)
def test_sharded_service_round_trip_matches_in_process(
    scenario_name, database_name
):
    """ISSUE 8 acceptance: the --workers 4 daemon is byte-identical too.

    Same harness run, but every request crosses the async router and a
    consistent-hash hop to one of four real worker processes.
    """
    scenario = get_scenario(scenario_name)
    local = run_database(scenario, database_name, **BUDGET)
    via_shards = run_database(
        scenario, database_name, service=True, shards=4, **BUDGET
    )
    assert strip_timings(via_shards) == strip_timings(local)


def test_sharded_service_round_trip_matches_after_updates():
    scenario = get_scenario("TransClosure")
    deltas = deltas_for("TransClosure")
    local = run_database(scenario, "bitcoin", deltas=deltas, **BUDGET)
    via_shards = run_database(
        scenario, "bitcoin", deltas=deltas, service=True, shards=4, **BUDGET
    )
    assert strip_timings(via_shards) == strip_timings(local)
    assert len(via_shards.update_runs) == len(deltas)


def test_shards_refused_without_service():
    scenario = get_scenario("TransClosure")
    with pytest.raises(ValueError, match="shard"):
        run_database(scenario, "bitcoin", shards=2, **BUDGET)


@pytest.mark.parametrize("scenario_name,database_name", CASES)
def test_witnesses_byte_identical_across_update_sequence(
    scenario_name, database_name
):
    """Witness-level identity: same members, same order, every version."""
    scenario = get_scenario(scenario_name)
    query = scenario.query()
    database = scenario.database(database_name).restrict(query.program.edb)
    session = ProvenanceSession(query, database)
    with local_service() as client:
        digest = client.open(
            program_to_text(query.program),
            database_to_text(database),
            query.answer_predicate,
        )["session"]
        for step, delta in enumerate([None] + deltas_for(scenario_name)):
            if delta is not None:
                lines = [f"+{f}." for f in delta.inserted]
                lines += [f"-{f}." for f in delta.deleted]
                receipt = client.update(digest, lines=lines)
                session.update(delta)
                assert receipt["version"] == session.version
            for tup in session.answers()[:3]:
                wire = client.why(digest, tup, limit=8)
                assert wire["version"] == session.version
                assert wire["result"]["members"] == render_members(
                    session.why(tup, limit=8)
                ), f"witness drift at step {step}, tuple {tup}"
        # The daemon's session maintained, never re-evaluated.
        stats = client.stats(digest)["result"]["session_stats"]
        assert stats["evaluations"] == 1


def test_service_with_batch_workers_still_identical():
    """The daemon's parallel snapshot path returns the serial answer."""
    scenario = get_scenario("TransClosure")
    local = run_database(scenario, "bitcoin", **BUDGET)
    with local_service(batch_workers=2, parallel_threshold=2) as client:
        via_service = run_database(
            scenario, "bitcoin", service=client, workers=2, **BUDGET
        )
    assert strip_timings(via_service) == strip_timings(local)


def test_shared_daemon_drifted_session_refused():
    """A second deltas= run against a shared daemon must refuse, not
    silently serve the first run's post-delta database as the base."""
    scenario = get_scenario("TransClosure")
    deltas = deltas_for("TransClosure")[:1]  # leave the session drifted
    with local_service() as client:
        run_database(scenario, "bitcoin", deltas=deltas, service=client, **BUDGET)
        with pytest.raises(ValueError, match="drifted"):
            run_database(scenario, "bitcoin", service=client, **BUDGET)


def test_service_refuses_foil_path():
    scenario = get_scenario("TransClosure")
    with pytest.raises(ValueError):
        run_database(scenario, "bitcoin", use_session=False, service=True, **BUDGET)


def test_service_honors_non_default_acyclicity():
    """service=True spins a daemon with the experiment's encoding knob."""
    scenario = get_scenario("TransClosure")
    kwargs = dict(acyclicity="transitive-closure", **BUDGET)
    local = run_database(scenario, "bitcoin", **kwargs)
    via_service = run_database(scenario, "bitcoin", service=True, **kwargs)
    assert strip_timings(via_service) == strip_timings(local)


def test_shared_daemon_acyclicity_mismatch_refused():
    """A shared daemon with a different encoding must refuse, not mislabel."""
    scenario = get_scenario("TransClosure")
    with local_service() as client:  # daemon default: vertex-elimination
        with pytest.raises(ValueError, match="acyclicity"):
            run_database(
                scenario, "bitcoin", service=client,
                acyclicity="transitive-closure", **BUDGET,
            )
