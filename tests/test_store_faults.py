"""Crash-point enumeration for the durable warm-state tier.

The store's contract (``docs/PERSISTENCE.md``): a crash at *any*
filesystem-operation boundary leaves a reopened store serving the
previous consistent state, the fully-committed new one, or a clean miss
— never a torn state, never an exception, never a state older than an
acknowledged update. These tests prove it by brute force: run each
write workload once under a counting :class:`faultinject.CrashingFS` to
enumerate its operations, then re-run it once per operation index with
the crash injected there (with and without torn half-writes) and assert
the recovery invariant on a reopened store each time. Hypothesis
generalizes the sweep over random delta sequences, blob sequences and
crash indices.
"""

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faultinject import CrashingFS, SimulatedCrash
from repro.core.session import ProvenanceSession
from repro.datalog.io import delta_to_lines
from repro.scenarios.synthetic import generate_instance
from repro.service.store import SnapshotStore

#: A syntactically plausible registry digest (the store treats it as an
#: opaque filename component + header stamp).
DIGEST = "f" * 64


# -- deterministic sweeps ------------------------------------------------------


def test_snapshot_overwrite_recovers_old_or_new_at_every_crash_point(tmp_path):
    old_blob = b"previous snapshot body " * 9
    new_blob = b"replacement snapshot body " * 11

    def seed(root):
        SnapshotStore(str(root)).put_snapshot(DIGEST, 1, old_blob)

    counting = CrashingFS()
    counted_root = tmp_path / "count"
    seed(counted_root)
    SnapshotStore(str(counted_root), fs=counting).put_snapshot(DIGEST, 2, new_blob)
    assert counting.ops, "the sweep below must cover at least one operation"

    for torn in (False, True):
        for crash_at in range(len(counting.ops)):
            root = tmp_path / f"{'torn' if torn else 'clean'}-{crash_at}"
            seed(root)
            crashing = SnapshotStore(
                str(root), fs=CrashingFS(crash_at=crash_at, torn=torn)
            )
            with pytest.raises(SimulatedCrash):
                crashing.put_snapshot(DIGEST, 2, new_blob)
            loaded = SnapshotStore(str(root)).load_snapshot(DIGEST)
            assert loaded in ((1, old_blob), (2, new_blob))


def test_first_snapshot_write_recovers_new_or_clean_miss(tmp_path):
    blob = b"the only snapshot body " * 7

    counting = CrashingFS()
    SnapshotStore(str(tmp_path / "count"), fs=counting).put_snapshot(DIGEST, 1, blob)

    for torn in (False, True):
        for crash_at in range(len(counting.ops)):
            root = tmp_path / f"{'torn' if torn else 'clean'}-{crash_at}"
            crashing = SnapshotStore(
                str(root), fs=CrashingFS(crash_at=crash_at, torn=torn)
            )
            with pytest.raises(SimulatedCrash):
                crashing.put_snapshot(DIGEST, 1, blob)
            recovered = SnapshotStore(str(root))
            assert recovered.load_snapshot(DIGEST) in (None, (1, blob))


def test_wal_append_preserves_prior_records_at_every_crash_point(tmp_path):
    prior = [(1, ["+e(1,2)."]), (2, ["-e(1,2).", "+e(2,3)."])]
    new_record = (3, ["+e(3,4).", "-e(0,1)."])

    def seed(root):
        store = SnapshotStore(str(root))
        for version, lines in prior:
            store.append_wal(DIGEST, version, lines)

    counting = CrashingFS()
    counted_root = tmp_path / "count"
    seed(counted_root)
    SnapshotStore(str(counted_root), fs=counting).append_wal(DIGEST, *new_record)

    for torn in (False, True):
        for crash_at in range(len(counting.ops)):
            root = tmp_path / f"{'torn' if torn else 'clean'}-{crash_at}"
            seed(root)
            crashing = SnapshotStore(
                str(root), fs=CrashingFS(crash_at=crash_at, torn=torn)
            )
            with pytest.raises(SimulatedCrash):
                crashing.append_wal(DIGEST, *new_record)
            recovered = SnapshotStore(str(root))
            records, valid_bytes, torn_tail = recovered.load_wal(DIGEST)
            assert records in (prior, prior + [new_record])
            assert records[: len(prior)] == prior
            if torn_tail:
                # Repair truncates exactly the damage: a re-read is clean
                # and byte-stable, with every prior record intact.
                recovered.repair_wal(DIGEST, valid_bytes)
                again, valid_again, torn_again = recovered.load_wal(DIGEST)
                assert not torn_again
                assert again == records
                assert valid_again == valid_bytes


def test_session_workload_crash_sweep_rehydrates_consistently(tmp_path):
    """The end-to-end contract over a real session's durable workload.

    Admission snapshot + per-update WAL appends, crashed at every
    operation boundary: the reopened store must either rehydrate a
    session at a version ``>=`` every acknowledged append (and its
    answers must match a cold session at that exact version) or report a
    clean miss — the latter only when the admission snapshot itself
    never committed.
    """
    instance = generate_instance("chain", size=8, seed=5, delta_rounds=3)

    def workload(store, progress):
        """Counts *acknowledged* WAL appends in ``progress`` (a crash
        propagates out of this function, so the count lives outside it)."""
        session = ProvenanceSession(instance.query, instance.database.copy())
        store.put_snapshot(DIGEST, session.version, session.snapshot_bytes())
        store.reset_wal(DIGEST)
        for delta in instance.deltas:
            receipt = session.update(delta)
            if receipt.effective.is_empty():
                continue
            store.append_wal(
                DIGEST, receipt.version, delta_to_lines(receipt.effective)
            )
            progress["acked"] += 1
        return session

    # Reference run: answers at every version the workload passes through.
    reference_progress = {"acked": 0}
    workload(SnapshotStore(str(tmp_path / "reference")), reference_progress)
    total_acked = reference_progress["acked"]
    answers_by_version = {}
    replay = ProvenanceSession(instance.query, instance.database.copy())
    answers_by_version[replay.version] = replay.answers()
    for delta in instance.deltas:
        replay.update(delta)
        answers_by_version[replay.version] = replay.answers()
    assert total_acked > 0, "the generated instance must exercise the WAL"

    counting = CrashingFS()
    workload(SnapshotStore(str(tmp_path / "count"), fs=counting), {"acked": 0})
    assert len(counting.ops) > 6

    for torn in (False, True):
        for crash_at in range(len(counting.ops)):
            root = tmp_path / f"{'torn' if torn else 'clean'}-{crash_at}"
            progress = {"acked": 0}
            try:
                workload(
                    SnapshotStore(
                        str(root), fs=CrashingFS(crash_at=crash_at, torn=torn)
                    ),
                    progress,
                )
            except SimulatedCrash:
                pass
            acked = progress["acked"]
            session = SnapshotStore(str(root)).rehydrate(DIGEST)
            if session is None:
                # A miss is only clean while nothing was ever acknowledged
                # durable — i.e. the admission snapshot never committed.
                assert acked == 0
            else:
                assert acked <= session.version <= acked + 1
                assert session.stats.evaluations == 1
                assert session.answers() == answers_by_version[session.version]


# -- hypothesis: the same invariants over generated inputs ---------------------

wal_lines = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24
    ),
    max_size=3,
)


@given(
    records=st.lists(wal_lines, min_size=1, max_size=5),
    crash_at=st.integers(min_value=0, max_value=40),
    torn=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_wal_crash_property(records, crash_at, torn):
    """Salvage = the completed appends, plus at most the in-flight one."""
    root = tempfile.mkdtemp(prefix="repro-wal-prop-")
    try:
        store = SnapshotStore(root, fs=CrashingFS(crash_at=crash_at, torn=torn))
        completed = 0
        try:
            for version, lines in enumerate(records, start=1):
                store.append_wal(DIGEST, version, lines)
                completed += 1
        except SimulatedCrash:
            pass
        recovered = SnapshotStore(root)
        salvaged, valid_bytes, torn_tail = recovered.load_wal(DIGEST)
        expected = [(v, list(lines)) for v, lines in enumerate(records, start=1)]
        assert salvaged in (expected[:completed], expected[: completed + 1])
        if torn_tail:
            recovered.repair_wal(DIGEST, valid_bytes)
            again, valid_again, torn_again = recovered.load_wal(DIGEST)
            assert not torn_again
            assert again == salvaged
            assert valid_again == valid_bytes
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(
    blobs=st.lists(st.binary(min_size=0, max_size=160), min_size=1, max_size=3),
    crash_at=st.integers(min_value=0, max_value=30),
    torn=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_snapshot_crash_property(blobs, crash_at, torn):
    """The visible snapshot is always a whole one the caller wrote."""
    root = tempfile.mkdtemp(prefix="repro-snap-prop-")
    try:
        store = SnapshotStore(root, fs=CrashingFS(crash_at=crash_at, torn=torn))
        completed = 0
        try:
            for version, blob in enumerate(blobs, start=1):
                store.put_snapshot(DIGEST, version, blob)
                completed += 1
        except SimulatedCrash:
            pass
        loaded = SnapshotStore(root).load_snapshot(DIGEST)
        if loaded is None:
            assert completed == 0
        else:
            version, blob = loaded
            assert version in (completed, completed + 1)
            assert blob == blobs[version - 1]
    finally:
        shutil.rmtree(root, ignore_errors=True)
