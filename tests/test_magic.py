"""Tests for the magic-set rewriting (goal-directed evaluation)."""

import random

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine import answers, evaluate, holds
from repro.datalog.magic import magic_evaluate, magic_holds, magic_rewrite
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    """
)
TC_QUERY = DatalogQuery(TC, "tc")

PA = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
PA_QUERY = DatalogQuery(PA, "a")


class TestRewritingShape:
    def test_magic_predicates_created(self):
        rewriting = magic_rewrite(TC_QUERY, ("a", "b"))
        preds = {rule.head.pred for rule in rewriting.program.rules}
        assert any(p.startswith("magic_tc") for p in preds)
        assert rewriting.seed.pred.startswith("magic_tc")
        assert rewriting.goal.args == ("a", "b")

    def test_guarded_rules_reference_magic(self):
        rewriting = magic_rewrite(TC_QUERY, ("a", "b"))
        for rule in rewriting.program.rules:
            if rule.head.pred.startswith("tc__"):
                assert rule.body[0].pred.startswith("magic_tc"), str(rule)


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        nodes = ["a", "b", "c", "d", "e"]
        db = Database(
            Atom("e", (u, v))
            for u in nodes
            for v in nodes
            if u != v and rng.random() < 0.3
        )
        answer_set = answers(TC_QUERY, db)
        for u in nodes:
            for v in nodes:
                expected = (u, v) in answer_set
                assert magic_holds(TC_QUERY, db, (u, v)) == expected, (u, v)

    @pytest.mark.parametrize("seed", range(6))
    def test_path_accessibility(self, seed):
        rng = random.Random(seed + 50)
        nodes = ["a", "b", "c", "d"]
        db = Database()
        db.add(Atom("s", (rng.choice(nodes),)))
        for _ in range(5):
            db.add(Atom("t", (rng.choice(nodes), rng.choice(nodes), rng.choice(nodes))))
        answer_set = answers(PA_QUERY, db)
        for node in nodes:
            expected = (node,) in answer_set
            assert magic_holds(PA_QUERY, db, (node,)) == expected, node

    def test_nonrecursive_chain(self):
        program = parse_program(
            """
            p(X) :- q(X, Y).
            top(X) :- p(X), u(X).
            """
        )
        query = DatalogQuery(program, "top")
        db = Database(parse_database("q(a, b). u(a). q(c, d)."))
        assert magic_holds(query, db, ("a",))
        assert not magic_holds(query, db, ("c",))
        assert not magic_holds(query, db, ("b",))


class TestGoalDirectedness:
    def test_fewer_facts_on_long_chain(self):
        """Asking about the head of a chain must not materialize the whole
        transitive closure."""
        n = 40
        db = Database(Atom("e", (f"n{i}", f"n{i+1}")) for i in range(n))
        full = evaluate(TC, db)
        full_derived = len(full.model) - len(db)
        magic = magic_evaluate(TC_QUERY, db, ("n0", "n1"))
        assert magic.goal_holds
        assert magic.derived_facts < full_derived

    def test_unreachable_goal_cheap(self):
        n = 30
        db = Database(Atom("e", (f"n{i}", f"n{i+1}")) for i in range(n))
        magic = magic_evaluate(TC_QUERY, db, ("n5", "n0"))  # backwards: no path
        assert not magic.goal_holds
        # Only the n5..n30 suffix is explored, never the full closure.
        full = evaluate(TC, db)
        assert magic.derived_facts < len(full.model) - len(db)


class TestScenarioAgreement:
    @pytest.mark.parametrize("scenario_name,db_name", [
        ("CSDA", "httpd"),
        ("Doctors-2", "D1"),
    ])
    def test_agrees_with_bottom_up(self, scenario_name, db_name):
        from repro.harness.runner import sample_answer_tuples
        from repro.scenarios import get_scenario

        scenario = get_scenario(scenario_name)
        query = scenario.query()
        db = scenario.database(db_name).restrict(query.program.edb)
        evaluation = evaluate(query.program, db)
        for tup in sample_answer_tuples(query, db, count=3, seed=2, evaluation=evaluation):
            assert magic_holds(query, db, tup)
