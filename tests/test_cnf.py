"""Unit tests for CNF formulas, variable pools, and DIMACS I/O."""

import pytest

from repro.sat.cnf import CNF, VariablePool


class TestCNF:
    def test_new_var_sequence(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_add_clause_validates(self):
        cnf = CNF(2)
        cnf.add_clause((1, -2))
        with pytest.raises(ValueError):
            cnf.add_clause((3,))
        with pytest.raises(ValueError):
            cnf.add_clause((0,))

    def test_empty_clause_allowed(self):
        cnf = CNF(1)
        cnf.add_clause(())
        assert () in cnf.clauses

    def test_implies(self):
        cnf = CNF(2)
        cnf.implies(1, 2)
        assert cnf.clauses == [(-1, 2)]

    def test_cardinality_helpers(self):
        cnf = CNF(3)
        cnf.exactly_one([1, 2, 3])
        assert (1, 2, 3) in cnf.clauses
        assert (-1, -2) in cnf.clauses
        assert (-1, -3) in cnf.clauses
        assert (-2, -3) in cnf.clauses

    def test_evaluate(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        cnf.add_clause((-1, 2))
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: False})

    def test_stats(self):
        cnf = CNF(3)
        cnf.add_clause((1, 2))
        cnf.add_clause((-3,))
        stats = cnf.stats()
        assert stats == {"variables": 3, "clauses": 2, "literals": 3}

    def test_copy_independent(self):
        cnf = CNF(1)
        cnf.add_clause((1,))
        dup = cnf.copy()
        dup.add_clause((-1,))
        assert len(cnf.clauses) == 1


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF(3)
        cnf.add_clause((1, -2, 3))
        cnf.add_clause((-1,))
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed.num_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 2
        assert cnf.clauses == [(1, -2), (2,)]

    def test_unterminated_clause(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p cnf 1 1\n1")

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p wcnf 1 1\n1 0\n")


class TestVariablePool:
    def test_stable_mapping(self):
        cnf = CNF()
        pool = VariablePool(cnf)
        a = pool.var(("x", "fact1"))
        b = pool.var(("x", "fact2"))
        assert a != b
        assert pool.var(("x", "fact1")) == a
        assert pool.key(a) == ("x", "fact1")

    def test_get_without_allocation(self):
        pool = VariablePool(CNF())
        assert pool.get("missing") is None
        var = pool.var("present")
        assert pool.get("present") == var

    def test_contains_len_items(self):
        pool = VariablePool(CNF())
        pool.var("a")
        pool.var("b")
        assert "a" in pool and "c" not in pool
        assert len(pool) == 2
        assert dict(pool.items()) == {"a": 1, "b": 2}

    def test_keys_with_prefix(self):
        pool = VariablePool(CNF())
        pool.var(("x", 1))
        pool.var(("y", 1))
        pool.var(("x", 2))
        keys = {k for k, _ in pool.keys_with_prefix("x")}
        assert keys == {("x", 1), ("x", 2)}
