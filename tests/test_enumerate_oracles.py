"""Tests for the brute-force why-provenance oracles.

These pin the paper's worked examples exactly and check the containment
relations between the four families.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.provenance.enumerate import (
    EnumerationBudgetExceeded,
    enumerate_why,
    enumerate_why_minimal_depth,
    enumerate_why_nonrecursive,
    enumerate_why_unambiguous,
    why_families,
)

PROGRAM = parse_program(
    """
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
    """
)
QUERY = DatalogQuery(PROGRAM, "a")
DB1 = Database(parse_database(
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a)."
))
DB4 = Database(parse_database(
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d)."
))


def fs(text: str) -> frozenset:
    return frozenset(parse_database(text))


class TestExample2:
    """why((d), D, Q) = { {S(a), T(a,a,d)}, D } (the paper's Example 2)."""

    def test_why(self):
        family = enumerate_why(QUERY, DB1, ("d",))
        assert family == frozenset({fs("s(a). t(a, a, d)."), DB1.facts()})

    def test_why_unambiguous_drops_full_database(self):
        family = enumerate_why_unambiguous(QUERY, DB1, ("d",))
        assert family == frozenset({fs("s(a). t(a, a, d).")})

    def test_why_nonrecursive_drops_full_database(self):
        # The only witness for D uses a(a) derived from itself.
        family = enumerate_why_nonrecursive(QUERY, DB1, ("d",))
        assert family == frozenset({fs("s(a). t(a, a, d).")})

    def test_why_minimal_depth(self):
        family = enumerate_why_minimal_depth(QUERY, DB1, ("d",))
        assert family == frozenset({fs("s(a). t(a, a, d).")})


class TestExample4:
    """whyUN((d), D, Q) has exactly the two one-sided explanations."""

    def test_why_unambiguous(self):
        family = enumerate_why_unambiguous(QUERY, DB4, ("d",))
        assert family == frozenset({
            fs("s(a). t(a, a, c). t(c, c, d)."),
            fs("s(b). t(b, b, c). t(c, c, d)."),
        })

    def test_full_database_in_nonrecursive_and_minimal_depth(self):
        # The ambiguous tree of Example 4 is non-recursive and minimal-depth.
        assert DB4.facts() in enumerate_why_nonrecursive(QUERY, DB4, ("d",))
        assert DB4.facts() in enumerate_why_minimal_depth(QUERY, DB4, ("d",))
        assert DB4.facts() not in enumerate_why_unambiguous(QUERY, DB4, ("d",))

    def test_why_contains_everything(self):
        why = enumerate_why(QUERY, DB4, ("d",))
        assert DB4.facts() in why
        assert fs("s(a). t(a, a, c). t(c, c, d).") in why


class TestContainments:
    """whyUN <= whyNR <= why, and whyMD <= why (Sections 4.3 and 5)."""

    @pytest.mark.parametrize("db,tup", [(DB1, ("d",)), (DB4, ("d",)), (DB1, ("a",)), (DB4, ("c",))])
    def test_containment_chain(self, db, tup):
        families = why_families(QUERY, db, tup)
        assert families["whyUN"] <= families["whyNR"]
        assert families["whyNR"] <= families["why"]
        assert families["whyMD"] <= families["why"]

    @pytest.mark.parametrize("db,tup", [(DB1, ("d",)), (DB4, ("d",))])
    def test_members_are_subsets_of_database(self, db, tup):
        for family in why_families(QUERY, db, tup).values():
            for member in family:
                assert member <= db.facts()


class TestNonAnswers:
    def test_all_empty_for_non_answer(self):
        families = why_families(QUERY, DB1, ("zzz",))
        assert all(family == frozenset() for family in families.values())


class TestUnionNotClosed:
    def test_why_is_not_union_closed(self):
        """P(a) from either edge, never both (motivates NP-hardness)."""
        program = parse_program("p(X) :- e(X, Y).")
        query = DatalogQuery(program, "p")
        db = Database(parse_database("e(a, b). e(a, c)."))
        family = enumerate_why(query, db, ("a",))
        assert family == frozenset({fs("e(a, b)."), fs("e(a, c).")})


class TestBudgets:
    def test_budget_raises(self):
        with pytest.raises(EnumerationBudgetExceeded):
            enumerate_why(QUERY, DB4, ("d",), max_supports_per_fact=1)


class TestLinearCoincidence:
    """For linear programs, whyNR == whyUN (Appendix D.1)."""

    @pytest.mark.parametrize("target", [("a", "b"), ("a", "c"), ("a", "d")])
    def test_tc_chain(self, target):
        tc = parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            """
        )
        query = DatalogQuery(tc, "tc")
        db = Database(parse_database("e(a, b). e(b, c). e(c, d). e(a, c)."))
        nr = enumerate_why_nonrecursive(query, db, target)
        un = enumerate_why_unambiguous(query, db, target)
        assert nr == un
