"""Differential tests: SAT-based minimal explanations vs subset enumeration.

``smallest_member`` / ``minimal_members`` compute cardinality-minimum and
subset-minimal members of ``whyUN`` through the CNF encoding plus
totalizer / shrink-and-block loops. The ground truth used here is as dumb
as possible: enumerate **every** subset of the relevant database facts
(the closure's leaves) and test derivability of the target with the
engine. Datalog is monotone, so

* the subset-minimal *derivable* subsets are exactly the subset-minimal
  members of ``why`` — which coincide with the subset-minimal members of
  ``whyUN`` (the containment argument in :mod:`repro.core.minimal`), and
* the minimum cardinality over derivable subsets is the smallest-member
  size.

That closes the gap where cardinality-minimality was only spot-checked
on the paper scenarios: here it is checked against exhaustive search on
small synthetic instances drawn from every workload family.
"""

from itertools import combinations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.minimal import minimal_members, smallest_member
from repro.core.session import ProvenanceSession
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.program import DatalogQuery
from repro.harness.runner import sample_from_answers
from repro.provenance.grounding import FactNotDerivable, downward_closure
from repro.scenarios.synthetic import FAMILIES, generate_instance

from strategies import synthetic_instances

#: Subset enumeration is 2^n engine evaluations; the cap keeps one tuple
#: under ~a second while still covering multi-member provenance.
POOL_CAP = 11


def brute_force_minimal(query, database, tup, cap=POOL_CAP):
    """``(minimal support family, smallest size)`` by exhaustive search.

    Enumerates every subset of the closure's database facts, marks the
    derivable ones with the engine, and keeps the subset-minimal ones
    (by monotonicity, checking single-fact removals suffices). Returns
    ``None`` when the pool exceeds *cap* (caller skips) and
    ``(frozenset(), None)`` when the tuple is not an answer.
    """
    target = query.answer_atom(tup)
    try:
        closure = downward_closure(query.program, database, target)
    except FactNotDerivable:
        return frozenset(), None
    pool = sorted((fact for fact in closure.nodes if fact in database), key=str)
    if len(pool) > cap:
        return None
    derivable = {}
    for size in range(len(pool) + 1):
        for subset in combinations(pool, size):
            chosen = frozenset(subset)
            derivable[chosen] = (
                target in evaluate(query.program, Database(chosen)).model
            )
    minimal = frozenset(
        chosen
        for chosen, ok in derivable.items()
        if ok
        and all(not derivable[chosen - {fact}] for fact in chosen)
    )
    smallest = min((len(chosen) for chosen, ok in derivable.items() if ok), default=None)
    return minimal, smallest


def assert_matches_brute_force(query, database, tup, session=None):
    """Both SAT-based extractors agree with exhaustive enumeration."""
    brute = brute_force_minimal(query, database, tup)
    if brute is None:
        pytest.skip("closure pool exceeds the brute-force cap")
    expected_minimal, expected_smallest = brute
    smallest = (
        session.smallest_member(tup)
        if session is not None
        else smallest_member(query, database, tup)
    )
    minimal = (
        session.minimal_members(tup)
        if session is not None
        else minimal_members(query, database, tup)
    )
    if expected_smallest is None:
        assert smallest is None
        assert minimal == []
        return
    assert len(smallest) == expected_smallest
    assert frozenset(smallest) in expected_minimal
    assert frozenset(frozenset(m) for m in minimal) == expected_minimal


class TestPinnedExamples:
    """Hand instances whose families are small enough to eyeball."""

    def test_diamond_has_two_minimal_members(self):
        query = DatalogQuery(
            parse_program(
                """
                tc(X, Y) :- e(X, Y).
                tc(X, Z) :- tc(X, Y), e(Y, Z).
                """
            ),
            "tc",
        )
        database = Database(
            parse_database("e(a, b). e(b, d). e(a, c). e(c, d). e(a, d).")
        )
        assert_matches_brute_force(query, database, ("a", "d"))

    def test_non_answer_tuple(self):
        query = DatalogQuery(parse_program("tc(X, Y) :- e(X, Y)."), "tc")
        database = Database(parse_database("e(a, b)."))
        assert_matches_brute_force(query, database, ("b", "a"))

    def test_wide_join_shared_subgoal(self):
        query = DatalogQuery(
            parse_program(
                """
                j(X, Z) :- r(X, Y), s(Y, Z).
                j(X, Z) :- r(X, Y), r(Y, Z).
                """
            ),
            "j",
        )
        database = Database(
            parse_database("r(a, b). r(b, c). s(b, c). r(a, c) .")
        )
        assert_matches_brute_force(query, database, ("a", "c"))


class TestSyntheticFamilies:
    """Every family, small sizes, a couple of sampled tuples each."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_agrees_with_subset_enumeration(self, family):
        instance = generate_instance(family, size=6, seed=2)
        session = ProvenanceSession(instance.query, instance.database.copy())
        answers = session.answers()
        checked = 0
        for tup in sample_from_answers(answers, count=3, seed=5):
            brute = brute_force_minimal(instance.query, instance.database, tup)
            if brute is None:
                continue
            assert_matches_brute_force(
                instance.query, instance.database, tup, session=session
            )
            checked += 1
        if answers and not checked:
            pytest.skip(f"{family}: every sampled closure exceeded the pool cap")

    @given(
        instance=synthetic_instances(
            size=st.integers(2, 7),
            seed=st.integers(0, 100),
            rounds=st.just(0),
        )
    )
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_random_instances_agree(self, instance):
        session = ProvenanceSession(instance.query, instance.database.copy())
        answers = session.answers()
        for tup in sample_from_answers(answers, count=1, seed=3):
            brute = brute_force_minimal(instance.query, instance.database, tup)
            if brute is None:
                continue
            assert_matches_brute_force(
                instance.query, instance.database, tup, session=session
            )
