"""Proof trees, proof DAGs, grounding structures, and oracle enumerators."""

from .enumerate import (
    EnumerationBudgetExceeded,
    enumerate_why,
    enumerate_why_minimal_depth,
    enumerate_why_nonrecursive,
    enumerate_why_unambiguous,
    why_families,
)
from .extract import (
    enumerate_witness_trees,
    extract_minimal_depth_tree,
    extract_tree_with_support,
)
from .grounding import (
    DownwardClosure,
    RuleInstance,
    FactNotDerivable,
    HyperEdge,
    build_rewriting,
    downward_closure,
    downward_closure_via_rewriting,
    min_dag_depth,
    rule_instance_graph,
)
from .proof_dag import (
    CompressedDAG,
    InvalidProofDAG,
    ProofDAG,
    compressed_dag_from_edges,
)
from .render import (
    circuit_to_dot,
    closure_to_dot,
    compressed_dag_to_dot,
    proof_dag_to_dot,
    proof_tree_to_dot,
    support_table,
)
from .proof_tree import (
    InvalidProofTree,
    ProofTree,
    ProofTreeNode,
    is_minimal_depth,
    min_tree_depth,
)

__all__ = [
    "CompressedDAG",
    "DownwardClosure",
    "EnumerationBudgetExceeded",
    "FactNotDerivable",
    "HyperEdge",
    "InvalidProofDAG",
    "InvalidProofTree",
    "ProofDAG",
    "ProofTree",
    "ProofTreeNode",
    "RuleInstance",
    "build_rewriting",
    "compressed_dag_from_edges",
    "downward_closure",
    "circuit_to_dot",
    "closure_to_dot",
    "compressed_dag_to_dot",
    "proof_dag_to_dot",
    "proof_tree_to_dot",
    "support_table",
    "downward_closure_via_rewriting",
    "enumerate_why",
    "enumerate_witness_trees",
    "extract_minimal_depth_tree",
    "extract_tree_with_support",
    "enumerate_why_minimal_depth",
    "enumerate_why_nonrecursive",
    "enumerate_why_unambiguous",
    "is_minimal_depth",
    "min_dag_depth",
    "min_tree_depth",
    "rule_instance_graph",
    "why_families",
]
