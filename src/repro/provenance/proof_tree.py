"""Proof trees (Definition 1) and their refined classes.

A proof tree of a fact ``alpha`` w.r.t. a database ``D`` and a program
``Sigma`` is a finite labeled rooted tree whose root is labeled ``alpha``,
whose leaves are labeled with database facts, and whose internal nodes are
justified by ground rule instances (Definition 1). On top of the plain
notion the paper studies three refinements:

* **non-recursive** proof trees — no fact labels two nodes on the same
  root-to-leaf path (Definition 18);
* **minimal-depth** proof trees — the depth equals the minimum over all
  proof trees of the fact (Definition 26);
* **unambiguous** proof trees — any two nodes with the same label have
  isomorphic subtrees (Definition 13).

The module provides an explicit tree representation with exact validation,
the tree statistics the upper-bound proofs rely on (depth, subtree count),
and canonical forms used to decide isomorphism of labeled rooted trees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import Program
from ..datalog.rules import GroundRule, Rule, check_variable_matching


class ProofTreeNode:
    """A node of a proof tree: a fact plus an ordered list of children.

    Internal nodes may carry the :class:`GroundRule` that justifies them;
    validation re-derives the justification when it is absent.
    """

    __slots__ = ("fact", "children", "ground_rule")

    def __init__(
        self,
        fact: Atom,
        children: Sequence["ProofTreeNode"] = (),
        ground_rule: Optional[GroundRule] = None,
    ):
        self.fact = fact
        self.children = list(children)
        self.ground_rule = ground_rule

    def is_leaf(self) -> bool:
        """Whether the node has no children (a database-fact leaf)."""
        return not self.children

    def __repr__(self) -> str:
        return f"ProofTreeNode({self.fact!r}, {len(self.children)} children)"


class ProofTree:
    """A proof tree with structural queries and validation.

    The class is deliberately *not* self-validating: construction is cheap
    and :meth:`validate` checks Definition 1 against a program and database
    explicitly, so tests can also build malformed trees and watch them fail.
    """

    def __init__(self, root: ProofTreeNode):
        self.root = root

    # -- construction helpers ---------------------------------------------

    @classmethod
    def leaf(cls, fact: Atom) -> "ProofTree":
        """A single-node tree for a database fact."""
        return cls(ProofTreeNode(fact))

    @classmethod
    def derive(
        cls,
        ground_rule: GroundRule,
        subtrees: Sequence["ProofTree"],
    ) -> "ProofTree":
        """Build a tree whose root fires *ground_rule* over *subtrees*.

        The i-th subtree must prove the i-th body fact of the ground rule.
        """
        if len(subtrees) != len(ground_rule.body):
            raise ValueError(
                f"rule body has {len(ground_rule.body)} atoms, got {len(subtrees)} subtrees"
            )
        for atom, subtree in zip(ground_rule.body, subtrees):
            if subtree.root.fact != atom:
                raise ValueError(
                    f"subtree proves {subtree.root.fact}, expected {atom}"
                )
        node = ProofTreeNode(
            ground_rule.head,
            [t.root for t in subtrees],
            ground_rule=ground_rule,
        )
        return cls(node)

    # -- traversal ----------------------------------------------------------

    def nodes(self) -> Iterable[ProofTreeNode]:
        """All nodes, in preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> Iterable[ProofTreeNode]:
        """All leaf nodes."""
        return (node for node in self.nodes() if node.is_leaf())

    def facts(self) -> Set[Atom]:
        """The set of facts labeling the tree."""
        return {node.fact for node in self.nodes()}

    def support(self) -> frozenset:
        """``support(T)``: the set of facts labeling the leaves (Section 3)."""
        return frozenset(node.fact for node in self.leaves())

    def size(self) -> int:
        """Number of nodes."""
        return sum(1 for _ in self.nodes())

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (a single node: 0)."""
        depth = 0
        stack: List[Tuple[ProofTreeNode, int]] = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            if node.is_leaf():
                depth = max(depth, d)
            for child in node.children:
                stack.append((child, d + 1))
        return depth

    # -- isomorphism / canonical forms ---------------------------------------

    def canonical(self) -> Tuple:
        """A canonical form deciding isomorphism of labeled rooted trees.

        Children are treated as an unordered multiset (the paper's
        isomorphism permutes children), so two trees are isomorphic iff
        their canonical forms are equal.
        """
        return _canonical(self.root)

    def is_isomorphic(self, other: "ProofTree") -> bool:
        """Tree isomorphism via canonical forms (order-insensitive)."""
        return self.canonical() == other.canonical()

    def scount(self) -> int:
        """The subtree count (Section 4.1).

        ``scount(T)`` is the maximal number of pairwise non-isomorphic
        subtrees of ``T`` rooted at nodes carrying the same fact.
        """
        variants: Dict[Atom, Set[Tuple]] = {}
        for node in self.nodes():
            variants.setdefault(node.fact, set()).add(_canonical(node))
        return max(len(forms) for forms in variants.values())

    # -- refined classes -------------------------------------------------------

    def is_non_recursive(self) -> bool:
        """No fact repeats along a root-to-leaf path (Definition 18)."""
        path: Set[Atom] = set()

        def walk(node: ProofTreeNode) -> bool:
            if node.fact in path:
                return False
            path.add(node.fact)
            ok = all(walk(child) for child in node.children)
            path.discard(node.fact)
            return ok

        return walk(self.root)

    def is_unambiguous(self) -> bool:
        """Equal labels imply isomorphic subtrees (Definition 13)."""
        canon: Dict[Atom, Tuple] = {}
        for node in self.nodes():
            form = _canonical(node)
            known = canon.get(node.fact)
            if known is None:
                canon[node.fact] = form
            elif known != form:
                return False
        return True

    # -- validation ---------------------------------------------------------

    def validate(self, program: Program, database: Database, expected_root: Optional[Atom] = None) -> None:
        """Check Definition 1; raise :class:`InvalidProofTree` on violation."""
        if expected_root is not None and self.root.fact != expected_root:
            raise InvalidProofTree(
                f"root is labeled {self.root.fact}, expected {expected_root}"
            )
        for node in self.nodes():
            if node.is_leaf():
                if node.fact not in database:
                    raise InvalidProofTree(
                        f"leaf {node.fact} is not a database fact"
                    )
                continue
            child_facts = tuple(child.fact for child in node.children)
            if node.ground_rule is not None:
                gr = node.ground_rule
                if gr.head != node.fact or gr.body != child_facts:
                    raise InvalidProofTree(
                        f"attached ground rule {gr} does not justify node {node.fact}"
                    )
                if not check_variable_matching(gr.rule, node.fact, child_facts):
                    raise InvalidProofTree(
                        f"ground rule {gr} is not an instance of {gr.rule}"
                    )
                continue
            if not _some_rule_matches(program, node.fact, child_facts):
                raise InvalidProofTree(
                    f"no rule of the program justifies {node.fact} from {child_facts}"
                )

    def is_valid(self, program: Program, database: Database, expected_root: Optional[Atom] = None) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(program, database, expected_root)
        except InvalidProofTree:
            return False
        return True

    # -- pretty printing ---------------------------------------------------

    def pretty(self) -> str:
        """An indented rendering, one node per line."""
        lines: List[str] = []

        def walk(node: ProofTreeNode, indent: int) -> None:
            lines.append("  " * indent + str(node.fact))
            for child in node.children:
                walk(child, indent + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ProofTree(root={self.root.fact}, size={self.size()})"


class InvalidProofTree(ValueError):
    """Raised when a tree violates Definition 1 (or a refinement)."""


def _canonical(node: ProofTreeNode) -> Tuple:
    """Canonical form: fact plus sorted canonical forms of the children."""
    if not node.children:
        return (node.fact,)
    child_forms = sorted(
        (_canonical(child) for child in node.children),
        key=repr,
    )
    return (node.fact, tuple(child_forms))


def _some_rule_matches(program: Program, head: Atom, body: Tuple[Atom, ...]) -> bool:
    for rule in program.rules_for(head.pred):
        if check_variable_matching(rule, head, body):
            return True
    return False


def is_minimal_depth(
    tree: ProofTree,
    program: Program,
    database: Database,
) -> bool:
    """Whether *tree* is a minimal-depth proof tree (Definition 26).

    Minimal tree depth equals minimal proof-DAG depth equals the stage
    ``rank`` of the immediate-consequence operator (Proposition 28 /
    Lemma 29), which the engine computes in polynomial time.
    """
    from ..datalog.engine import evaluate

    result = evaluate(program, database)
    root = tree.root.fact
    if root not in result.ranks:
        return False
    return tree.depth() == result.ranks[root]


def min_tree_depth(program: Program, database: Database, fact: Atom) -> int:
    """``min-tree-depth(alpha, D, Sigma)`` via the rank characterization."""
    from ..datalog.engine import evaluate

    result = evaluate(program, database)
    if fact not in result.ranks:
        raise ValueError(f"{fact} is not derivable from the database")
    return result.ranks[fact]
