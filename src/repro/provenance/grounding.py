"""The graph of rule instances and the downward closure (Definition 42).

The *graph of rule instances* ``gri(D, Sigma)`` is the hypergraph whose
nodes are the facts of the least model and whose hyperedges ``(alpha, T)``
record that ``alpha`` is the head of a ground rule with (deduplicated) body
``T``. The *downward closure* ``down(D, Sigma, alpha)`` keeps only the part
reachable from ``alpha``; it "contains" every compressed DAG of ``alpha``
(Lemma 43) and is the skeleton the SAT encoding searches inside.

Two constructions are provided:

* :func:`downward_closure` — direct: evaluate, enumerate ground instances,
  restrict to the part reachable from the target fact;
* :func:`downward_closure_via_rewriting` — the paper's route (App. D.3):
  build the modified query ``Q-down`` and database ``D-down`` with
  ``CurNode`` / ``HEdge`` predicates encoding atoms as fixed-width tuples,
  evaluate it with the ordinary engine, and decode the ``HEdge`` answers.
  Both constructions are tested to agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.engine import EvaluationResult, evaluate, ground_instances
from ..datalog.program import DatalogQuery, Program
from ..datalog.rules import GroundRule, Rule
from ..datalog.terms import Variable


@dataclass(frozen=True)
class HyperEdge:
    """A hyperedge ``(head, targets)`` of the graph of rule instances.

    Following Definition 42, the target set deduplicates the rule body.
    This *set* view is the right granularity for unambiguous proof trees
    (equal labels have equal subtrees, so multiplicities are irrelevant);
    code dealing with arbitrary proof trees must use
    :class:`RuleInstance`, which keeps the body as a multiset.
    """

    head: Atom
    targets: FrozenSet[Atom]

    def __iter__(self):
        yield self.head
        yield self.targets

    def __str__(self) -> str:
        inner = ", ".join(sorted(map(str, self.targets)))
        return f"{self.head} <- {{{inner}}}"


@dataclass(frozen=True)
class RuleInstance:
    """A ground rule firing with its body kept as an (ordered) multiset.

    Arbitrary proof trees may prove two occurrences of the same body fact
    by *different* subtrees (see Example 4), so provenance computations
    over arbitrary / non-recursive / minimal-depth trees must combine one
    support per body *occurrence*, not per distinct body fact.
    """

    head: Atom
    body: Tuple[Atom, ...]

    def multiset_key(self) -> Tuple[Atom, ...]:
        """The body as a canonically ordered multiset (for deduplication)."""
        return tuple(sorted(self.body, key=repr))

    def __str__(self) -> str:
        inner = ", ".join(map(str, self.body))
        return f"{self.head} :- {inner}."


@dataclass
class DownwardClosure:
    """``down(D, Sigma, alpha)``: nodes and hyperedges reachable from a fact.

    Attributes
    ----------
    root:
        The fact whose derivations the closure captures.
    nodes:
        All facts reachable from the root through hyperedges (the root
        included); every node is in the least model.
    hyperedges_by_head:
        ``fact -> tuple of hyperedges`` with that fact as head.
    database_nodes:
        The nodes that are facts of the input database — the candidate
        members of any support, called ``S`` in the blocking-clause
        construction of Section 5.2.
    """

    root: Atom
    nodes: FrozenSet[Atom]
    hyperedges_by_head: Dict[Atom, Tuple[HyperEdge, ...]]
    database_nodes: FrozenSet[Atom]
    instances_by_head: Dict[Atom, Tuple[RuleInstance, ...]] = field(default_factory=dict)

    def hyperedges(self) -> Iterable[HyperEdge]:
        """All hyperedges of the closure."""
        for edges in self.hyperedges_by_head.values():
            yield from edges

    def edge_count(self) -> int:
        """Total number of hyperedges of the closure."""
        return sum(len(edges) for edges in self.hyperedges_by_head.values())

    def intensional_nodes(self) -> Set[Atom]:
        """Nodes that are heads of at least one hyperedge."""
        return {head for head, edges in self.hyperedges_by_head.items() if edges}

    def potential_edges(self) -> Set[Tuple[Atom, Atom]]:
        """All ``(head, target)`` pairs extractable from hyperedges.

        These become the ``z`` edge variables of the SAT encoding.
        """
        pairs: Set[Tuple[Atom, Atom]] = set()
        for edge in self.hyperedges():
            for target in edge.targets:
                pairs.add((edge.head, target))
        return pairs


class FactNotDerivable(ValueError):
    """Raised when the target fact is not in the least model."""


def gri_maps_from_instances(
    ground_rules: Iterable[GroundRule],
) -> Tuple[Dict[Atom, List[HyperEdge]], Dict[Atom, List[RuleInstance]]]:
    """Both views of ``gri(D, Sigma)`` from an explicit instance stream.

    Accepts either the recorded trace of ``evaluate(...,
    record_instances=True)`` or the output of :func:`ground_instances`;
    the two are interchangeable (the engine records every instance the
    round after its last body fact appears). Cost is ``O(|gri| log |gri|)``
    — no body re-matching against the model.

    The per-head hyperedge and instance lists are returned in a
    *canonical* order (sorted by string key), and the deduplication of
    multiset-equal instances keeps a canonical representative, so the
    maps — and everything derived from them: closures, CNF variable
    numbering, member discovery order — depend only on the *set* of
    ground instances, never on the order the engine happened to fire
    them. This is what lets an incrementally maintained trace (see
    :mod:`repro.core.incremental`), whose instances arrive in update
    order rather than fixpoint-round order, reproduce a cold session
    bit for bit.
    """
    edges_by_key: Dict[Atom, Dict[FrozenSet[Atom], HyperEdge]] = {}
    instances_by_key: Dict[Atom, Dict[Tuple[Atom, ...], RuleInstance]] = {}
    for ground in ground_rules:
        targets = ground.body_set()
        head_edges = edges_by_key.setdefault(ground.head, {})
        if targets not in head_edges:
            head_edges[targets] = HyperEdge(ground.head, targets)
        instance = RuleInstance(ground.head, ground.body)
        head_instances = instances_by_key.setdefault(ground.head, {})
        key = instance.multiset_key()
        previous = head_instances.get(key)
        if previous is None or _instance_body_key(instance) < _instance_body_key(previous):
            head_instances[key] = instance
    edges = {
        head: sorted(head_edges.values(), key=str)
        for head, head_edges in edges_by_key.items()
    }
    instances = {
        head: sorted(head_instances.values(), key=_instance_body_key)
        for head, head_instances in instances_by_key.items()
    }
    return edges, instances


def _instance_body_key(instance: RuleInstance) -> Tuple[str, ...]:
    """Canonical sort key for a rule instance: its body atoms as strings."""
    return tuple(map(repr, instance.body))


def _gri_maps(
    program: Program,
    database: Database,
    evaluation: EvaluationResult,
) -> Tuple[Dict[Atom, List[HyperEdge]], Dict[Atom, List[RuleInstance]]]:
    """Both views of ``gri(D, Sigma)``: set hyperedges + multiset instances.

    Prefers the instrumented trace when the evaluation carries one
    (``O(|gri|)``); falls back to re-enumerating every ground instance
    over the model otherwise. The maps are cached on the evaluation
    object so that per-fact closures share one construction.
    """
    cached = getattr(evaluation, "_gri_maps_cache", None)
    if cached is not None:
        return cached
    if evaluation.instances is not None:
        maps = gri_maps_from_instances(evaluation.instances)
    else:
        maps = gri_maps_from_instances(ground_instances(program, evaluation.model))
    evaluation._gri_maps_cache = maps
    return maps


def rule_instance_graph(
    program: Program,
    database: Database,
    evaluation: Optional[EvaluationResult] = None,
) -> Dict[Atom, List[HyperEdge]]:
    """The full graph of rule instances ``gri(D, Sigma)`` (Definition 42).

    Returns the hyperedges grouped by head; the node set is the least model
    (facts of the database have no outgoing hyperedges unless re-derivable,
    which cannot happen since database predicates are extensional).
    """
    if evaluation is None:
        evaluation = evaluate(program, database, record_instances=True)
    edges, _ = _gri_maps(program, database, evaluation)
    return edges


def downward_closure(
    program: Program,
    database: Database,
    fact: Atom,
    evaluation: Optional[EvaluationResult] = None,
) -> DownwardClosure:
    """Compute ``down(D, Sigma, fact)`` demand-driven.

    Two construction strategies, picked automatically:

    * the evaluation carries an instrumented instance trace
      (``record_instances=True``) — build the full GRI maps once (cached
      on the evaluation, ``O(|gri|)``, no re-matching) and restrict to the
      part reachable from the target; amortizes perfectly when many facts
      share one evaluation, which is how
      :class:`~repro.core.session.ProvenanceSession` drives it;
    * no trace — ground rule instances top-down, only for facts already
      known to be reachable from the target; the closure is usually a
      small fragment of the model, so this avoids materializing the GRI.

    Raises :class:`FactNotDerivable` if the fact is not in the least model.
    """
    if evaluation is None:
        evaluation = evaluate(program, database)
    model = evaluation.model
    if fact not in model:
        raise FactNotDerivable(f"{fact} is not derivable; its closure is empty")

    if evaluation.instances is not None:
        edges, instances = _gri_maps(program, database, evaluation)
        return _restrict_to_reachable(fact, edges, database, instances)

    from ..datalog.unify import match_atom, match_body

    edges_by_head: Dict[Atom, List[HyperEdge]] = {}
    instances_by_head: Dict[Atom, List[RuleInstance]] = {}
    reachable: Set[Atom] = {fact}
    frontier: List[Atom] = [fact]
    while frontier:
        node = frontier.pop()
        edges: List[HyperEdge] = []
        instances: List[RuleInstance] = []
        seen_edges: Set[FrozenSet[Atom]] = set()
        seen_instances: Set[Tuple[Atom, ...]] = set()
        for rule in program.rules_for(node.pred):
            base = match_atom(rule.head, node)
            if base is None:
                continue
            for subst in match_body(rule.body, model, base):
                body = tuple(atom.ground(subst) for atom in rule.body)
                instance = RuleInstance(node, body)
                instance_key = instance.multiset_key()
                if instance_key not in seen_instances:
                    seen_instances.add(instance_key)
                    instances.append(instance)
                targets = frozenset(body)
                if targets not in seen_edges:
                    seen_edges.add(targets)
                    edges.append(HyperEdge(node, targets))
                for target in targets:
                    if target not in reachable:
                        reachable.add(target)
                        frontier.append(target)
        edges_by_head[node] = edges
        instances_by_head[node] = instances
    db_nodes = frozenset(node for node in reachable if node in database)
    return DownwardClosure(
        root=fact,
        nodes=frozenset(reachable),
        hyperedges_by_head={
            node: tuple(edges_by_head.get(node, ())) for node in reachable
        },
        database_nodes=db_nodes,
        instances_by_head={
            node: tuple(instances_by_head.get(node, ())) for node in reachable
        },
    )


def _restrict_to_reachable(
    fact: Atom,
    gri: Dict[Atom, List[HyperEdge]],
    database: Database,
    instances: Optional[Dict[Atom, List[RuleInstance]]] = None,
) -> DownwardClosure:
    reachable: Set[Atom] = {fact}
    frontier: List[Atom] = [fact]
    while frontier:
        node = frontier.pop()
        for edge in gri.get(node, ()):
            for target in edge.targets:
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
    by_head = {
        node: tuple(gri.get(node, ()))
        for node in reachable
    }
    db_nodes = frozenset(node for node in reachable if node in database)
    if instances is None:
        instance_map: Dict[Atom, Tuple[RuleInstance, ...]] = {}
    else:
        instance_map = {
            node: tuple(instances.get(node, ())) for node in reachable
        }
    return DownwardClosure(
        root=fact,
        nodes=frozenset(reachable),
        hyperedges_by_head=by_head,
        database_nodes=db_nodes,
        instances_by_head=instance_map,
    )


# ---------------------------------------------------------------------------
# The paper's rewriting-based construction (Appendix D.3)
# ---------------------------------------------------------------------------

_PAD = "#pad"          # the paper's star constant for padding
_CUR_NODE = "CurNode"  # current node predicate
_H_EDGE = "HEdge"      # hyperedge predicate


def _pred_marker(pred: str) -> str:
    """The constant ``c_P`` identifying predicate *P* in encoded tuples."""
    return f"#pred:{pred}"


def _encode_atom_terms(atom: Atom, width: int) -> Tuple:
    """``<alpha>``: (c_P, args..., pad...) of fixed length ``width + 1``."""
    padding = (_PAD,) * (width - atom.arity)
    return (_pred_marker(atom.pred), *atom.args, *padding)


def _decode_atom_terms(terms: Sequence, arities: Dict[str, int]) -> Atom:
    marker = terms[0]
    if not (isinstance(marker, str) and marker.startswith("#pred:")):
        raise ValueError(f"not an encoded atom: {terms!r}")
    pred = marker[len("#pred:"):]
    arity = arities[pred]
    return Atom(pred, tuple(terms[1 : 1 + arity]))


def build_rewriting(query: DatalogQuery, fact: Atom) -> Tuple[Program, List[Atom]]:
    """Build the modified query ``Q-down`` rules and the ``D-down`` extras.

    For each rule ``R0(x0) :- R1(x1), ..., Rn(xn)`` of the program, produce

    * ``HEdge(<R0(x0), R1(x1), ..., Rn(xn)>) :- CurNode(<R0(x0)>), body``
    * ``CurNode(<Ri(xi)>) :- CurNode(<R0(x0)>), body`` for each i,

    and seed the database with ``CurNode(<fact>)``. Evaluating the rewritten
    program with the plain engine yields the hyperedges of the downward
    closure as ``HEdge`` facts.
    """
    program = query.program
    width = program.max_arity()
    max_body = program.max_body_length()
    rules: List[Rule] = list(program.rules)
    for rule in program.rules:
        head_terms = _encode_atom_terms(rule.head, width)
        cur_atom = Atom(_CUR_NODE, head_terms)
        encoded_body: List = []
        for atom in rule.body:
            encoded_body.extend(_encode_atom_terms(atom, width))
        pad_slots = (max_body - len(rule.body)) * (width + 1)
        hedge_terms = (*head_terms, *encoded_body, *((_PAD,) * pad_slots))
        rules.append(Rule(Atom(_H_EDGE, hedge_terms), (cur_atom, *rule.body)))
        for atom in rule.body:
            rules.append(
                Rule(
                    Atom(_CUR_NODE, _encode_atom_terms(atom, width)),
                    (cur_atom, *rule.body),
                )
            )
    seed = Atom(_CUR_NODE, _encode_atom_terms(fact, width))
    return Program(rules), [seed]


def downward_closure_via_rewriting(
    query: DatalogQuery,
    database: Database,
    fact: Atom,
) -> DownwardClosure:
    """Compute the downward closure through the App. D.3 rewriting.

    Slower than :func:`downward_closure` (the encoded tuples are wide), but
    faithful to the paper's pipeline where a stock Datalog engine computes
    the closure; used for differential testing.
    """
    program = query.program
    rewritten, extra = build_rewriting(query, fact)
    extended = database.copy()
    for atom in extra:
        extended.add(atom)
    result = evaluate(rewritten, extended)
    if fact not in result.model:
        raise FactNotDerivable(f"{fact} is not derivable; its closure is empty")
    arities = program.arities()
    width = program.max_arity()
    by_head: Dict[Atom, List[HyperEdge]] = {}
    seen: Set[Tuple[Atom, FrozenSet[Atom]]] = set()
    for hedge in result.model.relation(_H_EDGE):
        terms = hedge.args
        head = _decode_atom_terms(terms[: width + 1], arities)
        targets: Set[Atom] = set()
        offset = width + 1
        while offset < len(terms) and terms[offset] != _PAD:
            targets.add(_decode_atom_terms(terms[offset : offset + width + 1], arities))
            offset += width + 1
        key = (head, frozenset(targets))
        if key in seen:
            continue
        seen.add(key)
        by_head.setdefault(head, []).append(HyperEdge(head, frozenset(targets)))
    # Assemble nodes from heads and targets, then re-restrict from the root
    # (CurNode seeding already restricts, but dedupe keeps this cheap).
    return _restrict_to_reachable(fact, by_head, database)


def min_dag_depth(
    program: Program,
    database: Database,
    fact: Atom,
    evaluation: Optional[EvaluationResult] = None,
) -> int:
    """``min-dag-depth(alpha, D, Sigma)`` via ranks (Proposition 28)."""
    if evaluation is None:
        evaluation = evaluate(program, database)
    if fact not in evaluation.ranks:
        raise FactNotDerivable(f"{fact} is not derivable from the database")
    return evaluation.ranks[fact]
