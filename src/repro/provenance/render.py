"""Rendering proof objects for human consumption.

The paper's figures draw proof trees and proof DAGs; explanation tooling
needs the same ability.  This module renders every proof object of the
library — proof trees, proof DAGs, compressed DAGs, downward closures and
provenance circuits — in Graphviz DOT (for ``dot -Tsvg``) and, for proof
trees, as indented ASCII (already available via ``ProofTree.pretty``).

The emitted DOT follows the paper's visual conventions: database facts
are boxes, intensional facts are ellipses, hyperedges of the downward
closure appear as small junction points connecting a head to its targets
(one junction per rule instance), and circuit gates are labelled with
their operation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..datalog.atoms import Atom
from ..datalog.database import Database
from .grounding import DownwardClosure
from .proof_dag import CompressedDAG, ProofDAG
from .proof_tree import ProofTree, ProofTreeNode


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _fact_attrs(fact: Atom, database: Optional[Database]) -> str:
    label = _quote(str(fact))
    if database is not None and fact in database:
        return f"[label={label}, shape=box]"
    return f"[label={label}, shape=ellipse]"


def proof_tree_to_dot(
    tree: ProofTree,
    database: Optional[Database] = None,
    name: str = "proof_tree",
) -> str:
    """Render a proof tree as a DOT digraph (edges parent -> child)."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    counter = [0]

    def emit(node: ProofTreeNode) -> str:
        identifier = f"n{counter[0]}"
        counter[0] += 1
        lines.append(f"  {identifier} {_fact_attrs(node.fact, database)};")
        for child in node.children:
            child_id = emit(child)
            lines.append(f"  {identifier} -> {child_id};")
        return identifier

    emit(tree.root)
    lines.append("}")
    return "\n".join(lines) + "\n"


def proof_dag_to_dot(
    dag: ProofDAG,
    database: Optional[Database] = None,
    name: str = "proof_dag",
) -> str:
    """Render a proof DAG as a DOT digraph (node ids preserved)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in dag.nodes():
        lines.append(f"  n{node} {_fact_attrs(dag.labels[node], database)};")
    for source in sorted(dag.nodes()):
        for target in dag.children[source]:
            lines.append(f"  n{source} -> n{target};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def compressed_dag_to_dot(
    dag: CompressedDAG,
    database: Optional[Database] = None,
    name: str = "compressed_dag",
) -> str:
    """Render a compressed DAG; one node per fact (Definition 40)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    index: Dict[Atom, str] = {}
    for position, fact in enumerate(sorted(dag.nodes(), key=str)):
        identifier = f"n{position}"
        index[fact] = identifier
        lines.append(f"  {identifier} {_fact_attrs(fact, database)};")
    for head, targets in sorted(dag.choice.items(), key=lambda kv: str(kv[0])):
        for target in sorted(targets, key=str):
            lines.append(f"  {index[head]} -> {index[target]};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def closure_to_dot(
    closure: DownwardClosure,
    database: Optional[Database] = None,
    name: str = "downward_closure",
) -> str:
    """Render a downward closure with junction points per hyperedge.

    Every hyperedge ``(head, {targets})`` becomes a small point node with
    an edge from the head and edges to each target — the standard way to
    draw a directed hypergraph, making alternative derivations visually
    distinct.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    index: Dict[Atom, str] = {}
    for position, fact in enumerate(sorted(closure.nodes, key=str)):
        identifier = f"n{position}"
        index[fact] = identifier
        lines.append(f"  {identifier} {_fact_attrs(fact, database)};")
    junction = 0
    for head in sorted(closure.hyperedges_by_head, key=str):
        for edge in closure.hyperedges_by_head[head]:
            joint = f"e{junction}"
            junction += 1
            lines.append(f"  {joint} [shape=point, width=0.08];")
            lines.append(f"  {index[edge.head]} -> {joint} [arrowhead=none];")
            for target in sorted(edge.targets, key=str):
                lines.append(f"  {joint} -> {index[target]};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def circuit_to_dot(circuit, name: str = "circuit") -> str:
    """Render a provenance circuit (``repro.semiring.circuits.Circuit``)."""
    from ..semiring.circuits import INPUT, PLUS

    lines = [f"digraph {name} {{", "  rankdir=BT;"]
    for position, gate in enumerate(circuit.gates):
        if gate.kind == INPUT:
            label = _quote(str(gate.fact))
            lines.append(f"  g{position} [label={label}, shape=box];")
        else:
            symbol = "+" if gate.kind == PLUS else "×"
            lines.append(f'  g{position} [label="{symbol}", shape=circle];')
        for child in gate.children:
            lines.append(f"  g{child} -> g{position};")
    lines.append(f"  g{circuit.output} [penwidth=2];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def support_table(members: Iterable[frozenset]) -> str:
    """A plain-text table of why-provenance members, smallest first."""
    ordered = sorted(members, key=lambda m: (len(m), sorted(map(str, m))))
    lines = []
    for position, member in enumerate(ordered):
        facts = ", ".join(sorted(map(str, member)))
        lines.append(f"{position:>3}  ({len(member):>2} facts)  {{{facts}}}")
    return "\n".join(lines)
