"""Materializing witness proof trees.

The decision problems only ask *whether* a subset is a member; users
debugging a query usually want to *see* a derivation. This module extracts
concrete proof trees from a database:

* :func:`extract_minimal_depth_tree` — the canonical "shallowest"
  derivation, built greedily along the rank stratification (Prop. 28);
* :func:`extract_tree_with_support` — a witness tree for a given member of
  the why-provenance (via the SAT pipeline for unambiguous trees);
* :func:`enumerate_witness_trees` — stream distinct unambiguous proof
  trees, one per member of ``whyUN``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.engine import EvaluationResult, evaluate
from ..datalog.program import DatalogQuery, Program
from .grounding import DownwardClosure, FactNotDerivable, downward_closure
from .proof_dag import CompressedDAG
from .proof_tree import ProofTree, ProofTreeNode


def extract_minimal_depth_tree(
    program: Program,
    database: Database,
    fact: Atom,
    evaluation: Optional[EvaluationResult] = None,
) -> ProofTree:
    """A minimal-depth proof tree of *fact* (Definition 26).

    Built top-down: every node of rank ``r`` is expanded with a rule
    instance whose body facts all have rank below ``r`` (one exists by the
    definition of the immediate-consequence stage), so the tree depth is
    exactly ``rank(fact)`` — the minimum (Proposition 28). The result is
    also unambiguous: each fact is always expanded the same way.
    """
    if evaluation is None:
        evaluation = evaluate(program, database)
    ranks = evaluation.ranks
    if fact not in ranks:
        raise FactNotDerivable(f"{fact} is not derivable from the database")
    closure = downward_closure(program, database, fact, evaluation=evaluation)
    chosen = {}

    def expand(node_fact: Atom) -> ProofTreeNode:
        if node_fact in database:
            return ProofTreeNode(node_fact)
        instance = chosen.get(node_fact)
        if instance is None:
            instance = min(
                (
                    inst
                    for inst in closure.instances_by_head.get(node_fact, ())
                    if all(ranks.get(b, 10 ** 9) < ranks[node_fact] for b in inst.body)
                ),
                key=lambda inst: (max((ranks[b] for b in inst.body), default=0), str(inst)),
            )
            chosen[node_fact] = instance
        children = [expand(body_fact) for body_fact in instance.body]
        return ProofTreeNode(node_fact, children)

    return ProofTree(expand(fact))


def extract_tree_with_support(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    support,
) -> Optional[ProofTree]:
    """An unambiguous proof tree of ``R(t)`` with exactly *support*.

    Returns ``None`` when *support* is not a member of ``whyUN``. The tree
    is obtained by solving ``phi(t, D, Q)`` under exact-support
    assumptions and unravelling the model's compressed DAG.
    """
    from ..core.encoder import encode_why_provenance
    from ..sat.solver import CDCLSolver

    try:
        encoding = encode_why_provenance(query, database, tup)
    except FactNotDerivable:
        return None
    assumptions = encoding.membership_assumptions(frozenset(support))
    if assumptions is None:
        return None
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    if not solver.solve(assumptions=assumptions):
        return None
    dag = encoding.decode_compressed_dag(solver.model())
    return dag.unravel(query.program)


def enumerate_witness_trees(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    limit: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
) -> Iterator[ProofTree]:
    """Stream one unambiguous proof tree per member of ``whyUN(t, D, Q)``."""
    from ..core.enumerator import WhyProvenanceEnumerator

    try:
        enumerator = WhyProvenanceEnumerator(query, database, tup)
    except FactNotDerivable:
        return
    for record in enumerator.enumerate(limit=limit, timeout_seconds=timeout_seconds):
        tree = extract_tree_with_support(query, database, tup, record.support)
        if tree is not None:
            yield tree
