"""Brute-force why-provenance oracles.

These enumerators compute the exact why-provenance families of Section 3 /
Sections 4.3, 5 and Appendices B, C by exhaustive search over the downward
closure. They are exponential in the worst case (the problems are
NP-complete, Theorems 3, 14, 19, 27) and exist to serve as ground truth for
the SAT-based pipeline and the FO rewriting on small inputs, and as the
arbitrary-proof-tree decision fallback.

All functions return a ``frozenset`` of ``frozenset`` of facts.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.engine import evaluate
from ..datalog.program import DatalogQuery, Program
from .grounding import (
    DownwardClosure,
    FactNotDerivable,
    downward_closure,
    min_dag_depth,
)
from .proof_dag import CompressedDAG

SupportFamily = FrozenSet[FrozenSet[Atom]]


class EnumerationBudgetExceeded(RuntimeError):
    """Raised when an oracle would exceed its configured work budget."""


def _closure_or_empty(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
) -> Optional[DownwardClosure]:
    fact = query.answer_atom(tup)
    try:
        return downward_closure(query.program, database, fact)
    except FactNotDerivable:
        return None


def enumerate_why(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    max_supports_per_fact: int = 100_000,
) -> SupportFamily:
    """``why(t, D, Q)``: supports of *arbitrary* proof trees (Definition 2).

    Computed as the least fixpoint of the "sets of supports" operator over
    the downward closure: a database fact supports itself, and a derived
    fact's supports are all unions of one support per hyperedge target.
    Cycles in the closure (facts deriving themselves through other facts)
    are handled by iterating to a fixpoint, exactly mirroring how arbitrary
    proof trees may rederive facts.
    """
    closure = _closure_or_empty(query, database, tup)
    if closure is None:
        return frozenset()
    supports: Dict[Atom, Set[FrozenSet[Atom]]] = {}
    for fact in closure.nodes:
        supports[fact] = {frozenset((fact,))} if fact in database else set()
    changed = True
    while changed:
        changed = False
        for head, instances in closure.instances_by_head.items():
            for instance in instances:
                # One support per body *occurrence* (multiset semantics):
                # repeated body facts may be proven by different subtrees.
                occurrence_families = [supports[t] for t in instance.body]
                if any(not family for family in occurrence_families):
                    continue
                for combo in itertools.product(*occurrence_families):
                    union = frozenset().union(*combo)
                    if union not in supports[head]:
                        supports[head].add(union)
                        changed = True
                        if len(supports[head]) > max_supports_per_fact:
                            raise EnumerationBudgetExceeded(
                                f"more than {max_supports_per_fact} supports for {head}"
                            )
    return frozenset(supports[closure.root])


def enumerate_why_unambiguous(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    max_dags: int = 1_000_000,
) -> SupportFamily:
    """``whyUN(t, D, Q)``: supports of unambiguous proof trees (Def. 13).

    By Proposition 41 these are exactly the supports of compressed DAGs, so
    the oracle enumerates compressed DAGs: starting from the root it assigns
    to every reachable intensional fact one of its hyperedges (backtracking
    over all combinations), then keeps the acyclic assignments.
    """
    closure = _closure_or_empty(query, database, tup)
    if closure is None:
        return frozenset()
    root = closure.root
    results: Set[FrozenSet[Atom]] = set()
    edges_of = closure.hyperedges_by_head
    explored = [0]

    def expand(choice: Dict[Atom, FrozenSet[Atom]], pending: List[Atom]) -> None:
        explored[0] += 1
        if explored[0] > max_dags:
            raise EnumerationBudgetExceeded(f"more than {max_dags} partial DAGs explored")
        while pending:
            fact = pending[-1]
            if fact in choice or fact in database:
                pending.pop()
                continue
            break
        else:
            dag = CompressedDAG(root, choice)
            if dag.is_acyclic():
                results.add(dag.support())
            return
        fact = pending.pop()
        options = edges_of.get(fact, ())
        if not options:
            # Intensional fact with no hyperedge cannot be proven: dead end.
            pending.append(fact)
            return
        for edge in options:
            choice[fact] = edge.targets
            new_targets = [
                t for t in edge.targets if t not in choice and t not in database
            ]
            expand(choice, pending + new_targets)
            del choice[fact]
        pending.append(fact)

    if root in database:
        # Root is extensional: its only proof tree is a single leaf — but the
        # paper's queries have intensional roots, so this is a degenerate case.
        return frozenset({frozenset((root,))})
    expand({}, [root])
    return frozenset(results)


def enumerate_why_nonrecursive(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    max_supports: int = 1_000_000,
) -> SupportFamily:
    """``whyNR(t, D, Q)``: supports of non-recursive proof trees (Def. 18).

    Recursive descent over the downward closure with the set of facts on
    the current path excluded from reuse, so that no root-to-leaf path
    carries a repeated fact.
    """
    closure = _closure_or_empty(query, database, tup)
    if closure is None:
        return frozenset()
    instances_of = closure.instances_by_head
    cache: Dict[Tuple[Atom, FrozenSet[Atom]], FrozenSet[FrozenSet[Atom]]] = {}
    counter = [0]

    def supports(fact: Atom, ancestors: FrozenSet[Atom]) -> FrozenSet[FrozenSet[Atom]]:
        if fact in database:
            return frozenset({frozenset((fact,))})
        key = (fact, ancestors)
        if key in cache:
            return cache[key]
        out: Set[FrozenSet[Atom]] = set()
        below = ancestors | {fact}
        for instance in instances_of.get(fact, ()):
            if any(t in below for t in instance.body):
                continue
            occurrence_families = [supports(t, below) for t in instance.body]
            if any(not family for family in occurrence_families):
                continue
            for combo in itertools.product(*occurrence_families):
                out.add(frozenset().union(*combo))
                counter[0] += 1
                if counter[0] > max_supports:
                    raise EnumerationBudgetExceeded(
                        f"more than {max_supports} support combinations explored"
                    )
        result = frozenset(out)
        cache[key] = result
        return result

    return supports(closure.root, frozenset())


def enumerate_why_minimal_depth(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    max_supports: int = 1_000_000,
) -> SupportFamily:
    """``whyMD(t, D, Q)``: supports of minimal-depth proof trees (Def. 26).

    A proof tree of ``alpha`` has depth at least ``rank(alpha)`` (Prop. 28),
    so trees with depth budget ``rank(root)`` are exactly the minimal-depth
    trees; supports are collected by depth-bounded recursion (no cycles can
    occur because the budget strictly decreases).
    """
    closure = _closure_or_empty(query, database, tup)
    if closure is None:
        return frozenset()
    evaluation = evaluate(query.program, database)
    budget = evaluation.ranks[closure.root]
    instances_of = closure.instances_by_head
    cache: Dict[Tuple[Atom, int], FrozenSet[FrozenSet[Atom]]] = {}
    counter = [0]

    def supports(fact: Atom, depth_budget: int) -> FrozenSet[FrozenSet[Atom]]:
        key = (fact, depth_budget)
        if key in cache:
            return cache[key]
        out: Set[FrozenSet[Atom]] = set()
        if fact in database:
            out.add(frozenset((fact,)))
        if depth_budget >= 1:
            for instance in instances_of.get(fact, ()):
                occurrence_families = [
                    supports(t, depth_budget - 1) for t in instance.body
                ]
                if any(not family for family in occurrence_families):
                    continue
                for combo in itertools.product(*occurrence_families):
                    out.add(frozenset().union(*combo))
                    counter[0] += 1
                    if counter[0] > max_supports:
                        raise EnumerationBudgetExceeded(
                            f"more than {max_supports} support combinations explored"
                        )
        result = frozenset(out)
        cache[key] = result
        return result

    return supports(closure.root, budget)


def why_families(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
) -> Dict[str, SupportFamily]:
    """All four families at once (testing convenience)."""
    return {
        "why": enumerate_why(query, database, tup),
        "whyUN": enumerate_why_unambiguous(query, database, tup),
        "whyNR": enumerate_why_nonrecursive(query, database, tup),
        "whyMD": enumerate_why_minimal_depth(query, database, tup),
    }
