"""Proof DAGs (Definition 4) and compressed DAGs (Definition 40).

A proof DAG compactly represents a proof tree by sharing subderivations
(Proposition 5). A *compressed DAG* is the extreme case where every fact
labels at most one node; compressed DAGs characterize unambiguous proof
trees (Proposition 41) and are exactly what the SAT encoding's models
describe.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import Program
from ..datalog.rules import GroundRule, check_variable_matching
from .grounding import HyperEdge
from .proof_tree import InvalidProofTree, ProofTree, ProofTreeNode


class InvalidProofDAG(ValueError):
    """Raised when a structure violates Definition 4 / Definition 40."""


class ProofDAG:
    """A labeled rooted DAG with explicit node identities (Definition 4).

    Nodes are opaque integers; ``labels[v]`` is the fact of node ``v`` and
    ``children[v]`` the ordered targets of its outgoing edges (order carries
    the rule-body positions, which eases validation).
    """

    def __init__(
        self,
        labels: Mapping[int, Atom],
        children: Mapping[int, Sequence[int]],
        root: int,
    ):
        self.labels: Dict[int, Atom] = dict(labels)
        self.children: Dict[int, Tuple[int, ...]] = {
            v: tuple(children.get(v, ())) for v in self.labels
        }
        self.root = root
        if root not in self.labels:
            raise InvalidProofDAG(f"root node {root} has no label")

    # -- structure ---------------------------------------------------------

    def nodes(self) -> Iterable[int]:
        """All node identifiers of the DAG."""
        return self.labels.keys()

    def node_count(self) -> int:
        """Number of nodes (the size measure of Section 3)."""
        return len(self.labels)

    def leaves(self) -> Iterable[int]:
        """Nodes without children (their labels form the support)."""
        return (v for v in self.labels if not self.children[v])

    def support(self) -> FrozenSet[Atom]:
        """``support(G)``: facts labeling the leaf nodes."""
        return frozenset(self.labels[v] for v in self.leaves())

    def parents(self) -> Dict[int, List[int]]:
        """``node -> incoming-edge sources`` (inverse of ``children``)."""
        incoming: Dict[int, List[int]] = {v: [] for v in self.labels}
        for v, targets in self.children.items():
            for u in targets:
                incoming[u].append(v)
        return incoming

    def is_acyclic(self) -> bool:
        """Whether the child relation admits a topological order."""
        return self._topological_order() is not None

    def _topological_order(self) -> Optional[List[int]]:
        indegree = {v: 0 for v in self.labels}
        for targets in self.children.values():
            for u in targets:
                indegree[u] += 1
        frontier = [v for v, d in indegree.items() if d == 0]
        order: List[int] = []
        while frontier:
            v = frontier.pop()
            order.append(v)
            for u in self.children[v]:
                indegree[u] -= 1
                if indegree[u] == 0:
                    frontier.append(u)
        if len(order) != len(self.labels):
            return None
        return order

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (requires acyclicity)."""
        order = self._topological_order()
        if order is None:
            raise InvalidProofDAG("depth undefined: the graph has a cycle")
        longest: Dict[int, int] = {}
        for v in reversed(order):
            kids = self.children[v]
            longest[v] = 0 if not kids else 1 + max(longest[u] for u in kids)
        return longest[self.root]

    # -- validation ---------------------------------------------------------

    def validate(self, program: Program, database: Database, expected_root: Optional[Atom] = None) -> None:
        """Check Definition 4; raise :class:`InvalidProofDAG` on violation."""
        if expected_root is not None and self.labels[self.root] != expected_root:
            raise InvalidProofDAG(
                f"root labeled {self.labels[self.root]}, expected {expected_root}"
            )
        if not self.is_acyclic():
            raise InvalidProofDAG("the graph has a cycle")
        incoming = self.parents()
        rootless = [v for v, ps in incoming.items() if not ps]
        if rootless != [self.root] and set(rootless) != {self.root}:
            raise InvalidProofDAG(
                f"expected a unique root {self.root}, nodes without parents: {rootless}"
            )
        for v, targets in self.children.items():
            if not targets:
                if self.labels[v] not in database:
                    raise InvalidProofDAG(f"leaf {self.labels[v]} is not a database fact")
                continue
            child_facts = tuple(self.labels[u] for u in targets)
            if not _justified(program, self.labels[v], child_facts):
                raise InvalidProofDAG(
                    f"no rule justifies {self.labels[v]} from {child_facts}"
                )

    def is_valid(self, program: Program, database: Database, expected_root: Optional[Atom] = None) -> bool:
        """Boolean form of :meth:`validate` (no exception)."""
        try:
            self.validate(program, database, expected_root)
        except InvalidProofDAG:
            return False
        return True

    def is_non_recursive(self) -> bool:
        """No path visits two nodes with the same label (Definition 20)."""
        path_labels: List[Atom] = []
        seen_on_path: Set[Atom] = set()

        ok = True

        def walk(v: int) -> bool:
            nonlocal ok
            label = self.labels[v]
            if label in seen_on_path:
                return False
            seen_on_path.add(label)
            path_labels.append(label)
            result = all(walk(u) for u in self.children[v])
            path_labels.pop()
            seen_on_path.discard(label)
            return result

        return walk(self.root)

    def is_unambiguous(self) -> bool:
        """Equal labels imply isomorphic subDAGs (Definition 38).

        Checked on the unravelled canonical forms, which is exact: subDAGs
        are isomorphic iff their unravellings are.
        """
        forms: Dict[int, Tuple] = {}

        def canonical(v: int) -> Tuple:
            if v in forms:
                return forms[v]
            kids = tuple(sorted((canonical(u) for u in self.children[v]), key=repr))
            form = (self.labels[v], kids) if kids else (self.labels[v],)
            forms[v] = form
            return form

        by_label: Dict[Atom, Set[Tuple]] = {}
        for v in self.labels:
            by_label.setdefault(self.labels[v], set()).add(canonical(v))
        return all(len(s) == 1 for s in by_label.values())

    # -- unravelling ---------------------------------------------------------

    def unravel(self, max_nodes: Optional[int] = None) -> ProofTree:
        """Unravel into a proof tree with the same support (Prop. 5, (2)=>(1)).

        Each node's subDAG is copied once per incoming edge; acyclicity
        bounds the construction. The optional *max_nodes* guards against
        exponentially large unravellings.
        """
        if not self.is_acyclic():
            raise InvalidProofDAG("cannot unravel a cyclic graph")
        counter = [0]

        def build(v: int) -> ProofTreeNode:
            counter[0] += 1
            if max_nodes is not None and counter[0] > max_nodes:
                raise InvalidProofDAG(
                    f"unravelling exceeds {max_nodes} nodes"
                )
            return ProofTreeNode(
                self.labels[v],
                [build(u) for u in self.children[v]],
            )

        return ProofTree(build(self.root))

    def __repr__(self) -> str:
        return f"ProofDAG({self.node_count()} nodes, root={self.labels[self.root]})"


def _justified(program: Program, head: Atom, child_facts: Tuple[Atom, ...]) -> bool:
    for rule in program.rules_for(head.pred):
        if check_variable_matching(rule, head, child_facts):
            return True
    return False


class CompressedDAG:
    """A compressed DAG (Definition 40): at most one node per fact.

    Represented as ``choice: fact -> frozenset of child facts`` for the
    internal nodes; facts not in ``choice`` are leaves. Condition (3) of the
    definition uses *set* semantics: the children set must equal the
    deduplicated body of some ground rule instance.
    """

    def __init__(self, root: Atom, choice: Mapping[Atom, FrozenSet[Atom]]):
        self.root = root
        self.choice: Dict[Atom, FrozenSet[Atom]] = {
            fact: frozenset(targets) for fact, targets in choice.items()
        }

    # -- structure ----------------------------------------------------------

    def nodes(self) -> Set[Atom]:
        """All facts reachable from the root (the node set)."""
        reachable: Set[Atom] = {self.root}
        frontier = [self.root]
        while frontier:
            fact = frontier.pop()
            for target in self.choice.get(fact, ()):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return reachable

    def support(self) -> FrozenSet[Atom]:
        """Leaves: reachable facts without an outgoing hyperedge."""
        return frozenset(f for f in self.nodes() if f not in self.choice or not self.choice[f])

    def is_acyclic(self) -> bool:
        """Whether the choice function induces an acyclic sub-DAG."""
        color: Dict[Atom, int] = {}

        def visit(fact: Atom) -> bool:
            state = color.get(fact, 0)
            if state == 1:
                return False
            if state == 2:
                return True
            color[fact] = 1
            for target in self.choice.get(fact, ()):
                if not visit(target):
                    return False
            color[fact] = 2
            return True

        return visit(self.root)

    # -- validation -----------------------------------------------------------

    def validate(self, program: Program, database: Database, expected_root: Optional[Atom] = None) -> None:
        """Check Definition 40 on the reachable part."""
        if expected_root is not None and self.root != expected_root:
            raise InvalidProofDAG(f"root is {self.root}, expected {expected_root}")
        if not self.is_acyclic():
            raise InvalidProofDAG("the compressed DAG has a cycle")
        for fact in self.nodes():
            targets = self.choice.get(fact)
            if not targets:
                if fact not in database:
                    raise InvalidProofDAG(f"leaf {fact} is not a database fact")
                continue
            if not _justified_set(program, fact, targets):
                raise InvalidProofDAG(
                    f"no ground rule justifies {fact} from the set {set(map(str, targets))}"
                )

    def is_valid(self, program: Program, database: Database, expected_root: Optional[Atom] = None) -> bool:
        """Boolean form of :meth:`validate` (no exception)."""
        try:
            self.validate(program, database, expected_root)
        except InvalidProofDAG:
            return False
        return True

    # -- unravelling -----------------------------------------------------------

    def trigger(self, program: Program, fact: Atom) -> GroundRule:
        """A ground rule witnessing the hyperedge chosen at *fact*.

        Part of the (2)=>(1) direction of Proposition 41: the unravelling
        expands every occurrence of *fact* with the same trigger, producing
        an unambiguous proof tree.
        """
        targets = self.choice[fact]
        instance = _find_ground_rule(program, fact, targets)
        if instance is None:
            raise InvalidProofDAG(
                f"no ground rule justifies {fact} from the set {set(map(str, targets))}"
            )
        return instance

    def unravel(self, program: Program, max_nodes: int = 1_000_000) -> ProofTree:
        """Unravel into an unambiguous proof tree (Proposition 41)."""
        if not self.is_acyclic():
            raise InvalidProofDAG("cannot unravel a cyclic compressed DAG")
        triggers: Dict[Atom, GroundRule] = {}
        counter = [0]

        def build(fact: Atom) -> ProofTreeNode:
            counter[0] += 1
            if counter[0] > max_nodes:
                raise InvalidProofDAG(f"unravelling exceeds {max_nodes} nodes")
            if fact not in self.choice or not self.choice[fact]:
                return ProofTreeNode(fact)
            instance = triggers.get(fact)
            if instance is None:
                instance = self.trigger(program, fact)
                triggers[fact] = instance
            children = [build(body_fact) for body_fact in instance.body]
            return ProofTreeNode(fact, children, ground_rule=instance)

        return ProofTree(build(self.root))

    def to_proof_dag(self, program: Program) -> ProofDAG:
        """View as a :class:`ProofDAG` with node identities (multiset bodies).

        Body atoms occurring several times in the trigger rule become
        repeated edges to the same node, matching Definition 4's edge list.
        """
        facts = sorted(self.nodes(), key=str)
        ids = {fact: i for i, fact in enumerate(facts)}
        labels = {i: fact for fact, i in ids.items()}
        children: Dict[int, List[int]] = {i: [] for i in labels}
        for fact in facts:
            if fact in self.choice and self.choice[fact]:
                instance = self.trigger(program, fact)
                children[ids[fact]] = [ids[b] for b in instance.body]
        return ProofDAG(labels, children, ids[self.root])

    def __repr__(self) -> str:
        return f"CompressedDAG(root={self.root}, {len(self.choice)} internal facts)"


def _justified_set(program: Program, head: Atom, targets: FrozenSet[Atom]) -> bool:
    return _find_ground_rule(program, head, targets) is not None


def _find_ground_rule(
    program: Program,
    head: Atom,
    targets: FrozenSet[Atom],
) -> Optional[GroundRule]:
    """Search a ground rule with the given head whose body set is *targets*.

    The body facts all come from *targets*, so matching only explores
    assignments of target facts to body atoms.
    """
    store = Database(targets)
    from ..datalog.unify import match_atom, match_body

    for rule in program.rules_for(head.pred):
        base = match_atom(rule.head, head)
        if base is None:
            continue
        for subst in match_body(rule.body, store, base):
            body = tuple(atom.ground(subst) for atom in rule.body)
            if frozenset(body) == targets:
                return GroundRule(rule, head, body)
    return None


def compressed_dag_from_edges(
    root: Atom,
    edges: Iterable[HyperEdge],
) -> CompressedDAG:
    """Assemble a compressed DAG from chosen hyperedges (one per head)."""
    choice: Dict[Atom, FrozenSet[Atom]] = {}
    for edge in edges:
        if edge.head in choice:
            raise InvalidProofDAG(
                f"two hyperedges chosen for {edge.head}: a compressed DAG has one node per fact"
            )
        choice[edge.head] = edge.targets
    return CompressedDAG(root, choice)
