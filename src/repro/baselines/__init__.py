"""Baseline why-provenance computations used for comparison benchmarks.

Three families of comparators:

* :mod:`~repro.baselines.all_at_once` — materialize the whole
  why-provenance in one shot (the existential-rules style of Elhalawati
  et al., the Figure 5 comparator);
* :mod:`~repro.baselines.souffle_style` — one minimal-height witness per
  fact (Zhao/Subotic/Scholz's scalable under-approximation);
* :mod:`~repro.baselines.top_down` — QSQR-style tabled goal-directed
  evaluation, an independent oracle for query answering.

All baselines deliberately bypass the caches of
:class:`~repro.core.session.ProvenanceSession`: they are the *non-session
foils* the benchmarks compare against, so they must pay the full cost of
their own grounding and evaluation on every call. Do not thread a session
through them.
"""

from .all_at_once import AllAtOnceReport, BaselineBudgetExceeded, all_at_once_why
from .souffle_style import (
    AnnotatedModel,
    NotDerivableError,
    SouffleStyleProvenance,
    annotate,
    explain_answer,
    single_witness_why,
)
from .top_down import (
    TopDownEngine,
    TopDownStatistics,
    answers_top_down,
    call_pattern,
    prove_top_down,
)

__all__ = [
    "AllAtOnceReport",
    "AnnotatedModel",
    "BaselineBudgetExceeded",
    "NotDerivableError",
    "SouffleStyleProvenance",
    "TopDownEngine",
    "TopDownStatistics",
    "all_at_once_why",
    "annotate",
    "answers_top_down",
    "call_pattern",
    "explain_answer",
    "prove_top_down",
    "single_witness_why",
]
