"""All-at-once why-provenance computation — the Figure 5 comparator.

The approach of Elhalawati, Kroetzsch and Mennicke (RuleML+RR 2022)
materializes the *entire* why-provenance of an answer in one pass, by
saturating rules over sets of supports (they drive an existential-rule
engine with set terms; the effect is a fixpoint over the "which leaf sets
can derive this fact" lattice). This module implements that semantics
directly over the downward closure: a support-set annotation semiring
saturated to fixpoint.

The paper compares end-to-end runtimes against this style of computation
on the Doctors scenarios, which are linear *and* non-recursive — there
arbitrary and unambiguous proof trees yield the same why-provenance, so
the comparison is apples-to-apples (Section 6 / Appendix D.5).

As a non-session foil this module never touches the
:class:`~repro.core.session.ProvenanceSession` caches; callers may still
hand it a precomputed ``closure`` to isolate saturation cost from
grounding cost.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery
from ..provenance.grounding import (
    DownwardClosure,
    FactNotDerivable,
    downward_closure,
)


class BaselineBudgetExceeded(RuntimeError):
    """Raised when the materialization exceeds its support budget."""


@dataclass
class AllAtOnceReport:
    """Outcome of one all-at-once run."""

    members: FrozenSet[FrozenSet[Atom]]
    closure_seconds: float
    saturation_seconds: float
    iterations: int

    @property
    def total_seconds(self) -> float:
        """End-to-end time: closure construction plus saturation."""
        return self.closure_seconds + self.saturation_seconds


def all_at_once_why(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    max_supports_per_fact: int = 1_000_000,
    closure: Optional[DownwardClosure] = None,
) -> AllAtOnceReport:
    """Materialize ``why(t, D, Q)`` in full (supports of arbitrary trees).

    Semantics: the least fixpoint assigning to every fact the family of
    leaf sets of its proof trees; database facts start with their singleton
    and a hyperedge combines one support per (deduplicated) body fact.
    """
    start = time.perf_counter()
    fact = query.answer_atom(tup)
    if closure is None:
        try:
            closure = downward_closure(query.program, database, fact)
        except FactNotDerivable:
            return AllAtOnceReport(
                members=frozenset(),
                closure_seconds=time.perf_counter() - start,
                saturation_seconds=0.0,
                iterations=0,
            )
    closure_seconds = time.perf_counter() - start

    start = time.perf_counter()
    supports: Dict[Atom, Set[FrozenSet[Atom]]] = {}
    for node in closure.nodes:
        supports[node] = {frozenset((node,))} if node in database else set()
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for head, instances in closure.instances_by_head.items():
            bucket = supports[head]
            for instance in instances:
                families = [supports[t] for t in instance.body]
                if any(not fam for fam in families):
                    continue
                for combo in itertools.product(*families):
                    union = frozenset().union(*combo)
                    if union not in bucket:
                        bucket.add(union)
                        changed = True
                        if len(bucket) > max_supports_per_fact:
                            raise BaselineBudgetExceeded(
                                f"more than {max_supports_per_fact} supports for {head}"
                            )
    saturation_seconds = time.perf_counter() - start
    return AllAtOnceReport(
        members=frozenset(supports[closure.root]),
        closure_seconds=closure_seconds,
        saturation_seconds=saturation_seconds,
        iterations=iterations,
    )
