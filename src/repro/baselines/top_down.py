"""Top-down (goal-directed) Datalog evaluation with tabling.

The paper evaluates everything bottom-up through DLV, and Appendix D.5
credits DLV's goal-directed optimizations (magic sets) for the memory
advantage over the existential-rules baseline.  This module provides the
*other* classical goal-directed strategy as an independent oracle: QSQR-
style tabled resolution (Vieille's Query-SubQuery, the recursion-safe
relative of Prolog's SLD resolution).

Evaluation proceeds from the goal: a subgoal is solved by resolving it
against every rule head, solving the body left to right, and *tabling*
the answers per call pattern.  Re-entrant calls (a pattern already on the
resolution stack) consume the answers tabled so far instead of recursing,
and an outer fixpoint loop re-runs the resolution until no table grows —
the standard recipe that makes top-down evaluation terminate and be
complete on recursive Datalog.

The engine answers exactly the facts relevant to the goal, which is the
same work profile as the magic-set rewriting in
:mod:`repro.datalog.magic`; both are benchmarked against plain bottom-up
evaluation in ``benchmarks/bench_ablation_magic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery, Program
from ..datalog.terms import Variable, is_variable
from ..datalog.unify import match_atom

#: A call pattern: predicate plus, per position, either a bound constant
#: or a canonical variable marker encoding the equality pattern of the
#: free positions (so ``p(X, X)`` and ``p(X, Y)`` table separately).
CallPattern = Tuple[str, Tuple[object, ...]]


def call_pattern(atom: Atom) -> CallPattern:
    """Canonicalize *atom* into a table key."""
    seen: Dict[Variable, int] = {}
    shape: List[object] = []
    for term in atom.args:
        if is_variable(term):
            index = seen.setdefault(term, len(seen))
            shape.append(("?", index))
        else:
            shape.append(term)
    return (atom.pred, tuple(shape))


@dataclass
class TopDownStatistics:
    """Work counters for one engine instance."""

    subgoal_calls: int = 0
    table_hits: int = 0
    resolution_steps: int = 0
    fixpoint_passes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and assertions)."""
        return {
            "subgoal_calls": self.subgoal_calls,
            "table_hits": self.table_hits,
            "resolution_steps": self.resolution_steps,
            "fixpoint_passes": self.fixpoint_passes,
        }


@dataclass
class TopDownEngine:
    """Tabled top-down evaluation of a Datalog program over a database.

    Use :meth:`query` to obtain all derivable ground instances of a goal
    atom (which may contain variables), or :meth:`prove` for a ground
    goal.  Tables persist across calls, so repeated goals are cheap.
    """

    program: Program
    database: Database
    stats: TopDownStatistics = field(default_factory=TopDownStatistics)

    def __post_init__(self) -> None:
        self._tables: Dict[CallPattern, Set[Atom]] = {}
        self._fresh_counter = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(self, goal: Atom) -> FrozenSet[Atom]:
        """All ground instances of *goal* derivable from the database."""
        if goal.pred in self.program.edb or goal.pred not in self.program.schema:
            # Purely extensional goals never need resolution.
            return frozenset(self._edb_matches(goal))
        pattern = call_pattern(goal)
        while True:
            self.stats.fixpoint_passes += 1
            before = self._table_sizes()
            self._solve(goal, frozenset())
            if self._table_sizes() == before:
                break
        return frozenset(self._tables.get(pattern, ()))

    def prove(self, goal: Atom) -> bool:
        """Whether the *ground* atom *goal* is derivable."""
        if goal.variables():
            raise ValueError(f"prove() requires a ground goal, got {goal}")
        return goal in self.query(goal)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _table_sizes(self) -> Tuple[int, int]:
        # Tables only ever grow, so (table count, total answers) is a
        # faithful progress measure for the outer fixpoint loop.
        return (len(self._tables), sum(len(t) for t in self._tables.values()))

    def _edb_matches(self, goal: Atom) -> Iterable[Atom]:
        bindings = {
            position: term
            for position, term in enumerate(goal.args)
            if not is_variable(term)
        }
        for fact in self.database.matching(goal.pred, bindings):
            if match_atom(goal, fact) is not None:
                yield fact

    def _rename_rule(self, rule):
        self._fresh_counter += 1
        return rule.rename_apart(f"@{self._fresh_counter}")

    def _solve(self, goal: Atom, stack: FrozenSet[CallPattern]) -> Set[Atom]:
        """Answers for *goal*, tabled under its call pattern.

        *stack* holds the patterns currently being solved; a re-entrant
        call returns the answers tabled so far (the outer fixpoint loop
        of :meth:`query` picks up whatever is missing).
        """
        pattern = call_pattern(goal)
        self.stats.subgoal_calls += 1
        if pattern in stack:
            self.stats.table_hits += 1
            return self._tables.setdefault(pattern, set())
        table = self._tables.setdefault(pattern, set())
        stack = stack | {pattern}
        for rule in self.program.rules_for(goal.pred):
            renamed = self._rename_rule(rule)
            head_subst = match_atom(renamed.head, goal) if goal.is_fact() else None
            if goal.is_fact():
                if head_subst is None:
                    continue
                start_subst = head_subst
            else:
                # Bind the head against the (possibly non-ground) goal by
                # unifying constant positions only; free goal positions
                # leave the head variables free.
                start_subst = self._head_bindings(renamed.head, goal)
                if start_subst is None:
                    continue
            for body_subst in self._solve_body(renamed.body, start_subst, stack):
                self.stats.resolution_steps += 1
                answer = renamed.head.ground(body_subst)
                # Repeated goal variables impose equalities that the
                # per-position head bindings above cannot express.
                if answer not in table and match_atom(goal, answer) is not None:
                    table.add(answer)
        return table

    @staticmethod
    def _head_bindings(head: Atom, goal: Atom) -> Optional[Dict[Variable, object]]:
        """Bindings forced on *head* by the bound positions of *goal*."""
        subst: Dict[Variable, object] = {}
        for head_term, goal_term in zip(head.args, goal.args):
            if is_variable(goal_term):
                continue
            if is_variable(head_term):
                bound = subst.get(head_term)
                if bound is not None and bound != goal_term:
                    return None
                subst[head_term] = goal_term
            elif head_term != goal_term:
                return None
        return subst

    def _solve_body(
        self,
        body: Tuple[Atom, ...],
        subst: Dict[Variable, object],
        stack: FrozenSet[CallPattern],
    ) -> Iterable[Dict[Variable, object]]:
        """All substitutions closing *body* left to right under *subst*."""
        if not body:
            yield subst
            return
        first, rest = body[0], body[1:]
        bound_first = first.substitute(subst)
        if first.pred in self.program.idb:
            candidates = self._solve(bound_first, stack)
        else:
            candidates = self._edb_matches(bound_first)
        for fact in list(candidates):
            extended = match_atom(bound_first, fact, dict(subst))
            if extended is None:
                continue
            merged = dict(subst)
            merged.update(extended)
            yield from self._solve_body(rest, merged, stack)


def answers_top_down(query: DatalogQuery, database: Database) -> Set[Tuple]:
    """``Q(D)`` computed goal-directed; must equal the bottom-up answers."""
    engine = TopDownEngine(query.program, database)
    arity = query.answer_arity
    goal = Atom(query.answer_predicate, tuple(Variable(f"X{i}") for i in range(arity)))
    return {fact.args for fact in engine.query(goal)}


def prove_top_down(query: DatalogQuery, database: Database, tup: Tuple) -> bool:
    """Whether *tup* answers *query*, established goal-directed."""
    engine = TopDownEngine(query.program, database)
    return engine.prove(query.answer_atom(tup))
