"""Souffle-style provenance: one minimal-height witness per fact.

Zhao, Subotic and Scholz (*Debugging large-scale Datalog*, TOPLAS 2020 —
cited in the paper's introduction as the scalable under-approximation of
why-provenance) instrument the semi-naive evaluation so that every
derived fact remembers *one* rule instance that first produced it, at the
earliest possible stage.  A proof tree can then be reconstructed on
demand by chasing witnesses; its height equals the fact's derivation
stage, which by Proposition 28 equals ``min-dag-depth`` — the
reconstructed tree is a *minimal-depth* proof tree (Definition 26).

The price of scalability is completeness: the strategy yields a single
member of ``why(t, D, Q)`` (in fact of ``whyMD`` and ``whyUN``) instead
of the whole family — the gap the paper's SAT machinery closes.  Tests
assert both directions: the reconstructed support *is* a member, and on
inputs with several members the baseline finds only one of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery, Program
from ..datalog.rules import GroundRule
from ..datalog.unify import match_body, match_body_with_delta
from ..provenance.proof_tree import ProofTree


class NotDerivableError(ValueError):
    """Raised when asked to explain a fact outside the least model."""


@dataclass
class AnnotatedModel:
    """The least model plus one minimal-stage witness per derived fact.

    Attributes
    ----------
    model:
        ``Sigma(D)``, exactly as the plain engine computes it.
    witnesses:
        ``fact -> GroundRule`` chosen at the fact's first derivation
        stage; database facts have no witness.
    heights:
        ``fact -> stage``; database facts have height 0.  Equals the
        plain engine's ranks and ``min-dag-depth`` (Proposition 28).
    """

    model: Database
    witnesses: Dict[Atom, GroundRule]
    heights: Dict[Atom, int]


def annotate(program: Program, database: Database) -> AnnotatedModel:
    """Semi-naive evaluation instrumented with first-derivation witnesses.

    Mirrors :func:`repro.datalog.engine.evaluate` but records, for every
    fact, the first rule instance that fires for it.  Later (taller)
    rederivations never overwrite the witness, so witness heights are
    minimal — the invariant all proof-tree reconstruction rests on.
    """
    model = database.copy()
    heights: Dict[Atom, int] = {fact: 0 for fact in database}
    witnesses: Dict[Atom, GroundRule] = {}

    idb = program.idb
    edb_only_rules = []
    recursive_rules: List[Tuple] = []
    for rule in program.rules:
        idb_positions = [i for i, atom in enumerate(rule.body) if atom.pred in idb]
        if idb_positions:
            recursive_rules.append((rule, idb_positions))
        else:
            edb_only_rules.append(rule)

    delta = database.copy()
    stage = 0
    first_round = True
    while len(delta):
        next_stage = stage + 1
        new_delta = Database()

        def record(rule, subst) -> None:
            head = rule.head.ground(subst)
            if head in model or head in new_delta:
                return
            body = tuple(atom.ground(subst) for atom in rule.body)
            witnesses[head] = GroundRule(rule, head, body)
            heights[head] = next_stage
            new_delta.add(head)

        if first_round:
            for rule in edb_only_rules:
                for subst in match_body(rule.body, model):
                    record(rule, subst)
            first_round = False
        for rule, idb_positions in recursive_rules:
            for pos in idb_positions:
                if delta.count(rule.body[pos].pred) == 0:
                    continue
                for subst in match_body_with_delta(rule.body, model, delta, pos):
                    record(rule, subst)
        if not len(new_delta):
            break
        stage = next_stage
        for fact in new_delta:
            model.add(fact)
        delta = new_delta
    return AnnotatedModel(model=model, witnesses=witnesses, heights=heights)


@dataclass
class SouffleStyleProvenance:
    """On-demand single-witness explanations over an annotated model.

    Build once per (program, database) pair; :meth:`explain` then
    reconstructs a minimal-depth proof tree for any fact of the model in
    time linear in the tree size, with no further fixpoint work — the
    "provenance evaluation strategy" trade-off.
    """

    program: Program
    database: Database
    annotated: AnnotatedModel = field(init=False)

    def __post_init__(self) -> None:
        self.annotated = annotate(self.program, self.database)

    def holds(self, fact: Atom) -> bool:
        """Whether *fact* is in the least model."""
        return fact in self.annotated.model

    def height(self, fact: Atom) -> int:
        """The minimal proof height of *fact* (== rank == min-dag-depth)."""
        try:
            return self.annotated.heights[fact]
        except KeyError:
            raise NotDerivableError(f"{fact} is not in the least model") from None

    def explain(self, fact: Atom) -> ProofTree:
        """A minimal-depth proof tree of *fact*, chasing stored witnesses.

        Witness heights strictly decrease along every branch, so the
        recursion terminates; the resulting tree is unambiguous (each
        fact is expanded the same way everywhere) and of minimal depth.
        """
        if fact not in self.annotated.model:
            raise NotDerivableError(f"{fact} is not in the least model")

        def build(current: Atom) -> ProofTree:
            if current in self.database:
                return ProofTree.leaf(current)
            witness = self.annotated.witnesses[current]
            children = [build(child) for child in witness.body]
            return ProofTree.derive(witness, children)

        return build(fact)

    def support(self, fact: Atom) -> FrozenSet[Atom]:
        """The support of the reconstructed witness tree."""
        return self.explain(fact).support()


def explain_answer(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
) -> Optional[ProofTree]:
    """One minimal-depth proof tree of ``R(t)``, or None if not an answer."""
    provenance = SouffleStyleProvenance(query.program, database)
    fact = query.answer_atom(tup)
    if not provenance.holds(fact):
        return None
    return provenance.explain(fact)


def single_witness_why(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
) -> Optional[FrozenSet[Atom]]:
    """The under-approximate why-provenance: one member or None.

    This is the Souffle-style answer to the question the paper's SAT
    pipeline answers exhaustively; benchmarks compare the two.
    """
    tree = explain_answer(query, database, tup)
    if tree is None:
        return None
    return tree.support()
