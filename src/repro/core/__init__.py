"""Core contribution: SAT-based why-provenance, deciders, FO rewriting.

The front door of this package is :class:`ProvenanceSession`
(:mod:`repro.core.session`): one object per ``(query, database)`` pair
that evaluates the program exactly once — with the engine instrumented to
record every ground rule instance as it fires — and memoizes the graph of
rule instances, per-fact downward closures, CNF encodings, and warm
incremental SAT solvers. Enumerating, deciding, or minimizing
why-provenance for many target facts over one database should go through
a session::

    session = ProvenanceSession(query, database)
    for tup in session.answers():
        session.why(tup, limit=10)
        session.decide(tup, subset, tree_class="unambiguous")
        session.smallest_member(tup)

The historical free functions (``decide_membership``,
``why_provenance_unambiguous``, ``smallest_member``, ...) remain as thin
wrappers for one-shot use; each accepts an optional ``session=`` argument
to opt into the shared caches.
"""

from .decision import (
    TREE_CLASSES,
    decide_membership,
    decide_why,
    decide_why_minimal_depth,
    decide_why_nonrecursive,
    decide_why_unambiguous,
)
from .encoder import EncodingStats, WhyProvenanceEncoding, encode_why_provenance
from .enumerator import (
    EnumerationReport,
    MemberRecord,
    WhyProvenanceEnumerator,
    why_provenance_unambiguous,
)
from .minimal import (
    MinimalityReport,
    members_by_size,
    minimal_members,
    smallest_member,
)
from .fo_rewriting import (
    FORewriting,
    InducedCQ,
    RewritingBudgetExceeded,
    decide_why_via_rewriting,
    enumerate_symbolic_trees,
    rewrite,
)
from .parallel import (
    BatchResult,
    EvaluationSnapshot,
    FactResult,
    ParallelProvenanceExplainer,
    explain_fact,
)
from .incremental import SessionUpdate, update_session
from .session import ProvenanceSession, SessionStats

__all__ = [
    "BatchResult",
    "EncodingStats",
    "EvaluationSnapshot",
    "FactResult",
    "ParallelProvenanceExplainer",
    "explain_fact",
    "ProvenanceSession",
    "SessionStats",
    "SessionUpdate",
    "update_session",
    "EnumerationReport",
    "FORewriting",
    "InducedCQ",
    "MemberRecord",
    "MinimalityReport",
    "members_by_size",
    "minimal_members",
    "smallest_member",
    "RewritingBudgetExceeded",
    "TREE_CLASSES",
    "WhyProvenanceEncoding",
    "WhyProvenanceEnumerator",
    "decide_membership",
    "decide_why",
    "decide_why_minimal_depth",
    "decide_why_nonrecursive",
    "decide_why_unambiguous",
    "decide_why_via_rewriting",
    "encode_why_provenance",
    "enumerate_symbolic_trees",
    "rewrite",
    "why_provenance_unambiguous",
]
