"""Core contribution: SAT-based why-provenance, deciders, FO rewriting."""

from .decision import (
    TREE_CLASSES,
    decide_membership,
    decide_why,
    decide_why_minimal_depth,
    decide_why_nonrecursive,
    decide_why_unambiguous,
)
from .encoder import EncodingStats, WhyProvenanceEncoding, encode_why_provenance
from .enumerator import (
    EnumerationReport,
    MemberRecord,
    WhyProvenanceEnumerator,
    why_provenance_unambiguous,
)
from .minimal import (
    MinimalityReport,
    members_by_size,
    minimal_members,
    smallest_member,
)
from .fo_rewriting import (
    FORewriting,
    InducedCQ,
    RewritingBudgetExceeded,
    decide_why_via_rewriting,
    enumerate_symbolic_trees,
    rewrite,
)

__all__ = [
    "EncodingStats",
    "EnumerationReport",
    "FORewriting",
    "InducedCQ",
    "MemberRecord",
    "MinimalityReport",
    "members_by_size",
    "minimal_members",
    "smallest_member",
    "RewritingBudgetExceeded",
    "TREE_CLASSES",
    "WhyProvenanceEncoding",
    "WhyProvenanceEnumerator",
    "decide_membership",
    "decide_why",
    "decide_why_minimal_depth",
    "decide_why_nonrecursive",
    "decide_why_unambiguous",
    "decide_why_via_rewriting",
    "encode_why_provenance",
    "enumerate_symbolic_trees",
    "rewrite",
    "why_provenance_unambiguous",
]
