"""Membership deciders for the problems ``Why-Provenance^X[Q]``.

Given ``Q = (Sigma, R)``, a database ``D`` over ``edb(Sigma)``, a tuple
``t``, and ``D' subseteq D``, decide whether ``D'`` belongs to the
why-provenance of ``t`` — for each of the paper's four proof-tree classes:

* ``unambiguous``  (Section 5, Theorem 14)  — SAT: assume the exact leaf
  set in ``phi_(t, D, Q)`` and ask for satisfiability;
* ``arbitrary``    (Section 4, Theorem 3)   — the bounded-copies SAT
  procedure of Proposition 5 (sound for every bound, complete for the
  polynomial bound of Lemma 8) with the exact fixpoint oracle as the
  default complete fallback;
* ``nonrecursive`` (Appendix B, Theorem 19) — for linear programs
  non-recursive and unambiguous proof trees coincide (Appendix D.1), so the
  SAT decider applies; otherwise the exact path-aware oracle decides;
* ``minimal-depth`` (Appendix C, Theorem 27) — depth-bounded search with
  the budget ``rank(R(t), D)`` computed by the engine (Proposition 28).

A useful observation shared by all deciders: a proof tree w.r.t. ``D``
whose support is exactly ``D'`` is a proof tree w.r.t. ``D'`` (its leaves
all lie in ``D'``), so the search can run over the subset database —
except for the minimal-depth budget, which by Definition 26 refers to the
*full* database ``D``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database, check_over_schema
from ..datalog.engine import evaluate
from ..datalog.program import DatalogQuery
from ..provenance.enumerate import (
    enumerate_why,
    enumerate_why_minimal_depth,
    enumerate_why_nonrecursive,
)
from ..provenance.grounding import FactNotDerivable, downward_closure
from ..sat.solver import CDCLSolver
from .encoder import encode_why_provenance

TREE_CLASSES = ("arbitrary", "unambiguous", "nonrecursive", "minimal-depth")


def decide_membership(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    subset: Iterable[Atom],
    tree_class: str = "arbitrary",
    session=None,
) -> bool:
    """Uniform front end dispatching on *tree_class*.

    An optional :class:`~repro.core.session.ProvenanceSession` lets all
    deciders share one evaluation, GRI, closure and warm solver per tuple
    instead of recomputing them per call.
    """
    if tree_class == "arbitrary":
        return decide_why(query, database, tup, subset, session=session)
    if tree_class == "unambiguous":
        return decide_why_unambiguous(query, database, tup, subset, session=session)
    if tree_class == "nonrecursive":
        return decide_why_nonrecursive(query, database, tup, subset, session=session)
    if tree_class == "minimal-depth":
        return decide_why_minimal_depth(query, database, tup, subset, session=session)
    raise ValueError(f"unknown tree class {tree_class!r}; expected one of {TREE_CLASSES}")


def _validated_subset(database: Database, subset: Iterable[Atom]) -> FrozenSet[Atom]:
    facts = frozenset(subset)
    for fact in facts:
        if fact not in database:
            raise ValueError(f"{fact} is not a fact of the input database")
    return facts


def decide_why_unambiguous(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    subset: Iterable[Atom],
    acyclicity: Optional[str] = None,
    session=None,
) -> bool:
    """``D' in whyUN(t, D, Q)?`` via one SAT call on ``phi_(t, D, Q)``.

    The assumptions pin the ``x`` variable of every database fact of the
    downward closure: true inside ``D'``, false outside. The formula is
    then satisfiable iff a compressed DAG with support exactly ``D'``
    exists (Lemma 44), iff ``D'`` is a member (Proposition 41).

    With a *session*, the encoding comes from the session cache and the
    query runs on the session's warm assumption-only solver, so N
    membership checks for one tuple pay for one encoding and share
    learned clauses.
    """
    check_over_schema(database, query.program.edb)
    facts = _validated_subset(database, subset)
    if acyclicity is None:
        # Follow the session's configured encoding so one session never
        # mixes acyclicity regimes across its own methods.
        acyclicity = session.acyclicity if session is not None else "vertex-elimination"
    if session is not None:
        encoding = session.encoding_or_none(tup, acyclicity=acyclicity)
        if encoding is None:
            return False
        assumptions = encoding.membership_assumptions(facts)
        if assumptions is None:
            return False
        pool = session.sat_pool()
        if pool is not None:
            # Warm pooled verdict: shares the root's residual group (and
            # every learned clause) with the enumerators and with other
            # membership checks of the session. Falls through when the
            # encoding is not poolable.
            verdict = pool.decide(encoding, facts)
            if verdict is not None:
                return verdict
        solver = session.decision_solver(tup, acyclicity=acyclicity)
        return bool(solver.solve(assumptions=assumptions))
    try:
        encoding = encode_why_provenance(query, database, tup, acyclicity=acyclicity)
    except FactNotDerivable:
        return False
    assumptions = encoding.membership_assumptions(facts)
    if assumptions is None:
        return False
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    return bool(solver.solve(assumptions=assumptions))


def decide_why(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    subset: Iterable[Atom],
    max_copies: int = 3,
    use_oracle_fallback: bool = True,
    session=None,
) -> bool:
    """``D' in why(t, D, Q)?`` (arbitrary proof trees, Definition 2).

    Strategy:

    1. Restrict to the subset database (leaves of a witnessing tree are
       exactly ``D'``). If ``R(t)`` is not derivable from ``D'`` alone,
       membership fails immediately.
    2. Try the bounded-copies SAT encoding for ``k = 1 .. max_copies``
       (``k = 1`` is the unambiguous case, a frequent early accept). Any
       SAT answer proves membership (models unravel to proof trees).
    3. If still undecided and *use_oracle_fallback*, run the exact
       fixpoint oracle on the subset database — complete, exponential in
       the worst case (the problem is NP-hard, Theorem 3).

    With ``use_oracle_fallback=False`` the procedure is sound but may
    return ``False`` for exotic members that need more than *max_copies*
    nodes per fact in every witnessing compact proof DAG.
    """
    check_over_schema(database, query.program.edb)
    facts = _validated_subset(database, subset)
    if session is not None:
        # Fast rejects from the session caches: the tuple must be an
        # answer, and every fact of D' must lie in the closure over the
        # *full* database (leaves of any witnessing tree are closure
        # nodes). The per-subset work below is inherently subset-local.
        full_closure = session.closure_or_none(query.answer_atom(tup))
        if full_closure is None or not facts <= full_closure.nodes:
            return False
    sub_db = Database(facts)
    fact = query.answer_atom(tup)
    try:
        closure = downward_closure(query.program, sub_db, fact)
    except FactNotDerivable:
        return False
    # Every fact of D' must at least appear in the closure to be a leaf.
    if not facts <= closure.nodes:
        return False
    for copies in range(1, max_copies + 1):
        encoding = encode_why_provenance(
            query, sub_db, tup, closure=closure, copies=copies
        )
        assumptions = encoding.membership_assumptions(facts)
        if assumptions is None:
            return False
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        if solver.solve(assumptions=assumptions):
            return True
    if not use_oracle_fallback:
        return False
    family = enumerate_why(query, sub_db, tup)
    return facts in family


def decide_why_nonrecursive(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    subset: Iterable[Atom],
    session=None,
) -> bool:
    """``D' in whyNR(t, D, Q)?`` (non-recursive proof trees, Def. 18).

    For linear programs, whyNR and whyUN coincide (Appendix D.1): a
    non-recursive linear proof tree repeats no intensional fact at all, so
    it is trivially unambiguous — and unambiguous trees are always
    non-recursive. The SAT decider therefore answers directly. For
    non-linear programs the exact path-aware oracle is used.
    """
    check_over_schema(database, query.program.edb)
    facts = _validated_subset(database, subset)
    if query.is_linear():
        return decide_why_unambiguous(query, database, tup, facts, session=session)
    sub_db = Database(facts)
    family = enumerate_why_nonrecursive(query, sub_db, tup)
    return facts in family


def decide_why_minimal_depth(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    subset: Iterable[Atom],
    session=None,
) -> bool:
    """``D' in whyMD(t, D, Q)?`` (minimal-depth proof trees, Def. 26).

    The depth budget is ``rank(R(t))`` over the *full* database ``D``
    (minimality quantifies over all proof trees w.r.t. ``D``; Prop. 28
    computes the minimum in polynomial time). The witnessing tree itself
    lives over ``D'``; if even the best tree over ``D'`` is deeper than
    the global minimum, membership fails. With a *session*, the budget
    comes from the session's cached ranks — the full-database evaluation
    is not repeated per query.
    """
    check_over_schema(database, query.program.edb)
    facts = _validated_subset(database, subset)
    fact = query.answer_atom(tup)
    evaluation = session.evaluation if session is not None else evaluate(query.program, database)
    if fact not in evaluation.ranks:
        return False
    budget = evaluation.ranks[fact]
    sub_db = Database(facts)
    sub_eval = evaluate(query.program, sub_db)
    if fact not in sub_eval.ranks or sub_eval.ranks[fact] > budget:
        return False
    family = _bounded_depth_supports(query, sub_db, tup, budget)
    return facts in family


def _bounded_depth_supports(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    budget: int,
) -> FrozenSet[FrozenSet[Atom]]:
    """Supports of proof trees with depth <= budget over *database*.

    Depth ``budget`` equals the global minimum here, so "depth <= budget"
    coincides with "minimal depth" for the root fact (every tree is at
    least rank-deep, Prop. 28) — but only when ``rank`` w.r.t. this
    database equals the budget, which the caller has checked.
    """
    fact = query.answer_atom(tup)
    try:
        closure = downward_closure(query.program, database, fact)
    except FactNotDerivable:
        return frozenset()
    instances_of = closure.instances_by_head
    cache: Dict[Tuple[Atom, int], FrozenSet[FrozenSet[Atom]]] = {}

    def supports(node: Atom, depth_budget: int) -> FrozenSet[FrozenSet[Atom]]:
        key = (node, depth_budget)
        if key in cache:
            return cache[key]
        out: Set[FrozenSet[Atom]] = set()
        if node in database:
            out.add(frozenset((node,)))
        if depth_budget >= 1:
            for instance in instances_of.get(node, ()):
                families = [supports(t, depth_budget - 1) for t in instance.body]
                if any(not fam for fam in families):
                    continue
                for combo in itertools.product(*families):
                    out.add(frozenset().union(*combo))
        result = frozenset(out)
        cache[key] = result
        return result

    return supports(fact, budget)
