"""Parallel batch why-provenance: shard target facts across worker processes.

The paper's experiments (Figures 1-3) measure why-provenance over *many*
target facts per database. :class:`~repro.core.session.ProvenanceSession`
already amortizes evaluation and grounding across those facts, but it
serves them strictly sequentially on one core. This module adds the
serving-scale layer on top: a batch of target tuples is sharded across a
``multiprocessing`` worker pool, with the expensive fixpoint evaluation
done **exactly once** in the parent.

Design
------

* :class:`EvaluationSnapshot` — the minimal picklable state a worker needs:
  the query, the database, and the recorded
  :class:`~repro.datalog.engine.EvaluationResult` (model, ranks, instance
  trace). It is pickled **once** in the parent; every worker unpickles it
  once in its pool initializer and rehydrates a private
  :class:`~repro.core.session.ProvenanceSession` around it. Workers then
  ground (GRI restriction), encode (CNF) and solve (CDCL enumeration)
  per fact — exactly the per-fact work, never the evaluation.
* :class:`ParallelProvenanceExplainer` — the pool driver. Tuples are cut
  into contiguous chunks that workers *pull* from the shared task queue
  (``imap_unordered`` with ``chunksize=1``), so a worker that drew facts
  with small downward closures steals the next chunk instead of idling
  behind one with a giant closure. Results carry their batch index and are
  re-ordered in the parent, so the output is deterministic regardless of
  completion order.
* Serial fallback — ``workers=1``, a batch smaller than two facts, an
  unavailable ``fork`` start method, or a snapshot that fails to pickle
  all fall back to running the same per-fact routine in-process through
  the parent session. The results are identical either way (same members,
  same order); :attr:`BatchResult.fallback_reason` records why.

Determinism
-----------

Workers are forked, so they inherit the parent's hash seed: closure
construction, CNF variable numbering, and CDCL member discovery order are
bit-for-bit the processes' replay of what the parent session would do.
``tests/test_parallel.py`` asserts parallel output equals serial output —
same witnesses, same order — across scenarios.

Typical usage::

    session = ProvenanceSession(query, database)
    batch = session.explain_batch(workers=4, limit=100)
    for result in batch.results:
        print(result.tuple_value, len(result.members))
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..datalog.database import Database
from ..datalog.engine import EvaluationResult
from ..datalog.program import DatalogQuery
from ..provenance.grounding import FactNotDerivable
from .session import ProvenanceSession

#: Upper bound on pool size when ``workers=None`` asks for "all cores".
MAX_AUTO_WORKERS = 16

#: Below this many tuples a batch is not worth forking a pool for: the
#: snapshot pickle plus worker start-up dominates the per-fact work. The
#: service daemon uses this to route small batches through the serial
#: in-process path and only large ones through the pool.
PARALLEL_BATCH_THRESHOLD = 8

#: Serializes pool creation (the fork moment) across threads. A threaded
#: server may run several batches concurrently; forking while another
#: thread mutates interpreter state is the classic fork-with-threads
#: hazard, so only one pool is ever being spawned at a time. Held only
#: around ``Pool()`` construction, never around the batch itself.
_FORK_LOCK = threading.Lock()


def default_worker_count() -> int:
    """The pool size used when ``workers`` is not given: one per core.

    Respects CPU affinity masks (containers, ``taskset``) where the
    platform exposes them, and is capped at :data:`MAX_AUTO_WORKERS`.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        available = os.cpu_count() or 1
    return max(1, min(available, MAX_AUTO_WORKERS))


@dataclass
class FactResult:
    """The outcome of explaining one target tuple of a batch.

    Mirrors one :class:`~repro.harness.runner.TupleRun` cell plus batch
    bookkeeping: the batch ``index`` (results are re-ordered on it), the
    wall-clock ``seconds`` the fact took end to end in its process, and an
    ``error`` string for tuples that could not be served (arity mismatch).
    A derivable tuple has ``is_answer=True`` and its members of
    ``whyUN(t, D, Q)`` in solver discovery order; a non-answer has
    ``is_answer=False`` and no members.
    """

    index: int
    tuple_value: Tuple
    members: List[FrozenSet] = field(default_factory=list)
    is_answer: bool = False
    closure_seconds: float = 0.0
    formula_seconds: float = 0.0
    delays: List[float] = field(default_factory=list)
    exhausted: bool = False
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the tuple was served (it may still be a non-answer)."""
        return self.error is None

    @property
    def build_seconds(self) -> float:
        """Closure plus formula construction (the Figure 1 quantity)."""
        return self.closure_seconds + self.formula_seconds


@dataclass
class BatchResult:
    """An ordered batch of :class:`FactResult` plus execution metadata.

    ``results[i]`` corresponds to the ``i``-th input tuple no matter which
    worker served it or when it finished. ``workers`` is the *effective*
    pool size (1 when the serial fallback ran), and ``fallback_reason``
    says why a parallel request was served serially (``None`` when the
    pool ran, or when serial execution was requested outright).
    """

    results: List[FactResult]
    workers: int
    chunk_size: int
    total_seconds: float
    evaluation_seconds: float
    snapshot_bytes: int = 0
    fallback_reason: Optional[str] = None

    @property
    def parallel(self) -> bool:
        """Whether a worker pool actually served the batch."""
        return self.workers > 1

    @property
    def throughput(self) -> float:
        """Tuples served per second of batch wall-clock time."""
        if self.total_seconds <= 0:
            return float("inf")
        return len(self.results) / self.total_seconds

    def members_by_tuple(self) -> Dict[Tuple, List[FrozenSet]]:
        """``tuple -> members`` for every successfully served tuple."""
        return {r.tuple_value: r.members for r in self.results if r.ok}

    def failures(self) -> List[FactResult]:
        """Results that errored or were not answers."""
        return [r for r in self.results if not r.ok or not r.is_answer]


class EvaluationSnapshot:
    """The one-time picklable state a worker needs to rebuild a session.

    Captures the query, the database, and the parent's
    :class:`~repro.datalog.engine.EvaluationResult` — model, ranks, and
    the recorded instance trace that lets workers build downward closures
    in ``O(|closure|)`` without re-matching rule bodies. Derived caches
    (GRI maps, closures, encodings, solvers) are deliberately *not*
    captured: they are cheap to rebuild per fact and expensive to ship.
    """

    def __init__(
        self,
        query: DatalogQuery,
        database: Database,
        evaluation: EvaluationResult,
        method: str = "seminaive",
        acyclicity: str = "vertex-elimination",
        version: int = 0,
        sat_mode: Optional[str] = None,
        sat_backend: Optional[str] = None,
    ):
        self.query = query
        self.database = database
        self.evaluation = evaluation
        self.method = method
        self.acyclicity = acyclicity
        #: SAT knobs of the parent session, replayed into workers so a
        #: forked pool solves exactly like the serial path. ``None``
        #: (absent in pre-1.7 pickled snapshots) means "resolve from the
        #: environment", which restores the old behavior.
        self.sat_mode = sat_mode
        self.sat_backend = sat_backend
        #: The parent session's :attr:`~repro.core.session.ProvenanceSession.version`
        #: at capture time. Chunks carry the version they were scheduled
        #: against, so a worker holding an older snapshot can detect it
        #: is stale instead of silently serving pre-update provenance.
        self.version = version

    @classmethod
    def capture(cls, session: ProvenanceSession) -> "EvaluationSnapshot":
        """Snapshot a session, forcing its one-time evaluation if needed."""
        evaluation = session.evaluation
        # Re-wrap to shed the GRI maps memoized on the evaluation object
        # (they roughly double the payload and are re-derivable from the
        # instance trace in linear time).
        pruned = EvaluationResult(
            model=evaluation.model,
            ranks=evaluation.ranks,
            rounds=evaluation.rounds,
            derivations=evaluation.derivations,
            instances=evaluation.instances,
        )
        return cls(
            query=session.query,
            database=session.database,
            evaluation=pruned,
            method=session.method,
            acyclicity=session.acyclicity,
            version=session.version,
            sat_mode=session.sat_mode,
            sat_backend=session.sat_backend,
        )

    def restore(self) -> ProvenanceSession:
        """Rehydrate a fresh session with the evaluation pre-installed."""
        session = ProvenanceSession(
            self.query,
            self.database,
            method=self.method,
            record_instances=self.evaluation.instances is not None,
            acyclicity=self.acyclicity,
            sat_mode=getattr(self, "sat_mode", None),
            sat_backend=getattr(self, "sat_backend", None),
        )
        session._evaluation = self.evaluation
        session.version = self.version
        return session

    def to_bytes(self) -> bytes:
        """Pickle the snapshot (raises if some component is unpicklable)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(blob: bytes) -> "EvaluationSnapshot":
        """Inverse of :meth:`to_bytes`."""
        return pickle.loads(blob)


def explain_fact(
    session: ProvenanceSession,
    tup: Tuple,
    index: int = 0,
    limit: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
) -> FactResult:
    """Serve one target tuple through *session*: the shared per-fact routine.

    Both the serial path and every pool worker run exactly this function,
    which is what makes parallel output provably comparable to serial
    output. Invalid tuples (arity mismatch) are reported in
    :attr:`FactResult.error` instead of aborting the batch.
    """
    from .enumerator import WhyProvenanceEnumerator

    started = time.perf_counter()
    try:
        is_answer = session.is_answer(tup)
    except ValueError as exc:
        return FactResult(
            index=index,
            tuple_value=tuple(tup),
            error=str(exc),
            seconds=time.perf_counter() - started,
        )
    if not is_answer:
        return FactResult(
            index=index,
            tuple_value=tuple(tup),
            is_answer=False,
            exhausted=True,
            seconds=time.perf_counter() - started,
        )
    try:
        enumerator = WhyProvenanceEnumerator(
            session.query, session.database, tup, acyclicity=session.acyclicity,
            session=session,
        )
    except FactNotDerivable:  # cannot happen after is_answer, but stay safe
        return FactResult(
            index=index,
            tuple_value=tuple(tup),
            is_answer=False,
            exhausted=True,
            seconds=time.perf_counter() - started,
        )
    records = list(
        enumerator.enumerate(limit=limit, timeout_seconds=timeout_seconds)
    )
    return FactResult(
        index=index,
        tuple_value=tuple(tup),
        members=[record.support for record in records],
        is_answer=True,
        closure_seconds=enumerator.closure_seconds,
        formula_seconds=enumerator.formula_seconds,
        delays=[record.delay_seconds for record in records],
        exhausted=enumerator._exhausted,
        seconds=time.perf_counter() - started,
    )


# -- worker-side plumbing ----------------------------------------------------
#
# The pool initializer rehydrates one session per worker process from the
# snapshot bytes; chunk tasks then only carry (index, tuple) pairs plus the
# session version they were scheduled against.

_WORKER_SNAPSHOT: Optional[EvaluationSnapshot] = None
_WORKER_SESSION: Optional[ProvenanceSession] = None


def _init_worker(snapshot_blob: bytes) -> None:
    """Pool initializer: unpickle the snapshot once, rehydrate the session."""
    global _WORKER_SNAPSHOT, _WORKER_SESSION
    _WORKER_SNAPSHOT = EvaluationSnapshot.from_bytes(snapshot_blob)
    _WORKER_SESSION = _WORKER_SNAPSHOT.restore()


def _run_chunk(
    payload: Tuple[List[Tuple[int, Tuple]], Optional[int], Optional[float], int],
) -> List[FactResult]:
    """Serve one chunk of ``(index, tuple)`` pairs in a worker process.

    The payload carries the session version the parent scheduled the
    chunk against. A worker whose live session has drifted away from its
    snapshot's version rehydrates from the snapshot; a worker whose
    *snapshot* is older than the chunk (a pool that outlived a database
    update) fails loudly rather than serving pre-update provenance.
    """
    global _WORKER_SESSION
    chunk, limit, timeout_seconds, version = payload
    assert _WORKER_SESSION is not None, "worker initialized without a snapshot"
    if _WORKER_SESSION.version != version:
        assert _WORKER_SNAPSHOT is not None
        if _WORKER_SNAPSHOT.version != version:
            raise RuntimeError(
                f"stale worker snapshot: chunk expects session version "
                f"{version}, snapshot is {_WORKER_SNAPSHOT.version}; "
                "rebuild the pool after ProvenanceSession.update()"
            )
        _WORKER_SESSION = _WORKER_SNAPSHOT.restore()
    return [
        explain_fact(
            _WORKER_SESSION, tup, index=index,
            limit=limit, timeout_seconds=timeout_seconds,
        )
        for index, tup in chunk
    ]


class ParallelProvenanceExplainer:
    """Shard a batch of target facts across a worker pool.

    Parameters
    ----------
    session:
        The parent :class:`~repro.core.session.ProvenanceSession`. Its
        (one-time) evaluation is forced here, in the parent, and shipped
        to the workers as a pickled snapshot.
    workers:
        Pool size; ``None`` or ``0`` means one per available core (capped
        at :data:`MAX_AUTO_WORKERS`) — every entry point (CLI
        ``--workers 0``, ``REPRO_BENCH_WORKERS=0``, the Python API)
        shares that meaning. ``1`` selects the serial path.
    chunk_size:
        Tuples per work unit. Small chunks approximate work stealing —
        workers finishing early pull more — at the price of a little more
        queue traffic. Default: about four chunks per worker.
    start_method:
        ``multiprocessing`` start method. Only ``"fork"`` guarantees that
        workers inherit the parent's hash seed (and with it bit-identical
        member ordering); when unavailable the explainer falls back to
        serial execution rather than silently losing determinism.
    """

    def __init__(
        self,
        session: ProvenanceSession,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: str = "fork",
    ):
        self.session = session
        self.workers = default_worker_count() if not workers else max(1, workers)
        self.chunk_size = chunk_size
        self.start_method = start_method

    # -- public API ---------------------------------------------------------

    def explain_batch(
        self,
        tuples: Optional[Sequence[Tuple]] = None,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> BatchResult:
        """Explain every tuple of the batch; results in input order.

        ``tuples=None`` serves every answer of ``Q(D)`` (sorted). The
        parent always evaluates first — serial and parallel paths share
        that cost identically — then the per-fact work is either looped
        in-process or sharded over the pool.
        """
        eval_start = time.perf_counter()
        self.session.evaluation  # force the one-time evaluation in the parent
        evaluation_seconds = time.perf_counter() - eval_start
        if tuples is None:
            tuples = self.session.answers()
        tuples = [tuple(t) for t in tuples]

        workers = min(self.workers, max(1, len(tuples)))
        if workers <= 1:
            reason = None if self.workers <= 1 else "batch smaller than two tuples"
            return self._serial(
                tuples, limit, timeout_seconds, evaluation_seconds, reason
            )
        if self.start_method not in multiprocessing.get_all_start_methods():
            return self._serial(
                tuples, limit, timeout_seconds, evaluation_seconds,
                f"start method {self.start_method!r} unavailable",
            )
        try:
            # Cached per session version: repeated batches over an
            # unchanged database pickle once; any update() rebuilds.
            blob = self.session.snapshot_bytes()
        except Exception as exc:  # unpicklable component: stay correct
            return self._serial(
                tuples, limit, timeout_seconds, evaluation_seconds,
                f"snapshot not picklable: {exc}",
            )
        return self._pooled(
            tuples, limit, timeout_seconds, workers, blob, evaluation_seconds
        )

    # -- execution paths ----------------------------------------------------

    def _effective_chunk_size(self, n: int, workers: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        # ~4 chunks per worker: coarse enough to amortize IPC, fine enough
        # that one skewed closure does not serialize the tail.
        return max(1, -(-n // (workers * 4)))

    def _serial(
        self,
        tuples: List[Tuple],
        limit: Optional[int],
        timeout_seconds: Optional[float],
        evaluation_seconds: float,
        reason: Optional[str],
    ) -> BatchResult:
        started = time.perf_counter()
        results = [
            explain_fact(
                self.session, tup, index=index,
                limit=limit, timeout_seconds=timeout_seconds,
            )
            for index, tup in enumerate(tuples)
        ]
        return BatchResult(
            results=results,
            workers=1,
            chunk_size=len(tuples) or 1,
            total_seconds=time.perf_counter() - started,
            evaluation_seconds=evaluation_seconds,
            fallback_reason=reason,
        )

    def _pooled(
        self,
        tuples: List[Tuple],
        limit: Optional[int],
        timeout_seconds: Optional[float],
        workers: int,
        snapshot_blob: bytes,
        evaluation_seconds: float,
    ) -> BatchResult:
        started = time.perf_counter()
        chunk_size = self._effective_chunk_size(len(tuples), workers)
        tasks = list(enumerate(tuples))
        version = self.session.version
        payloads = [
            (tasks[offset : offset + chunk_size], limit, timeout_seconds, version)
            for offset in range(0, len(tasks), chunk_size)
        ]
        context = multiprocessing.get_context(self.start_method)
        results: List[FactResult] = []
        with _FORK_LOCK:
            pool = context.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(snapshot_blob,),
            )
        with pool:
            # chunksize=1 keeps the pool's own batching out of the way:
            # each worker pulls exactly one payload at a time, which is
            # the work-stealing behavior for skewed closure sizes.
            for part in pool.imap_unordered(_run_chunk, payloads, chunksize=1):
                results.extend(part)
        results.sort(key=lambda r: r.index)
        return BatchResult(
            results=results,
            workers=workers,
            chunk_size=chunk_size,
            total_seconds=time.perf_counter() - started,
            evaluation_seconds=evaluation_seconds,
            snapshot_bytes=len(snapshot_blob),
        )
