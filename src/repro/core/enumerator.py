"""Incremental computation of the why-provenance (Section 5.2).

The :class:`WhyProvenanceEnumerator` ties the whole pipeline together:

1. evaluate the query and build the downward closure of ``R(t)``
   (time recorded as ``closure_seconds``, the dominating cost in the
   paper's Figure 1);
2. compile the Boolean formula ``phi_(t, D, Q)``
   (``formula_seconds``, negligible in the paper);
3. enumerate satisfying assignments with blocking clauses over the
   database facts of the closure, yielding one member of
   ``whyUN(t, D, Q)`` per model together with its *delay* — the time
   between consecutive members (the paper's Figure 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.engine import EvaluationResult, evaluate
from ..datalog.program import DatalogQuery
from ..provenance.grounding import DownwardClosure, FactNotDerivable, downward_closure
from ..sat.incremental import conflict_handoff, new_sat_solver
from .encoder import WhyProvenanceEncoding, encode_why_provenance


@dataclass
class MemberRecord:
    """One member of the why-provenance with its enumeration delay."""

    support: FrozenSet[Atom]
    delay_seconds: float
    index: int


@dataclass
class EnumerationReport:
    """Summary of a full enumeration run (one tuple)."""

    tuple_value: Tuple
    closure_seconds: float
    formula_seconds: float
    members: int
    delays: List[float]
    exhausted: bool
    timed_out: bool

    @property
    def build_seconds(self) -> float:
        """Closure plus formula construction — one bar of Figure 1."""
        return self.closure_seconds + self.formula_seconds


class WhyProvenanceEnumerator:
    """Enumerate ``whyUN(t, D, Q)`` incrementally via SAT.

    Parameters
    ----------
    acyclicity:
        ``"vertex-elimination"`` (paper default) or ``"transitive-closure"``.
    evaluation:
        Optional pre-computed evaluation of the query over the database
        (lets the harness amortize evaluation across tuples; the closure
        timing then excludes model computation, matching the paper, which
        also computes ``Q(D)`` separately before building closures).
    session:
        Optional :class:`~repro.core.session.ProvenanceSession` owning the
        ``(query, database)`` pair. The enumerator then sources the
        evaluation, the downward closure, and the CNF encoding from the
        session caches; ``closure_seconds`` / ``formula_seconds`` time the
        (possibly cached) session lookups, so amortization shows up in the
        Figure 1/3 numbers.
    """

    def __init__(
        self,
        query: DatalogQuery,
        database: Database,
        tup: Tuple,
        acyclicity: str = "vertex-elimination",
        evaluation: Optional[EvaluationResult] = None,
        session=None,
    ):
        self.query = query
        self.database = database
        self.tup = tuple(tup)
        fact = query.answer_atom(tup)
        if session is not None:
            evaluation = session.evaluation
        elif evaluation is None:
            # The paper computes Q(D) with the Datalog engine before any
            # per-tuple work; do the same so closure timing measures only
            # the downward-closure construction.
            evaluation = evaluate(query.program, database)

        start = time.perf_counter()
        if session is not None:
            self.closure: DownwardClosure = session.closure(fact)
        else:
            self.closure = downward_closure(
                query.program, database, fact, evaluation=evaluation
            )
        self.closure_seconds = time.perf_counter() - start

        start = time.perf_counter()
        if session is not None:
            self.encoding: WhyProvenanceEncoding = session.encoding(
                tup, acyclicity=acyclicity
            )
        else:
            self.encoding = encode_why_provenance(
                query, database, tup, closure=self.closure, acyclicity=acyclicity
            )
        self.formula_seconds = time.perf_counter() - start

        self._solver = new_sat_solver(
            session.sat_backend if session is not None else None
        )
        self._solver.add_cnf(self.encoding.cnf)
        if evaluation is not None:
            # Warm start: seed the phases with a minimal-rank derivation.
            self._solver.set_phases(self.encoding.phase_hints(evaluation.ranks))
        self._exhausted = False
        self._count = 0
        # Pooled verdict handoff: past a small conflict budget, ask the
        # session's warm incremental solver whether any model is left at
        # all, so this solver never pays the final UNSAT refutation (or
        # a hard intermediate one) alone. Verdicts are model-independent,
        # so consulting the pool cannot change which member comes next —
        # the enumeration stays byte-identical with pooling off.
        # Admission is lazy: facts whose solves stay under the budget
        # never touch the pool at all (no interning, no clause loading);
        # the blocking projections are kept so a late acquisition can be
        # brought up to date.
        self._handoff = (
            conflict_handoff()
            if session is not None and session.sat_mode == "pooled"
            else 0
        )
        self._session = session if self._handoff > 0 else None
        self._acyclicity = acyclicity
        self._pool = None
        self._blocked_projections: List[dict] = []

    # -- enumeration -----------------------------------------------------------

    def __iter__(self) -> Iterator[MemberRecord]:
        return self.enumerate()

    def enumerate(
        self,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Iterator[MemberRecord]:
        """Yield members without repetition until exhaustion/limit/timeout.

        The remaining wall-clock budget is threaded into every SAT call, so
        a single hard solve cannot overrun the timeout by much.
        """
        start = time.perf_counter()
        produced = 0
        while not self._exhausted:
            if limit is not None and produced >= limit:
                return
            budget = None
            if timeout_seconds is not None:
                budget = timeout_seconds - (time.perf_counter() - start)
                if budget <= 0:
                    return
            record = self._next_member(solve_timeout=budget)
            if record is None:
                return
            produced += 1
            yield record

    def _next_member(self, solve_timeout: Optional[float] = None) -> Optional[MemberRecord]:
        before = time.perf_counter()
        satisfiable = self._solve_step(solve_timeout)
        delay = time.perf_counter() - before
        if satisfiable is None:
            # Budget exhausted mid-solve: not exhausted, just out of time.
            return None
        if not satisfiable:
            self._exhausted = True
            return None
        model = self._solver.model()
        support = self.encoding.decode_support(model)
        record = MemberRecord(support=support, delay_seconds=delay, index=self._count)
        self._count += 1
        # Blocking clause over S: no later model may reproduce db(tau).
        blocking = [
            (-var if model[var] else var)
            for var in self.encoding.database_fact_vars.values()
        ]
        if not blocking or not self._solver.add_clause(blocking):
            self._exhausted = True
        if self._handoff > 0:
            # Keep the projection so the pooled context — acquired now
            # or later — keeps answering "is any *unseen* model left".
            projection = {
                fact: model[var]
                for fact, var in self.encoding.database_fact_vars.items()
            }
            self._blocked_projections.append(projection)
            if self._pool is not None:
                self._pool.block(projection)
        return record

    def _acquire_pool(self):
        """Admit this fact into the session pool, replaying past blocks."""
        if self._pool is None and self._session is not None:
            self._pool = self._session.pool_context(
                self.tup, acyclicity=self._acyclicity
            )
            if self._pool is None:
                # Unpoolable encoding: give up on the handoff for good.
                self._handoff = 0
                self._session = None
            else:
                for projection in self._blocked_projections:
                    self._pool.block(projection)
        return self._pool

    def _solve_step(self, solve_timeout: Optional[float]) -> Optional[bool]:
        """One SAT call, with the pooled conflict-budget handoff.

        Without a pooled session this is a plain (timeout-bounded)
        solve. With one, the enumeration solver first spends a small
        conflict budget; if that doesn't settle the question, the warm
        pooled solver answers the SAT/UNSAT verdict — UNSAT means this
        solver never pays the refutation, SAT means it resumes uncapped
        knowing a model exists (and the budget doubles, so a stream of
        hard satisfiable steps stops re-consulting). ``None`` is
        returned only on wall-clock timeout.
        """
        if self._handoff <= 0:
            return self._solver.solve(timeout_seconds=solve_timeout)
        start = time.perf_counter()
        capped = self._solver.solve(
            conflict_limit=self._handoff, timeout_seconds=solve_timeout
        )
        if capped is not None:
            return capped
        remaining = None
        if solve_timeout is not None:
            remaining = solve_timeout - (time.perf_counter() - start)
            if remaining <= 0:
                return None  # ran out of wall clock, not conflicts
        pool = self._acquire_pool()
        if pool is None:
            return self._solver.solve(timeout_seconds=remaining)
        verdict = pool.verdict(timeout_seconds=remaining)
        if verdict is None:
            return None  # the pooled solver ran out of the budget too
        if verdict is False:
            return False
        self._handoff *= 2
        if solve_timeout is not None:
            remaining = solve_timeout - (time.perf_counter() - start)
            if remaining <= 0:
                return None
        return self._solver.solve(timeout_seconds=remaining)

    # -- conveniences -------------------------------------------------------------

    def members(
        self,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> List[FrozenSet[Atom]]:
        """Materialize the member supports as a list."""
        return [rec.support for rec in self.enumerate(limit=limit, timeout_seconds=timeout_seconds)]

    def run(
        self,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> EnumerationReport:
        """Enumerate and summarize (the per-tuple unit of the experiments)."""
        delays: List[float] = []
        start = time.perf_counter()
        timed_out = False
        for record in self.enumerate(limit=limit, timeout_seconds=timeout_seconds):
            delays.append(record.delay_seconds)
        if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
            timed_out = not self._exhausted
        return EnumerationReport(
            tuple_value=self.tup,
            closure_seconds=self.closure_seconds,
            formula_seconds=self.formula_seconds,
            members=len(delays),
            delays=delays,
            exhausted=self._exhausted,
            timed_out=timed_out,
        )


def why_provenance_unambiguous(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    limit: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
    acyclicity: str = "vertex-elimination",
    session=None,
) -> FrozenSet[FrozenSet[Atom]]:
    """``whyUN(t, D, Q)`` computed via the SAT pipeline (Proposition 15).

    Returns the empty family when the tuple is not an answer. With a
    *session*, evaluation/closure/encoding come from its caches.
    """
    try:
        enumerator = WhyProvenanceEnumerator(
            query, database, tup, acyclicity=acyclicity, session=session
        )
    except FactNotDerivable:
        return frozenset()
    return frozenset(enumerator.members(limit=limit, timeout_seconds=timeout_seconds))
