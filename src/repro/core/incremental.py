"""Incremental view maintenance for provenance sessions.

A :class:`~repro.core.session.ProvenanceSession` is a materialized view
over one ``(Q, D)`` pair: the least model, the graph of rule instances,
per-fact downward closures, CNF encodings and warm SAT solvers are all
derived state. Before this module the only correct reaction to a database
update was :meth:`~repro.core.session.ProvenanceSession.invalidate` — a
from-scratch re-evaluation, re-grounding and re-encoding, even when the
update touched one fact in a corner of the database. That is exactly the
kind of redundancy the session was built to eliminate *within* one
database; this module eliminates it *across* updates, the way production
Datalog engines maintain materialized views incrementally.

:func:`update_session` is the engine room behind
:meth:`ProvenanceSession.update`. It

1. applies the delta to the session's database
   (:meth:`~repro.datalog.database.Database.apply`), obtaining the
   *effective* delta;
2. patches the recorded evaluation through
   :func:`~repro.datalog.engine.maintain_evaluation` — DRed-style
   deletion maintenance plus delta-semi-naive insertion rounds, both of
   which also patch the ground-rule instance trace so the invariant
   ``set(trace) == set(ground_instances(program, model))`` holds after
   any update sequence;
3. computes the *dirty set*: every fact the update could possibly have
   flowed into — the delta's facts, the model difference, and the heads
   of every added or removed instance;
4. drops exactly the cached closures whose node set intersects the dirty
   set (plus cached "not derivable" verdicts for facts that became
   derivable), and with them the dependent encodings, decision solvers
   and enumerators — everything else survives byte-identical;
5. bumps the session version so pickled evaluation snapshots (the
   parallel batch path) are recognizably stale and get rebuilt.

The correctness of step 4 rests on the canonical ordering of the GRI maps
(:func:`~repro.provenance.grounding.gri_maps_from_instances`): since the
maps depend only on the instance *set*, a retained closure is not merely
semantically equal to what a cold session would build — it is
structurally identical, so member enumeration order is preserved too.
``tests/test_incremental.py`` asserts exactly that, against cold sessions,
over random update sequences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, TYPE_CHECKING

from ..datalog.atoms import Atom
from ..datalog.database import Delta
from ..datalog.engine import MaintenanceResult, maintain_evaluation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import ProvenanceSession


@dataclass
class SessionUpdate:
    """The receipt of one :meth:`ProvenanceSession.update` call.

    Attributes
    ----------
    requested / effective:
        The delta the caller asked for, and the part of it that actually
        changed the database (redundant inserts/deletes are dropped by
        :meth:`~repro.datalog.database.Database.apply`).
    added_facts / removed_facts:
        The least-model difference, derived facts included.
    added_instances / removed_instances:
        How many ground rule instances entered / left the recorded trace.
    invalidated_closures / retained_closures:
        Cache accounting for the downward-closure layer: how many cached
        closures the dirty set forced out versus how many survive (and
        with them their encodings and warm solvers).
    overdeleted / rederived:
        DRed diagnostics forwarded from the engine: facts tentatively
        deleted, and the subset saved by an alternative derivation.
    version:
        The session version *after* the update (snapshots stamped with an
        older version are stale).
    seconds:
        Wall-clock cost of the whole update, the number the
        ``bench_incremental_updates`` benchmark compares against full
        re-evaluation.
    """

    requested: Delta
    effective: Delta
    added_facts: FrozenSet[Atom] = frozenset()
    removed_facts: FrozenSet[Atom] = frozenset()
    added_instances: int = 0
    removed_instances: int = 0
    invalidated_closures: int = 0
    retained_closures: int = 0
    overdeleted: int = 0
    rederived: int = 0
    version: int = 0
    seconds: float = 0.0

    def changed(self) -> bool:
        """Whether the update had any observable effect on the session."""
        return bool(self.effective)

    def dirty_fact_count(self) -> int:
        """Size of the model difference (added plus removed facts)."""
        return len(self.added_facts) + len(self.removed_facts)


def update_session(session: "ProvenanceSession", delta: Delta) -> SessionUpdate:
    """Apply *delta* to *session*, keeping every cache the update misses.

    See the module docstring for the five steps. Two fast paths: a
    session that has never evaluated only applies the delta and bumps its
    version (there is nothing to maintain — the first evaluation will see
    the updated database), and an update whose effective delta is empty
    returns immediately with every cache and the version untouched. A
    session evaluated *without* an instance trace
    (``record_instances=False``) has nothing to patch, so an effective
    update falls back to applying the delta plus a full
    :meth:`~repro.core.session.ProvenanceSession.invalidate` — correct,
    just not incremental.
    """
    started = time.perf_counter()
    if not isinstance(delta, Delta):
        raise TypeError(f"expected a Delta, got {type(delta).__name__}")
    # The session contract requires the database to stay over edb(Sigma)
    # (check_over_schema at construction); enforce the same for inserts.
    # Deleting an out-of-schema fact is a harmless no-op and stays legal.
    edb = session.query.program.edb
    offenders = sorted({f.pred for f in delta.inserted if f.pred not in edb})
    if offenders:
        raise ValueError(
            "delta inserts facts outside the extensional schema: "
            + ", ".join(offenders)
        )

    if session._evaluation is None:
        effective = session.database.apply(delta)
        if effective:
            session.version += 1
        return SessionUpdate(
            requested=delta,
            effective=effective,
            version=session.version,
            seconds=time.perf_counter() - started,
        )

    if session._evaluation.instances is None:
        # No recorded trace to maintain (the record_instances=False foil
        # mode): stay correct by falling back to full invalidation. The
        # check runs *before* the database mutates, so a session is never
        # left half-updated.
        effective = session.database.apply(delta)
        if not effective:
            return SessionUpdate(
                requested=delta,
                effective=effective,
                retained_closures=len(session._closures),
                version=session.version,
                seconds=time.perf_counter() - started,
            )
        invalidated = len(session._closures)
        session.stats.updates += 1
        session.stats.closure_invalidations += invalidated
        session.invalidate()  # bumps the version, drops the snapshot blob
        return SessionUpdate(
            requested=delta,
            effective=effective,
            invalidated_closures=invalidated,
            version=session.version,
            seconds=time.perf_counter() - started,
        )

    effective = session.database.apply(delta)
    if not effective:
        return SessionUpdate(
            requested=delta,
            effective=effective,
            retained_closures=len(session._closures),
            version=session.version,
            seconds=time.perf_counter() - started,
        )

    session.stats.updates += 1
    session.version += 1
    session._snapshot_cache = None
    result: MaintenanceResult = maintain_evaluation(
        session.query.program,
        session.database,
        session._evaluation,
        effective,
        engine=session.engine,
        plan_context=session.plan_context(),
    )
    session._evaluation = result.evaluation
    session._sync_plan_stats()

    dirty = _dirty_facts(effective, result)
    invalidated, retained = _invalidate_stale_caches(session, dirty)
    session.stats.closure_invalidations += invalidated
    # Warm SAT-pool entries follow the same retention rule as closures:
    # an entry whose loaded core the dirty set misses cannot contain a
    # stale clause, so its solver — learned clauses included — survives
    # the update.
    if session._sat_pool is not None:
        session._sat_pool.invalidate(dirty)

    # The GRI maps are pure functions of the (patched) instance set; if
    # the session had built them, refresh them now from the new trace —
    # an O(|gri| log |gri|) canonical rebuild, never a re-matching pass.
    if session._gri is not None:
        session._gri = None
        session._gri_views()

    return SessionUpdate(
        requested=delta,
        effective=effective,
        added_facts=result.added_facts,
        removed_facts=result.removed_facts,
        added_instances=len(result.added_instances),
        removed_instances=len(result.removed_instances),
        invalidated_closures=invalidated,
        retained_closures=retained,
        overdeleted=result.overdeleted,
        rederived=result.rederived,
        version=session.version,
        seconds=time.perf_counter() - started,
    )


def _dirty_facts(effective: Delta, result: MaintenanceResult) -> Set[Atom]:
    """Every fact a cached closure could have changed through.

    A closure is a reachability restriction of the GRI, so it changes iff
    a hyperedge was added or removed at one of its nodes, or one of its
    nodes toggled database membership (which moves the encoding's
    projection set ``S`` even when the model is unchanged). Both causes
    are covered by: the delta's own facts, the model difference, and the
    heads of every instance that entered or left the trace.
    """
    dirty: Set[Atom] = set(effective.inserted)
    dirty.update(effective.deleted)
    dirty.update(result.added_facts)
    dirty.update(result.removed_facts)
    dirty.update(ground.head for ground in result.added_instances)
    dirty.update(ground.head for ground in result.removed_instances)
    return dirty


def _invalidate_stale_caches(
    session: "ProvenanceSession", dirty: Set[Atom]
) -> "tuple[int, int]":
    """Drop closures intersecting *dirty* and their dependent artifacts.

    Returns ``(invalidated, retained)`` closure counts. A cached ``None``
    (fact known underivable) is dropped only when the fact entered the
    model. Encodings, decision solvers and enumerators are keyed under
    their root fact, so they fall with its closure entry.
    """
    stale_roots: Set[Atom] = set()
    retained = 0
    model = session._evaluation.model if session._evaluation is not None else None
    for fact, closure in list(session._closures.items()):
        if closure is None:
            stale = model is not None and fact in model
        else:
            stale = not dirty.isdisjoint(closure.nodes)
        if stale:
            stale_roots.add(fact)
            del session._closures[fact]
        else:
            retained += 1
    for key in [k for k in session._encodings if k[0] in stale_roots]:
        del session._encodings[key]
    for key in [k for k in session._decision_solvers if k[0] in stale_roots]:
        del session._decision_solvers[key]
    for key in [
        k
        for k in session._enumerators
        if session.query.answer_atom(k[0]) in stale_roots
    ]:
        del session._enumerators[key]
    return len(stale_roots), retained
