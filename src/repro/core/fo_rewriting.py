"""First-order rewriting for non-recursive queries (Theorem 9 / Lemma 12).

For a non-recursive Datalog query ``Q = (Sigma, R)`` the why-provenance
membership problem is first-order rewritable: membership of ``D'`` reduces
to evaluating a fixed FO query over ``D'`` alone. The rewriting is built
from the finite set ``cq(Q)`` of conjunctive queries induced by symbolic
Q-trees (Definition 10, Lemma 11).

Implementation notes
--------------------
* Symbolic Q-trees are enumerated by top-down SLD-style expansion with
  most-general unification; non-recursiveness bounds the expansion depth,
  so the enumeration terminates (this is exactly why Lemma 11 holds).
* The formula ``psi_phi = exists (phi1 & phi2 & phi3)`` demands an
  *injective* assignment whose witnesses cover ``D'`` exactly; variable
  identifications are delegated to other members of ``cq(Q)``. We evaluate
  the whole disjunction at once by matching symbolic trees with arbitrary
  (possibly non-injective) groundings that cover ``D'`` exactly — every
  identification of an induced CQ is itself an induced CQ (apply the
  identifying constant map to all node labels of the Q-tree), so the two
  formulations coincide.
* The minimal-depth variant (Theorem 36) adds the conjunct ``phi4``: the
  matched CQ's depth must not exceed the depth of any CQ merely
  *satisfiable* in ``D'``. Note that, as in the paper's formula, depth
  minimality is thereby judged against proof trees over ``D'``; the direct
  decider (:func:`repro.core.decision.decide_why_minimal_depth`) instead
  uses the rank over the full ``D``, faithful to Definition 26 — the two
  agree whenever the minimal depth is already achieved within ``D'``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery
from ..datalog.rules import Rule
from ..datalog.terms import Term, Variable, fresh_variable, is_variable
from ..datalog.unify import match_body


class RewritingBudgetExceeded(RuntimeError):
    """Raised when the symbolic-tree enumeration exceeds its budget."""


@dataclass(frozen=True)
class InducedCQ:
    """The CQ induced by a symbolic Q-tree (Definition 10).

    ``answer`` holds the root-atom arguments (free variables of the CQ, in
    canonical-form terminology the ``<c_i>``); ``atoms`` the canonical leaf
    atoms (a set — ``support(T)`` dedupes); ``depth`` the depth of the
    inducing tree (used by the minimal-depth rewriting).
    """

    answer: Tuple[Term, ...]
    atoms: Tuple[Atom, ...]
    depth: int

    def variables(self) -> Set[Variable]:
        """All variables of the induced conjunctive query."""
        out: Set[Variable] = set()
        for atom in self.atoms:
            out |= atom.variables()
        out |= {t for t in self.answer if is_variable(t)}
        return out


def _unify(pattern: Atom, target: Atom, subst: Dict[Variable, Term]) -> Optional[Dict[Variable, Term]]:
    """MGU of two (function-free) atoms modulo *subst*; None on clash."""
    if pattern.pred != target.pred or pattern.arity != target.arity:
        return None
    out = dict(subst)

    def resolve(term: Term) -> Term:
        while is_variable(term) and term in out:
            term = out[term]
        return term

    for a, b in zip(pattern.args, target.args):
        a = resolve(a)
        b = resolve(b)
        if a == b:
            continue
        if is_variable(a):
            out[a] = b
        elif is_variable(b):
            out[b] = a
        else:
            return None
    return out


def _apply(atom: Atom, subst: Dict[Variable, Term]) -> Atom:
    def resolve(term: Term) -> Term:
        while is_variable(term) and term in subst:
            term = subst[term]
        return term

    return Atom(atom.pred, tuple(resolve(t) for t in atom.args))


def enumerate_symbolic_trees(
    query: DatalogQuery,
    max_trees: int = 100_000,
) -> List[InducedCQ]:
    """All symbolic Q-tree shapes as induced CQs (realizes ``cq(Q)``).

    Raises :class:`RewritingBudgetExceeded` when the program has more than
    *max_trees* expansion shapes, and ``ValueError`` for recursive queries
    (the set would be infinite, Lemma 11 fails).
    """
    if not query.is_non_recursive():
        raise ValueError("FO rewriting requires a non-recursive query (Theorem 9)")
    program = query.program
    root = Atom(
        query.answer_predicate,
        tuple(fresh_variable("ans") for _ in range(query.answer_arity)),
    )
    results: List[InducedCQ] = []

    # A state is (pending intensional atoms with depths, leaf atoms with
    # depths, global substitution). Expansion picks the first pending atom
    # and branches over the applicable rules.
    def expand(
        pending: List[Tuple[Atom, int]],
        leaves: List[Tuple[Atom, int]],
        subst: Dict[Variable, Term],
    ) -> None:
        if len(results) > max_trees:
            raise RewritingBudgetExceeded(
                f"more than {max_trees} symbolic Q-trees; raise max_trees"
            )
        if not pending:
            answer = tuple(_apply(root, subst).args)
            atom_set = tuple(sorted({_apply(a, subst) for a, _ in leaves}, key=str))
            depth = max((d for _, d in leaves), default=0)
            results.append(InducedCQ(answer=answer, atoms=atom_set, depth=depth))
            return
        (atom, depth), rest = pending[0], pending[1:]
        current = _apply(atom, subst)
        for rule in program.rules_for(current.pred):
            renamed = rule.rename_apart(f"_r{depth}_{id(rule) % 9973}_{len(results)}")
            unified = _unify(renamed.head, current, subst)
            if unified is None:
                continue
            new_pending = list(rest)
            new_leaves = list(leaves)
            for body_atom in renamed.body:
                if body_atom.pred in program.idb:
                    new_pending.append((body_atom, depth + 1))
                else:
                    new_leaves.append((body_atom, depth + 1))
            expand(new_pending, new_leaves, unified)

    expand([(root, 0)], [], {})
    return results


class FORewriting:
    """The compiled FO rewriting ``Q_FO`` of a non-recursive query.

    Build once per query (data-independent, as AC0 membership demands),
    then evaluate against any candidate explanation ``D'`` and tuple.
    """

    def __init__(self, query: DatalogQuery, max_trees: int = 100_000):
        self.query = query
        self.cqs: List[InducedCQ] = enumerate_symbolic_trees(query, max_trees=max_trees)

    def __len__(self) -> int:
        return len(self.cqs)

    # -- Lemma 12: D' in why(t, D, Q)  iff  t in Q_FO(D') -------------------

    def check(self, subset: Iterable[Atom], tup: Tuple) -> bool:
        """Evaluate ``t in Q_FO(D')`` — membership w.r.t. arbitrary trees."""
        db = Database(subset)
        target = tuple(tup)
        return any(self._covering_match(cq, db, target) for cq in self.cqs)

    # -- Theorem 36: the minimal-depth rewriting ------------------------------

    def check_minimal_depth(self, subset: Iterable[Atom], tup: Tuple) -> bool:
        """Evaluate ``t in Q+_FO(D')`` (exact cover + the phi4 depth guard)."""
        db = Database(subset)
        target = tuple(tup)
        cover_depth: Optional[int] = None
        for cq in self.cqs:
            if self._covering_match(cq, db, target):
                if cover_depth is None or cq.depth < cover_depth:
                    cover_depth = cq.depth
        if cover_depth is None:
            return False
        any_depth = min(
            (cq.depth for cq in self.cqs if self._plain_match(cq, db, target)),
            default=cover_depth,
        )
        return cover_depth <= any_depth

    # -- matching ----------------------------------------------------------------

    def _base_substitution(self, cq: InducedCQ, target: Tuple) -> Optional[Dict[Variable, Term]]:
        if len(cq.answer) != len(target):
            return None
        subst: Dict[Variable, Term] = {}
        for term, value in zip(cq.answer, target):
            if is_variable(term):
                if term in subst and subst[term] != value:
                    return None
                subst[term] = value
            elif term != value:
                return None
        return subst

    def _covering_match(self, cq: InducedCQ, db: Database, target: Tuple) -> bool:
        """Is there a grounding of *cq* into *db* whose image is all of db?"""
        base = self._base_substitution(cq, target)
        if base is None:
            return False
        want = db.facts()
        if len(cq.atoms) < len(want):
            return False  # |image| <= |atoms|: cannot cover
        for subst in match_body(cq.atoms, db, base):
            image = frozenset(atom.ground(subst) for atom in cq.atoms)
            if image == want:
                return True
        return False

    def _plain_match(self, cq: InducedCQ, db: Database, target: Tuple) -> bool:
        """Is *cq* merely satisfiable in *db* with the answer bound to t?"""
        base = self._base_substitution(cq, target)
        if base is None:
            return False
        return next(iter(match_body(cq.atoms, db, base)), None) is not None


def rewrite(query: DatalogQuery, max_trees: int = 100_000) -> FORewriting:
    """Compile the FO rewriting of a non-recursive query."""
    return FORewriting(query, max_trees=max_trees)


def decide_why_via_rewriting(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    subset: Iterable[Atom],
    rewriting: Optional[FORewriting] = None,
) -> bool:
    """Membership for NRDat queries through the FO rewriting (Theorem 9).

    ``database`` is only used to validate ``D' subseteq D`` — the actual
    evaluation runs on ``D'`` alone, which is the whole point of AC0
    membership.
    """
    facts = frozenset(subset)
    for fact in facts:
        if fact not in database:
            raise ValueError(f"{fact} is not a fact of the input database")
    if rewriting is None:
        rewriting = FORewriting(query)
    return rewriting.check(facts, tuple(tup))
