"""Minimal explanations: the smallest members of the why-provenance.

The paper enumerates the why-provenance in an arbitrary order; in an
explanation setting users usually want the most parsimonious witnesses
first.  This module extracts them directly from the SAT encoding:

* :func:`smallest_member` — a cardinality-minimum member of
  ``whyUN(t, D, Q)``, found by repeatedly tightening a totalizer bound
  over the database-fact variables (the set ``S`` of Section 5.2);
* :func:`minimal_members` — all subset-minimal members, by the classic
  shrink-and-block loop (find a model, shrink its support to a local
  minimum under assumptions, then block every superset).

A useful fact makes these more than a convenience for unambiguous trees:
the subset-minimal members of ``why`` and of ``whyUN`` *coincide* (every
member of ``why`` contains a member of ``whyUN``: restrict the downward
closure to the member's facts and pick any compressed DAG inside it).
So the functions below also answer "what are the minimal explanations"
for arbitrary proof trees — a property the test suite checks against the
brute-force oracles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..datalog.database import Database
from ..datalog.program import DatalogQuery
from ..provenance.grounding import FactNotDerivable
from ..sat.cardinality import Totalizer
from ..sat.solver import CDCLSolver
from .encoder import WhyProvenanceEncoding, encode_why_provenance


@dataclass
class MinimalityReport:
    """Diagnostics for a minimal-explanation computation."""

    solve_calls: int = 0
    shrink_steps: int = 0
    members: List[FrozenSet] = field(default_factory=list)


def smallest_member(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    report: Optional[MinimalityReport] = None,
    session=None,
) -> Optional[FrozenSet]:
    """A cardinality-minimum member of ``whyUN(t, D, Q)`` (ties arbitrary).

    Returns ``None`` when the tuple is not an answer.  The search is a
    descending linear scan: each round adds one totalizer unit clause
    capping the support size below the incumbent, so the incumbent size
    strictly decreases and the loop runs at most ``|S|`` rounds.
    """
    encoding = _encode_or_none(query, database, tup, session)
    if encoding is None:
        return None
    projection = encoding.projection_variables()
    totalizer = Totalizer(encoding.cnf, projection)
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    if report is None:
        report = MinimalityReport()
    report.solve_calls += 1
    if solver.solve() is not True:
        return None
    best = encoding.decode_support(solver.model())
    while best:
        # Cap the count strictly below the incumbent and try again.
        solver.add_clause([-totalizer.outputs()[len(best) - 1]])
        report.solve_calls += 1
        if solver.solve() is not True:
            break
        best = encoding.decode_support(solver.model())
    report.members = [best]
    return best


def minimal_members(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    limit: Optional[int] = None,
    report: Optional[MinimalityReport] = None,
    session=None,
) -> List[FrozenSet]:
    """All subset-minimal members of ``whyUN(t, D, Q)`` (== those of ``why``).

    Implements the shrink-and-block loop: take any model, shrink its
    support to a subset-minimal member (each shrink step asks, under
    assumptions, for a member strictly inside the current one), report
    it, and add the blocking clause that eliminates every superset.  Each
    round therefore yields a *new* minimal member, and the loop ends when
    the formula becomes unsatisfiable.
    """
    encoding = _encode_or_none(query, database, tup, session)
    if encoding is None:
        return []
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    if report is None:
        report = MinimalityReport()
    results: List[FrozenSet] = []
    while limit is None or len(results) < limit:
        report.solve_calls += 1
        if solver.solve() is not True:
            break
        support = encoding.decode_support(solver.model())
        support = _shrink(encoding, solver, support, report)
        results.append(support)
        # Block this member and every superset of it.
        solver.add_clause(
            [-encoding.database_fact_vars[fact] for fact in support]
        )
        if not support:
            break  # the empty support subsumes everything
    report.members = list(results)
    return results


def _shrink(
    encoding: WhyProvenanceEncoding,
    solver: CDCLSolver,
    support: FrozenSet,
    report: MinimalityReport,
) -> FrozenSet:
    """Reduce *support* to a subset-minimal member of the encoded family."""
    outside_literals = {
        fact: -var for fact, var in encoding.database_fact_vars.items()
    }
    while True:
        activator = solver.new_var()
        # Under the activator: some fact of the current support is false...
        solver.add_clause(
            [-activator]
            + [-encoding.database_fact_vars[fact] for fact in support]
        )
        # ... while everything outside the support stays false.
        assumptions = [activator] + [
            literal for fact, literal in outside_literals.items() if fact not in support
        ]
        report.solve_calls += 1
        satisfiable = solver.solve(assumptions)
        if satisfiable is True:
            # Decode before retiring the activator: adding a clause
            # backtracks the solver and discards the assignment.
            smaller = encoding.decode_support(solver.model())
            solver.add_clause([-activator])
            report.shrink_steps += 1
            support = smaller
        else:
            solver.add_clause([-activator])  # retire this round's activator
            return support


def members_by_size(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    limit: Optional[int] = None,
    session=None,
):
    """Yield the members of ``whyUN(t, D, Q)`` in non-decreasing size.

    The plain enumerator of Section 5.2 yields members in whatever order
    the SAT solver stumbles on them; explanation interfaces usually want
    the parsimonious ones first.  A totalizer over the database-fact
    variables enforces "size exactly k" for k = 1, 2, ...; within each
    size class the usual blocking clauses enumerate without repetition.

    Yields ``(member, size)`` pairs; stops after *limit* members or when
    the formula is exhausted.
    """
    encoding = _encode_or_none(query, database, tup, session)
    if encoding is None:
        return
    projection = encoding.projection_variables()
    totalizer = Totalizer(encoding.cnf, projection)
    outputs = totalizer.outputs()
    solver = CDCLSolver()
    solver.add_cnf(encoding.cnf)
    produced = 0
    for size in range(1, len(projection) + 1):
        # Assume "at least size" and "not at least size + 1".
        assumptions = [outputs[size - 1]]
        if size < len(outputs):
            assumptions.append(-outputs[size])
        while limit is None or produced < limit:
            if solver.solve(assumptions) is not True:
                break
            member = encoding.decode_support(solver.model())
            yield member, size
            produced += 1
            solver.add_clause(
                [-encoding.database_fact_vars[fact] for fact in member]
                + [encoding.database_fact_vars[fact] for fact in projection_facts(encoding) if fact not in member]
            )
        if limit is not None and produced >= limit:
            return


def projection_facts(encoding: WhyProvenanceEncoding):
    """The database facts carrying projection variables (stable order)."""
    return sorted(encoding.database_fact_vars, key=repr)


def _encode_or_none(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    session=None,
) -> Optional[WhyProvenanceEncoding]:
    """Encode ``phi_(t, D, Q)`` or return ``None`` for non-answers.

    With a *session*, the downward closure comes from the session cache
    but the encoding itself is rebuilt: the minimality procedures splice
    totalizer clauses into the CNF, which must not leak into the session's
    shared encoding.
    """
    if session is not None:
        closure = session.closure_or_none(query.answer_atom(tup))
        if closure is None:
            return None
        return encode_why_provenance(
            query, database, tup, closure=closure, acyclicity=session.acyclicity
        )
    try:
        return encode_why_provenance(query, database, tup)
    except FactNotDerivable:
        return None
