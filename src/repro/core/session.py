"""A unified, cache-aware provenance pipeline over one ``(Program, Database)``.

The paper's pipeline — evaluate ``Sigma(D)``, build the graph of rule
instances, restrict to downward closures, encode to CNF, enumerate supports
via SAT — historically lived in four layers that each redid grounding work
from scratch: the engine fired every ground rule instance and threw the
instances away, the GRI re-matched them against the full model, and the
deciders/enumerators re-evaluated the program per target fact even when
dozens of facts shared one ``(D, Sigma)``.

:class:`ProvenanceSession` is the shared front door. It owns a single
``(DatalogQuery, Database)`` pair and memoizes every derived artifact:

* the :class:`~repro.datalog.engine.EvaluationResult`, computed **exactly
  once** with ``record_instances=True`` so the engine's own firings feed
  the GRI (no second matching pass);
* the full graph of rule instances, built in ``O(|gri|)`` from the
  recorded trace;
* per-fact downward closures (reachability restriction of the cached GRI);
* per-fact CNF encodings, plus warm incremental SAT solvers — one
  assumption-only solver per encoding for membership decisions, and one
  blocking-clause enumerator per tuple for incremental ``whyUN``
  enumeration.

All caches hang off one object, so the session can be invalidated
(:meth:`invalidate`), forked onto another database (:meth:`fork`), or — in
later work — snapshotted and distributed per shard.

Typical batch usage (one evaluation, many target facts)::

    session = ProvenanceSession(query, database)
    for tup in session.answers():
        members = session.why(tup, limit=10)
        verdict = session.decide(tup, subset)

The free functions of :mod:`repro.core.decision`,
:mod:`repro.core.enumerator` and :mod:`repro.core.minimal` remain as thin
non-cached wrappers; they accept an optional ``session=`` argument to opt
into the shared caches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database, check_over_schema
from ..datalog.engine import EvaluationResult, evaluate
from ..datalog.plans import PlanContext, resolve_engine
from ..datalog.program import DatalogQuery, Program
from ..provenance.grounding import (
    DownwardClosure,
    FactNotDerivable,
    HyperEdge,
    RuleInstance,
    _gri_maps,
    _restrict_to_reachable,
    downward_closure,
)
from ..sat.incremental import (
    PooledFactContext,
    SolverPool,
    resolve_sat_backend,
    resolve_sat_pool,
)
from ..sat.solver import CDCLSolver
from .encoder import WhyProvenanceEncoding, encode_why_provenance


@dataclass
class SessionStats:
    """Cache and work counters for one session (diagnostics / assertions).

    ``evaluations`` is the headline number: a session evaluates its
    ``(D, Sigma)`` pair at most once, no matter how many target facts are
    queried through it.
    """

    evaluations: int = 0
    gri_builds: int = 0
    closure_builds: int = 0
    closure_hits: int = 0
    encoding_builds: int = 0
    encoding_hits: int = 0
    sat_solver_builds: int = 0
    updates: int = 0
    closure_invalidations: int = 0
    #: Plan-cache gauges of the compiled engine (zero when interpreted):
    #: distinct (rule, delta-position) join plans compiled so far, and how
    #: often a cached plan was reused — across semi-naive rounds and
    #: across :meth:`ProvenanceSession.update` maintenance rounds.
    plans_compiled: int = 0
    plan_reuses: int = 0
    #: Incremental SAT-pool gauges (zero in ``fresh`` mode): residual-group
    #: admissions that found their root warm vs. had to load it, verdict
    #: solves answered by pooled solvers, entries dropped by updates, and
    #: learned clauses currently shared across the warm pool solvers.
    sat_pool_hits: int = 0
    sat_pool_misses: int = 0
    sat_pooled_verdicts: int = 0
    sat_pool_invalidations: int = 0
    sat_learned_shared: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and assertions)."""
        return {
            "evaluations": self.evaluations,
            "gri_builds": self.gri_builds,
            "closure_builds": self.closure_builds,
            "closure_hits": self.closure_hits,
            "encoding_builds": self.encoding_builds,
            "encoding_hits": self.encoding_hits,
            "sat_solver_builds": self.sat_solver_builds,
            "updates": self.updates,
            "closure_invalidations": self.closure_invalidations,
            "plans_compiled": self.plans_compiled,
            "plan_reuses": self.plan_reuses,
            "sat_pool_hits": self.sat_pool_hits,
            "sat_pool_misses": self.sat_pool_misses,
            "sat_pooled_verdicts": self.sat_pooled_verdicts,
            "sat_pool_invalidations": self.sat_pool_invalidations,
            "sat_learned_shared": self.sat_learned_shared,
        }


class ProvenanceSession:
    """Instrumented, memoizing pipeline over one ``(query, database)`` pair.

    Parameters
    ----------
    query:
        The Datalog query ``Q = (Sigma, R)``.
    database:
        The input database over ``edb(Sigma)`` (validated on construction).
    method:
        Evaluation strategy forwarded to the engine (``"seminaive"`` or
        ``"naive"``).
    record_instances:
        Keep the engine's instance trace (default). Turning it off makes
        closures fall back to demand-driven top-down grounding — useful
        as a foil when measuring the instrumented path.
    acyclicity:
        Default acyclicity encoding for CNF compilations.
    engine:
        Evaluation engine: ``"compiled"`` (join plans, the default),
        ``"interpreted"`` (generic matcher oracle), or ``None`` to
        consult ``REPRO_ENGINE``. Resolved once at construction, so a
        session's behavior never shifts under it mid-lifetime. The
        session owns a :class:`~repro.datalog.plans.PlanContext` shared
        by its initial evaluation and every :meth:`update`, dropped by
        :meth:`invalidate` along with the other caches.
    sat_mode:
        ``"pooled"`` (default) keeps a
        :class:`~repro.sat.incremental.SolverPool` of warm incremental
        solvers shared across the per-fact solves; ``"fresh"`` disables
        it (the ablation foil). ``None`` consults ``REPRO_SAT_POOL``.
        Resolved once at construction, like ``engine``.
    sat_backend:
        SAT engine for pooled/enumeration solvers: ``"pure"`` (the
        in-tree CDCL, default), ``"pysat"`` (an installed `python-sat`
        binding), or ``"auto"``. ``None`` consults ``REPRO_SAT_BACKEND``.
    """

    def __init__(
        self,
        query: DatalogQuery,
        database: Database,
        method: str = "seminaive",
        record_instances: bool = True,
        acyclicity: str = "vertex-elimination",
        engine: Optional[str] = None,
        sat_mode: Optional[str] = None,
        sat_backend: Optional[str] = None,
    ):
        check_over_schema(database, query.program.edb)
        self.query = query
        self.database = database
        self.method = method
        self.record_instances = record_instances
        self.acyclicity = acyclicity
        self.engine = resolve_engine(engine)
        self.sat_mode = resolve_sat_pool(sat_mode)
        self.sat_backend = resolve_sat_backend(sat_backend)
        self._sat_pool: Optional[SolverPool] = None
        self._plan_context: Optional[PlanContext] = None
        self.stats = SessionStats()
        #: Monotonic database-state counter: bumped by every effective
        #: :meth:`update` and every :meth:`invalidate`. Evaluation
        #: snapshots are stamped with it, so a snapshot (or a worker
        #: rehydrated from one) can tell it has gone stale.
        self.version = 0
        #: Per-session reentrant guard for multi-threaded callers. The
        #: session's caches are plain dicts, so concurrent cache fills
        #: race without it; methods do **not** take the lock themselves
        #: (single-threaded use stays free), callers that share a session
        #: across threads — the service dispatcher above all — wrap each
        #: operation in ``with session.lock:``. Reentrant because session
        #: methods call each other (``why`` → ``encoding`` → ``closure``).
        self.lock = threading.RLock()
        self._snapshot_cache: Optional[Tuple[int, bytes]] = None
        self._evaluation: Optional[EvaluationResult] = None
        self._gri: Optional[
            Tuple[Dict[Atom, List[HyperEdge]], Dict[Atom, List[RuleInstance]]]
        ] = None
        self._closures: Dict[Atom, Optional[DownwardClosure]] = {}
        self._encodings: Dict[Tuple[Atom, int, str], Optional[WhyProvenanceEncoding]] = {}
        self._decision_solvers: Dict[Tuple[Atom, int, str], CDCLSolver] = {}
        self._enumerators: Dict[Tuple[Tuple, str], "WhyProvenanceEnumerator"] = {}

    @classmethod
    def from_program(
        cls, program: Program, database: Database, answer: str, **kwargs
    ) -> "ProvenanceSession":
        """Build a session from a bare program plus answer predicate."""
        return cls(DatalogQuery(program, answer), database, **kwargs)

    # -- evaluation layer ---------------------------------------------------

    @property
    def evaluation(self) -> EvaluationResult:
        """The fixpoint evaluation, computed once and cached."""
        if self._evaluation is None:
            self.stats.evaluations += 1
            self._evaluation = evaluate(
                self.query.program,
                self.database,
                method=self.method,
                record_instances=self.record_instances,
                engine=self.engine,
                plan_context=self.plan_context(),
            )
            self._sync_plan_stats()
        return self._evaluation

    def plan_context(self) -> Optional[PlanContext]:
        """The session's plan cache (``None`` on the interpreted engine).

        Created lazily on the compiled engine and shared by the initial
        evaluation and every incremental update, so join plans compile
        once per (rule, delta-position) for the session's lifetime.
        """
        if self.engine != "compiled":
            return None
        if self._plan_context is None:
            self._plan_context = PlanContext()
        return self._plan_context

    def _sync_plan_stats(self) -> None:
        """Mirror the plan context's counters into :attr:`stats`."""
        context = self._plan_context
        if context is not None:
            self.stats.plans_compiled = context.compiled
            self.stats.plan_reuses = context.reuses

    @property
    def model(self) -> Database:
        """The least model ``Sigma(D)``."""
        return self.evaluation.model

    @property
    def ranks(self) -> Dict[Atom, int]:
        """``fact -> min-dag-depth`` (Proposition 28)."""
        return self.evaluation.ranks

    def answers(self) -> List[Tuple]:
        """``Q(D)``: the answer tuples, sorted for determinism."""
        return sorted(
            fact.args
            for fact in self.model.relation(self.query.answer_predicate)
        )

    def answer_fact(self, tup: Tuple) -> Atom:
        """``R(t)`` for this session's answer predicate."""
        return self.query.answer_atom(tup)

    def is_answer(self, tup: Tuple) -> bool:
        """Whether ``R(t)`` is in the least model (i.e. ``t in Q(D)``)."""
        return self.answer_fact(tup) in self.model

    def min_dag_depth(self, tup: Tuple) -> int:
        """Minimal proof-DAG depth of ``R(t)`` (raises if not an answer)."""
        fact = self.answer_fact(tup)
        if fact not in self.ranks:
            raise FactNotDerivable(f"{fact} is not derivable from the database")
        return self.ranks[fact]

    # -- grounding layer ----------------------------------------------------

    def _gri_views(
        self,
    ) -> Tuple[Dict[Atom, List[HyperEdge]], Dict[Atom, List[RuleInstance]]]:
        if self._gri is None:
            self.stats.gri_builds += 1
            self._gri = _gri_maps(self.query.program, self.database, self.evaluation)
        return self._gri

    def gri(self) -> Dict[Atom, List[HyperEdge]]:
        """The full graph of rule instances ``gri(D, Sigma)`` (hyperedge view)."""
        return self._gri_views()[0]

    def gri_instances(self) -> Dict[Atom, List[RuleInstance]]:
        """The full GRI in the multiset (rule-instance) view."""
        return self._gri_views()[1]

    def closure(self, fact: Atom) -> DownwardClosure:
        """``down(D, Sigma, fact)``, restricted from the cached GRI.

        Raises :class:`FactNotDerivable` when the fact is not in the model.
        """
        result = self.closure_or_none(fact)
        if result is None:
            raise FactNotDerivable(f"{fact} is not derivable; its closure is empty")
        return result

    def closure_or_none(self, fact: Atom) -> Optional[DownwardClosure]:
        """Like :meth:`closure` but returns ``None`` for underivable facts."""
        if fact in self._closures:
            self.stats.closure_hits += 1
            return self._closures[fact]
        if fact not in self.model:
            self._closures[fact] = None
            return None
        self.stats.closure_builds += 1
        if self.evaluation.instances is None:
            # No recorded trace (record_instances=False): stay on the
            # demand-driven top-down grounding so the session-as-foil
            # really measures the seed's algorithm, not a full-GRI
            # re-matching hybrid.
            closure = downward_closure(
                self.query.program, self.database, fact, evaluation=self.evaluation
            )
        else:
            edges, instances = self._gri_views()
            closure = _restrict_to_reachable(fact, edges, self.database, instances)
        self._closures[fact] = closure
        return closure

    def closure_for(self, tup: Tuple) -> DownwardClosure:
        """The downward closure of the answer fact ``R(t)``."""
        return self.closure(self.answer_fact(tup))

    # -- encoding layer -----------------------------------------------------

    def encoding(
        self,
        tup: Tuple,
        copies: int = 1,
        acyclicity: Optional[str] = None,
    ) -> WhyProvenanceEncoding:
        """The CNF ``phi_(t, D, Q)`` built over the cached closure.

        Raises :class:`FactNotDerivable` when the tuple is not an answer.
        """
        result = self.encoding_or_none(tup, copies=copies, acyclicity=acyclicity)
        if result is None:
            fact = self.answer_fact(tup)
            raise FactNotDerivable(f"{fact} is not derivable; its closure is empty")
        return result

    def encoding_or_none(
        self,
        tup: Tuple,
        copies: int = 1,
        acyclicity: Optional[str] = None,
    ) -> Optional[WhyProvenanceEncoding]:
        """Like :meth:`encoding` but returns ``None`` for non-answers."""
        fact = self.answer_fact(tup)
        acyc = self.acyclicity if acyclicity is None else acyclicity
        key = (fact, copies, acyc)
        if key in self._encodings:
            self.stats.encoding_hits += 1
            return self._encodings[key]
        closure = self.closure_or_none(fact)
        if closure is None:
            self._encodings[key] = None
            return None
        self.stats.encoding_builds += 1
        encoding = encode_why_provenance(
            self.query,
            self.database,
            tup,
            closure=closure,
            copies=copies,
            acyclicity=acyc,
        )
        self._encodings[key] = encoding
        return encoding

    def decision_solver(
        self,
        tup: Tuple,
        copies: int = 1,
        acyclicity: Optional[str] = None,
    ) -> Optional[CDCLSolver]:
        """A warm solver over ``phi_(t, D, Q)`` reserved for assumption queries.

        The solver never receives blocking clauses, so repeated membership
        decisions for the same tuple reuse its learned clauses instead of
        re-propagating the formula from scratch. Returns ``None`` when the
        tuple is not an answer.
        """
        encoding = self.encoding_or_none(tup, copies=copies, acyclicity=acyclicity)
        if encoding is None:
            return None
        acyc = self.acyclicity if acyclicity is None else acyclicity
        key = (self.answer_fact(tup), copies, acyc)
        solver = self._decision_solvers.get(key)
        if solver is None:
            self.stats.sat_solver_builds += 1
            solver = CDCLSolver()
            solver.add_cnf(encoding.cnf)
            self._decision_solvers[key] = solver
        return solver

    def sat_pool(self) -> Optional[SolverPool]:
        """The session's warm incremental solver pool (``None`` when fresh).

        Created lazily on the first pooled query; every per-fact decider
        and enumerator of the session funnels verdict solves through it,
        so learned clauses carry across the facts of a batch. Entries
        are invalidated per-update by dirty-set intersection (see
        :meth:`update`) and wholesale by :meth:`invalidate`.
        """
        if self.sat_mode != "pooled":
            return None
        if self._sat_pool is None:
            self._sat_pool = SolverPool(
                backend=self.sat_backend, stats_sink=self.stats
            )
        return self._sat_pool

    def pool_context(
        self, tup: Tuple, acyclicity: Optional[str] = None
    ) -> Optional[PooledFactContext]:
        """A pooled verdict context for ``phi_(t, D, Q)``, or ``None``.

        ``None`` when pooling is off (``sat_mode == "fresh"``), the tuple
        is not an answer, or the encoding is not poolable. The context is
        acquisition-scoped: its blocking clauses are private, so distinct
        enumerations of the same tuple never interfere.
        """
        pool = self.sat_pool()
        if pool is None:
            return None
        encoding = self.encoding_or_none(tup, acyclicity=acyclicity)
        if encoding is None:
            return None
        return pool.context(encoding)

    # -- enumeration layer --------------------------------------------------

    def enumerator(
        self,
        tup: Tuple,
        acyclicity: Optional[str] = None,
    ) -> "WhyProvenanceEnumerator":
        """A warm incremental enumerator for ``whyUN(t, D, Q)``.

        The enumerator is cached per tuple: successive ``enumerate`` calls
        continue where the previous left off (the blocking clauses live in
        the enumerator's solver). Use :meth:`why` for a fresh, repeatable
        enumeration. Raises :class:`FactNotDerivable` for non-answers.
        """
        from .enumerator import WhyProvenanceEnumerator

        acyc = self.acyclicity if acyclicity is None else acyclicity
        key = (tuple(tup), acyc)
        enumerator = self._enumerators.get(key)
        if enumerator is None:
            self.stats.sat_solver_builds += 1
            enumerator = WhyProvenanceEnumerator(
                self.query, self.database, tup, acyclicity=acyc, session=self
            )
            self._enumerators[key] = enumerator
        return enumerator

    def why(
        self,
        tup: Tuple,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        acyclicity: Optional[str] = None,
    ) -> List[FrozenSet[Atom]]:
        """Members of ``whyUN(t, D, Q)`` from a fresh enumeration pass.

        Repeatable (a new solver each call, over the cached encoding);
        returns the empty list when the tuple is not an answer.
        """
        from .enumerator import WhyProvenanceEnumerator

        acyc = self.acyclicity if acyclicity is None else acyclicity
        if self.encoding_or_none(tup, acyclicity=acyc) is None:
            return []
        self.stats.sat_solver_builds += 1
        enumerator = WhyProvenanceEnumerator(
            self.query, self.database, tup, acyclicity=acyc, session=self
        )
        return enumerator.members(limit=limit, timeout_seconds=timeout_seconds)

    # -- decision layer -----------------------------------------------------

    def decide(
        self,
        tup: Tuple,
        subset: Iterable[Atom],
        tree_class: str = "arbitrary",
    ) -> bool:
        """``D' in why^X(t, D, Q)?`` through the session caches.

        The default tree class is ``"arbitrary"`` (Definition 2), matching
        :func:`~repro.core.decision.decide_membership` so migrating calls
        to the session never flips verdicts silently.
        """
        from .decision import decide_membership

        return decide_membership(
            self.query, self.database, tup, subset, tree_class, session=self
        )

    def smallest_member(self, tup: Tuple) -> Optional[FrozenSet[Atom]]:
        """A cardinality-minimum member of ``whyUN(t, D, Q)``."""
        from .minimal import smallest_member

        return smallest_member(self.query, self.database, tup, session=self)

    def minimal_members(
        self, tup: Tuple, limit: Optional[int] = None
    ) -> List[FrozenSet[Atom]]:
        """All subset-minimal members of ``whyUN(t, D, Q)``."""
        from .minimal import minimal_members

        return minimal_members(self.query, self.database, tup, limit=limit, session=self)

    # -- batch layer ---------------------------------------------------------

    def explain_batch(
        self,
        tuples: Optional[Iterable[Tuple]] = None,
        workers: Optional[int] = 1,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        chunk_size: Optional[int] = None,
    ) -> "BatchResult":
        """Explain many target tuples, optionally across a worker pool.

        ``tuples=None`` serves every answer of ``Q(D)``. With
        ``workers > 1`` the batch is sharded over forked worker processes
        by :class:`~repro.core.parallel.ParallelProvenanceExplainer`: the
        session is evaluated once here in the parent, snapshotted, and
        each worker grounds/encodes/solves its share of the facts.
        Results come back in input order and are identical to the serial
        path (``workers=1``), which runs in-process through this
        session's caches. ``workers=None`` (or ``0``) uses one worker
        per core.
        """
        from .parallel import ParallelProvenanceExplainer

        explainer = ParallelProvenanceExplainer(
            self, workers=workers, chunk_size=chunk_size
        )
        return explainer.explain_batch(
            tuples=tuples, limit=limit, timeout_seconds=timeout_seconds
        )

    # -- lifecycle ----------------------------------------------------------

    def update(self, delta) -> "SessionUpdate":
        """Apply a :class:`~repro.datalog.database.Delta` incrementally.

        The surgical alternative to mutating the database and calling
        :meth:`invalidate`: the evaluation is patched in place
        (delta-semi-naive insertion rounds, DRed deletion maintenance —
        see :mod:`repro.core.incremental`), the GRI follows the patched
        trace, and only the closures / encodings / warm solvers of facts
        the update actually reaches are dropped. The session afterwards
        is observably identical — answers, witnesses, witness order — to
        a cold session over the updated database, but the evaluation
        counter never moves (``stats.evaluations`` stays at 1).

        Returns the :class:`~repro.core.incremental.SessionUpdate`
        receipt (what changed, what was invalidated, how long it took).
        """
        from .incremental import update_session

        return update_session(self, delta)

    def snapshot_bytes(self) -> bytes:
        """The pickled evaluation snapshot for this session's version.

        Cached per :attr:`version`: repeated batches over an unchanged
        database reuse one blob, and any :meth:`update` / :meth:`invalidate`
        makes the next call rebuild it (stale snapshots never escape the
        parent). Raises if some component is unpicklable — callers that
        can fall back to serial execution catch that.
        """
        from .parallel import EvaluationSnapshot

        cached = self._snapshot_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        blob = EvaluationSnapshot.capture(self).to_bytes()
        self._snapshot_cache = (self.version, blob)
        return blob

    def estimated_bytes(self) -> int:
        """Approximate resident cost of the session, for byte budgets.

        The service registry charges each admitted session against a byte
        budget; the measure is the pickled evaluation snapshot (query +
        database + recorded trace — the state that dominates a warm
        session's footprint), cached per :attr:`version` so repeated
        accounting is free. Falls back to a fact-count heuristic when
        some component refuses to pickle.
        """
        try:
            return len(self.snapshot_bytes())
        except Exception:
            return 128 * (len(self.database) + len(self.model))

    def mark_rehydrated(self) -> None:
        """Account the one evaluation a restored snapshot already paid.

        Sessions rebuilt from a persisted
        :class:`~repro.core.parallel.EvaluationSnapshot` (the durable
        warm-state tier of :mod:`repro.service.store`) carry an
        evaluation that was computed once in a previous process
        incarnation. This hook makes the restored session report that
        history — ``stats.evaluations == 1`` — so the "never re-evaluate"
        invariants (the incremental oracle path, the service benchmarks)
        hold across restarts exactly as they do within one process.
        Parallel batch workers deliberately do *not* call it: their
        restored sessions report 0 evaluations, which is what
        ``tests/test_parallel.py`` pins down.
        """
        self.stats.evaluations = 1

    def invalidate(self) -> None:
        """Drop every cached artifact (call after mutating the database)."""
        self.version += 1
        self._snapshot_cache = None
        self._evaluation = None
        self._gri = None
        self._plan_context = None
        self._closures.clear()
        self._encodings.clear()
        self._decision_solvers.clear()
        self._enumerators.clear()
        if self._sat_pool is not None:
            self._sat_pool.clear()

    def fork(self, database: Optional[Database] = None) -> "ProvenanceSession":
        """A fresh session over the same query (optionally a new database).

        The cheap way to explore what-if databases (fault injection,
        shard-local databases) without poisoning this session's caches.
        """
        return ProvenanceSession(
            self.query,
            self.database if database is None else database,
            method=self.method,
            record_instances=self.record_instances,
            acyclicity=self.acyclicity,
            engine=self.engine,
            sat_mode=self.sat_mode,
            sat_backend=self.sat_backend,
        )

    def __repr__(self) -> str:
        cached = "yes" if self._evaluation is not None else "no"
        return (
            f"ProvenanceSession(answer={self.query.answer_predicate!r}, "
            f"facts={len(self.database)}, evaluated={cached})"
        )
