"""The Boolean formula ``phi_(t, D, Q)`` (Section 5.1 / Appendix D.2).

Given a query ``Q = (Sigma, R)``, a database ``D``, and an answer tuple
``t``, the encoder compiles the downward closure of ``R(t)`` into a CNF

    ``phi = phi_graph  &  phi_root  &  phi_proof  &  phi_acyclic``

whose satisfying assignments are exactly the compressed DAGs of ``R(t)``
w.r.t. ``D`` and ``Sigma`` (Lemma 44); projecting a model onto the database
facts yields one member of ``whyUN(t, D, Q)`` (Proposition 15).

Variables (``copies = 1``, the paper's formula):

* ``x_alpha``  for every node ``alpha`` of the downward closure (``VN``),
* ``y_e``      for every hyperedge ``e = (alpha, T)``            (``VH``),
* ``z_(a,b)``  for every pair extractable from a hyperedge       (``VE``),
* auxiliary acyclicity variables                                  (``VC``).

Setting ``copies = k > 1`` generalizes the encoding: each intensional fact
may label up to ``k`` nodes of the guessed proof DAG, which makes the
models (compact) *arbitrary* proof DAGs rather than compressed ones. This
realizes the guess-and-check NP procedure of Proposition 5 with a bounded
guess: it is sound for membership in ``why`` for every ``k``, and complete
once ``k`` reaches the (large) polynomial bound of Lemma 8. ``copies = 1``
recovers ``whyUN`` exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database, check_over_schema
from ..datalog.program import DatalogQuery
from ..provenance.grounding import DownwardClosure, HyperEdge, downward_closure
from ..provenance.proof_dag import CompressedDAG
from ..sat.acyclicity import (
    AcyclicityStats,
    encode_transitive_closure,
    encode_vertex_elimination,
)
from ..sat.cnf import CNF, VariablePool

#: A node of the guessed proof DAG: (fact, copy index).
NodeKey = Tuple[Atom, int]


@dataclass
class EncodingStats:
    """Size and timing measurements for one encoding."""

    closure_nodes: int
    closure_edges: int
    node_variables: int
    hyperedge_variables: int
    edge_variables: int
    acyclicity: AcyclicityStats
    clauses: int
    build_seconds: float


class WhyProvenanceEncoding:
    """The compiled formula plus the key maps needed to use it.

    Attributes
    ----------
    cnf:
        The CNF formula ``phi_(t, D, Q)``.
    closure:
        The downward closure the formula was built from.
    database_fact_vars:
        ``fact -> x`` variable, for the database facts of the closure (the
        set ``S`` of Section 5.2 — projection / blocking domain).
    """

    def __init__(
        self,
        query: DatalogQuery,
        database: Database,
        tup: Tuple,
        closure: DownwardClosure,
        copies: int,
        acyclicity: str,
    ):
        self.query = query
        self.database = database
        self.tup = tuple(tup)
        self.closure = closure
        self.copies = copies
        self.acyclicity_method = acyclicity
        self.cnf = CNF()
        self.pool = VariablePool(self.cnf)
        self.node_vars: Dict[NodeKey, int] = {}
        self.hyperedge_vars: Dict[Tuple[NodeKey, HyperEdge], int] = {}
        self.instance_vars: Dict[Tuple[NodeKey, int], int] = {}
        self.edge_vars: Dict[Tuple[NodeKey, NodeKey], int] = {}
        self.database_fact_vars: Dict[Atom, int] = {}
        #: ``section -> (start, end)`` clause index spans of :attr:`cnf`,
        #: recorded by :meth:`_build` in emission order: ``"graph"``
        #: (phi_graph), ``"root"`` (phi_root), ``"proof"`` (phi_proof),
        #: ``"acyclic"`` (phi_acyclic). The incremental solver pool uses
        #: the split: graph/proof clauses are per-node structure shared
        #: verbatim by every encoding whose closure contains the node
        #: (downward closures agree on their common nodes), while
        #: root/acyclic clauses are specific to this root fact.
        self.clause_sections: Dict[str, Tuple[int, int]] = {}
        self.stats: Optional[EncodingStats] = None
        self._build()

    # -- construction -------------------------------------------------------

    def _copies_of(self, fact: Atom) -> int:
        """Database facts need one node (leaves are shareable); idb facts k."""
        if fact in self.database:
            return 1
        return self.copies

    def _build(self) -> None:
        start = time.perf_counter()
        closure = self.closure
        root_fact = closure.root

        # Allocate node variables.
        for fact in sorted(closure.nodes, key=str):
            for i in range(self._copies_of(fact)):
                self.node_vars[(fact, i)] = self.pool.var(("x", fact, i))
        # Sorted so the blocking-clause literal order (and with it the
        # solver's member discovery order) is identical in every process,
        # not dependent on frozenset hash order.
        for fact in sorted(closure.database_nodes, key=str):
            self.database_fact_vars[fact] = self.node_vars[(fact, 0)]
        root: NodeKey = (root_fact, 0)

        # Allocate choice and edge variables, then phi_proof. The two
        # regimes differ in how children are constrained:
        # * copies == 1 — the paper's formula: one y per hyperedge (set
        #   semantics, Definition 42), the chosen hyperedge dictates the
        #   outgoing z edges exactly;
        # * copies > 1 — compact *arbitrary* proof DAGs: one y per ground
        #   rule instance (multiset body), with per-position copy choices,
        #   so repeated body facts may point at different copies (the
        #   Example 4 phenomenon).
        if self.copies == 1:
            self._allocate_set_semantics()
        else:
            self._allocate_instance_semantics()

        incoming: Dict[NodeKey, List[int]] = {node: [] for node in self.node_vars}
        for (src, dst), z in self.edge_vars.items():
            incoming[dst].append(z)

        # phi_graph: an edge forces both endpoints.
        for (src, dst), z in self.edge_vars.items():
            self.cnf.implies(z, self.node_vars[src])
            self.cnf.implies(z, self.node_vars[dst])
        mark = len(self.cnf.clauses)
        self.clause_sections["graph"] = (0, mark)

        # phi_root: the root node is in, has no incoming edge; every other
        # selected node has at least one incoming edge.
        self.cnf.add_clause((self.node_vars[root],))
        for z in incoming[root]:
            self.cnf.add_clause((-z,))
        for node, x in self.node_vars.items():
            if node == root:
                continue
            self.cnf.add_clause((-x, *incoming[node]))
        self.clause_sections["root"] = (mark, len(self.cnf.clauses))
        mark = len(self.cnf.clauses)

        if self.copies == 1:
            self._emit_proof_set_semantics()
        else:
            self._emit_proof_instance_semantics()
        self.clause_sections["proof"] = (mark, len(self.cnf.clauses))
        mark = len(self.cnf.clauses)

        # phi_acyclic over the z-guarded arc graph.
        arc_vars = {
            (src, dst): z for (src, dst), z in self.edge_vars.items()
        }
        nodes = list(self.node_vars)
        if self.acyclicity_method == "vertex-elimination":
            acyc = encode_vertex_elimination(self.cnf, arc_vars, nodes)
        elif self.acyclicity_method == "transitive-closure":
            acyc = encode_transitive_closure(self.cnf, arc_vars, nodes)
        elif self.acyclicity_method == "none":
            acyc = AcyclicityStats("none", len(nodes), len(arc_vars), 0, 0)
        else:
            raise ValueError(f"unknown acyclicity method {self.acyclicity_method!r}")
        self.clause_sections["acyclic"] = (mark, len(self.cnf.clauses))

        self.stats = EncodingStats(
            closure_nodes=len(closure.nodes),
            closure_edges=closure.edge_count(),
            node_variables=len(self.node_vars),
            hyperedge_variables=len(self.hyperedge_vars),
            edge_variables=len(self.edge_vars),
            acyclicity=acyc,
            clauses=len(self.cnf.clauses),
            build_seconds=time.perf_counter() - start,
        )

    # -- copies == 1: the paper's set-semantics formula -----------------------

    def _allocate_set_semantics(self) -> None:
        closure = self.closure
        for fact in sorted(closure.nodes, key=str):
            edges = closure.hyperedges_by_head.get(fact, ())
            if not edges:
                continue
            node = (fact, 0)
            for edge in edges:
                self.hyperedge_vars[(node, edge)] = self.pool.var(("y", fact, 0, edge))
            targets: Set[Atom] = set()
            for edge in edges:
                targets |= edge.targets
            for target in sorted(targets, key=str):
                child = (target, 0)
                self.edge_vars[(node, child)] = self.pool.var(("z", node, child))

    def _emit_proof_set_semantics(self) -> None:
        closure = self.closure
        for fact in sorted(closure.nodes, key=str):
            edges = closure.hyperedges_by_head.get(fact, ())
            node = (fact, 0)
            if not edges:
                if fact not in self.database:
                    # Intensional node with no derivation: can never be used.
                    self.cnf.add_clause((-self.node_vars[node],))
                continue
            y_vars = [self.hyperedge_vars[(node, edge)] for edge in edges]
            self.cnf.add_clause((-self.node_vars[node], *y_vars))
            potential: Set[Atom] = set()
            for edge in edges:
                potential |= edge.targets
            for edge in edges:
                y = self.hyperedge_vars[(node, edge)]
                for target in sorted(potential, key=str):
                    z = self.edge_vars[(node, (target, 0))]
                    if target in edge.targets:
                        self.cnf.implies(y, z)
                    else:
                        self.cnf.add_clause((-y, -z))

    # -- copies > 1: compact arbitrary proof DAGs (multiset semantics) ---------

    def _allocate_instance_semantics(self) -> None:
        closure = self.closure
        self._position_vars: Dict[Tuple[NodeKey, int, int, int], int] = {}
        for fact in sorted(closure.nodes, key=str):
            instances = closure.instances_by_head.get(fact, ())
            if not instances:
                continue
            for i in range(self._copies_of(fact)):
                node = (fact, i)
                for g_idx, instance in enumerate(instances):
                    self.instance_vars[(node, g_idx)] = self.pool.var(
                        ("g", fact, i, g_idx)
                    )
                    for p, body_fact in enumerate(instance.body):
                        for j in range(self._copies_of(body_fact)):
                            self._position_vars[(node, g_idx, p, j)] = self.pool.var(
                                ("c", fact, i, g_idx, p, j)
                            )
                            child = (body_fact, j)
                            if (node, child) not in self.edge_vars:
                                self.edge_vars[(node, child)] = self.pool.var(
                                    ("z", node, child)
                                )

    def _emit_proof_instance_semantics(self) -> None:
        closure = self.closure
        # Which position variables can justify an edge (node -> child)?
        edge_supporters: Dict[Tuple[NodeKey, NodeKey], List[int]] = {
            key: [] for key in self.edge_vars
        }
        for fact in sorted(closure.nodes, key=str):
            instances = closure.instances_by_head.get(fact, ())
            if not instances:
                if fact not in self.database:
                    for i in range(self._copies_of(fact)):
                        self.cnf.add_clause((-self.node_vars[(fact, i)],))
                continue
            for i in range(self._copies_of(fact)):
                node = (fact, i)
                g_vars = [
                    self.instance_vars[(node, g_idx)] for g_idx in range(len(instances))
                ]
                # A selected node fires exactly one ground instance.
                self.cnf.add_clause((-self.node_vars[node], *g_vars))
                for a in range(len(g_vars)):
                    self.cnf.implies(g_vars[a], self.node_vars[node])
                    for b in range(a + 1, len(g_vars)):
                        self.cnf.add_clause((-g_vars[a], -g_vars[b]))
                for g_idx, instance in enumerate(instances):
                    g = g_vars[g_idx]
                    for p, body_fact in enumerate(instance.body):
                        c_vars = [
                            self._position_vars[(node, g_idx, p, j)]
                            for j in range(self._copies_of(body_fact))
                        ]
                        # Each body position picks exactly one child copy.
                        self.cnf.add_clause((-g, *c_vars))
                        for a in range(len(c_vars)):
                            self.cnf.implies(c_vars[a], g)
                            for b in range(a + 1, len(c_vars)):
                                self.cnf.add_clause((-c_vars[a], -c_vars[b]))
                        for j, c in enumerate(c_vars):
                            child = (body_fact, j)
                            self.cnf.implies(c, self.edge_vars[(node, child)])
                            edge_supporters[(node, child)].append(c)
        # No stray edges: every edge must be justified by some position.
        for key, z in self.edge_vars.items():
            self.cnf.add_clause((-z, *edge_supporters[key]))
        # Symmetry breaking between interchangeable copies of a fact.
        for fact in sorted(closure.nodes, key=str):
            for i in range(1, self._copies_of(fact)):
                self.cnf.implies(
                    self.node_vars[(fact, i)], self.node_vars[(fact, i - 1)]
                )

    # -- clause sections (incremental solver pool) ---------------------------

    def shared_core_clauses(self) -> List[Tuple[int, ...]]:
        """The clauses shareable across encodings: phi_graph + phi_proof.

        Both sections are unions of per-node clause groups, and a node's
        group is a function of the node's own hyperedges and database
        membership only. Downward closures are downward-closed, so two
        encodings containing the same node carry *identical* groups for
        it — the :class:`~repro.sat.incremental.SolverPool` adds each
        group to its warm solver once, unguarded, and every clause stays
        inert for encodings missing the node (each carries a negative
        literal on a node-local variable, so the all-false extension
        satisfies it).
        """
        clauses: List[Tuple[int, ...]] = []
        for section in ("graph", "proof"):
            lo, hi = self.clause_sections[section]
            clauses.extend(self.cnf.clauses[lo:hi])
        return clauses

    def residual_clauses(self) -> List[Tuple[int, ...]]:
        """The root-specific clauses: phi_root + phi_acyclic.

        These mention the root choice and the closure-relative incoming
        edge sets (phi_root) or anonymous auxiliary variables
        (phi_acyclic), so they differ between encodings and must be
        activation-literal-guarded when loaded into a shared solver.
        """
        clauses: List[Tuple[int, ...]] = []
        for section in ("root", "acyclic"):
            lo, hi = self.clause_sections[section]
            clauses.extend(self.cnf.clauses[lo:hi])
        return clauses

    # -- model decoding ---------------------------------------------------------

    def projection_variables(self) -> List[int]:
        """The variables of the set ``S`` (Section 5.2), sorted."""
        return sorted(self.database_fact_vars.values())

    def decode_support(self, model: Mapping[int, bool]) -> FrozenSet[Atom]:
        """``db(tau)``: the database facts selected by a model."""
        return frozenset(
            fact for fact, var in self.database_fact_vars.items() if model.get(var, False)
        )

    def decode_compressed_dag(self, model: Mapping[int, bool]) -> CompressedDAG:
        """Reconstruct the compressed DAG described by a ``copies=1`` model."""
        if self.copies != 1:
            raise ValueError("compressed DAG decoding requires copies=1")
        choice: Dict[Atom, FrozenSet[Atom]] = {}
        for (node, edge), y in self.hyperedge_vars.items():
            if model.get(y, False) and model.get(self.node_vars[node], False):
                choice[node[0]] = edge.targets
        return CompressedDAG(self.closure.root, choice)

    def phase_hints(self, ranks: Mapping[Atom, int]) -> Dict[int, bool]:
        """Warm-start phases describing a minimal-rank compressed DAG.

        For every intensional fact of the closure, pick a hyperedge whose
        targets all have strictly smaller rank (one exists by the
        definition of the immediate-consequence stage, Prop. 28); the
        resulting choice function is acyclic by construction. Variables of
        the induced sub-DAG are hinted true, everything else false, so a
        phase-following SAT solver finds this model almost
        propagation-only. Only meaningful for ``copies == 1``.
        """
        hints: Dict[int, bool] = {var: False for var in range(1, self.cnf.num_vars + 1)}
        if self.copies != 1:
            return {}
        choice: Dict[Atom, HyperEdge] = {}
        for fact, edges in self.closure.hyperedges_by_head.items():
            if not edges or fact not in ranks:
                continue
            best: Optional[HyperEdge] = None
            for edge in edges:
                if all(ranks.get(t, 10 ** 9) < ranks[fact] for t in edge.targets):
                    if best is None or len(edge.targets) < len(best.targets):
                        best = edge
            if best is not None:
                choice[fact] = best
        # Walk the chosen sub-DAG from the root.
        visited: Set[Atom] = set()
        stack = [self.closure.root]
        while stack:
            fact = stack.pop()
            if fact in visited:
                continue
            visited.add(fact)
            node = (fact, 0)
            if node in self.node_vars:
                hints[self.node_vars[node]] = True
            edge = choice.get(fact)
            if edge is None:
                continue
            y = self.hyperedge_vars.get((node, edge))
            if y is not None:
                hints[y] = True
            for target in edge.targets:
                z = self.edge_vars.get((node, (target, 0)))
                if z is not None:
                    hints[z] = True
                stack.append(target)
        return hints

    def membership_assumptions(self, subset: FrozenSet[Atom]) -> Optional[List[int]]:
        """Assumption literals forcing ``db(tau) == subset``.

        Returns ``None`` when *subset* mentions a database fact outside the
        downward closure — such a fact can never be a leaf, so membership
        is immediately false.
        """
        if not subset <= frozenset(self.database_fact_vars):
            return None
        assumptions: List[int] = []
        for fact, var in self.database_fact_vars.items():
            assumptions.append(var if fact in subset else -var)
        return assumptions


def encode_why_provenance(
    query: DatalogQuery,
    database: Database,
    tup: Tuple,
    closure: Optional[DownwardClosure] = None,
    copies: int = 1,
    acyclicity: str = "vertex-elimination",
) -> WhyProvenanceEncoding:
    """Build ``phi_(t, D, Q)`` (computing the downward closure if needed).

    Raises :class:`~repro.provenance.grounding.FactNotDerivable` when the
    tuple is not an answer — the why-provenance is empty in that case.
    """
    if copies < 1:
        raise ValueError("copies must be at least 1")
    check_over_schema(database, query.program.edb)
    fact = query.answer_atom(tup)
    if closure is None:
        closure = downward_closure(query.program, database, fact)
    elif closure.root != fact:
        raise ValueError(f"closure is rooted at {closure.root}, expected {fact}")
    return WhyProvenanceEncoding(query, database, tup, closure, copies, acyclicity)
