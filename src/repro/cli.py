"""Command-line interface.

Eleven subcommands expose the library to shell users::

    python -m repro eval     program.dl data.dl --answer tc
    python -m repro why      program.dl data.dl --answer tc --tuple a,b
    python -m repro batch    program.dl data.dl --answer tc \
                             --tuples "a,b;b,c"   (or --all-answers)
    python -m repro decide   program.dl data.dl --answer tc --tuple a,b \
                             --subset subset.dl --tree-class unambiguous
    python -m repro dimacs   program.dl data.dl --answer tc --tuple a,b
    python -m repro minimal  program.dl data.dl --answer tc --tuple a,b
    python -m repro semiring program.dl data.dl --answer tc --tuple a,b \
                             --semiring tropical
    python -m repro explain  program.dl data.dl --answer tc --tuple a,b
    python -m repro serve    --port 7463            (or --stdio)
    python -m repro client   --connect localhost:7463 requests.ndjson
    python -m repro fuzz     --seeds 0:50 --family all --json report.json

``batch`` is the session-backed mode: one
:class:`~repro.core.session.ProvenanceSession` evaluates ``(D, Sigma)``
exactly once and serves every target tuple from the shared instrumented
grounding, instead of re-evaluating per tuple like repeated ``why`` calls
would. With ``--workers N`` the tuples are sharded across a forked
worker pool (``--workers 0`` = one per core) after that single
evaluation; results are identical to the serial run, in the same order.
With ``--watch`` the session stays live after the first serve: delta
lines (``+e(a, b).`` / ``-e(a, b).``) read from stdin are applied through
incremental view maintenance (:meth:`ProvenanceSession.update`) on each
blank line, and the batch is re-served — the evaluation is patched, never
redone.

``fuzz`` is the cross-stack differential oracle: seeded synthetic
workload instances (:mod:`repro.scenarios.synthetic`) are run through
every execution path — cold and warm sessions, the forked batch pool,
incremental maintenance, the service daemon over TCP — and the answers,
witnesses, and witness order must match byte for byte
(:mod:`repro.testing.oracle`); a divergence is shrunk to a minimal
failing ``(program, database, deltas)`` repro.

``serve`` runs the provenance service daemon — live sessions keyed by a
``(program, database)`` content digest behind the newline-delimited JSON
protocol of :mod:`repro.service` — over a TCP socket (``--port``, 0 for
ephemeral) or stdin/stdout (``--stdio``). ``client`` is its scripting
counterpart: it reads request objects (one JSON per line) from a file or
stdin, sends each to a running daemon, and prints one response per line.
See ``docs/SERVICE.md`` for the protocol.

Programs and databases use the textual Datalog syntax of
:mod:`repro.datalog.parser`; tuples are comma-separated constants (decimal
literals are read as integers, everything else as strings).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence, Tuple

from .baselines.souffle_style import explain_answer
from .core.decision import TREE_CLASSES, decide_membership
from .core.encoder import encode_why_provenance
from .core.enumerator import WhyProvenanceEnumerator
from .core.minimal import minimal_members, smallest_member
from .core.session import ProvenanceSession
from .datalog.database import Database
from .datalog.engine import answers
from .datalog.parser import parse_database, parse_program
from .datalog.program import DatalogQuery
from .provenance.grounding import FactNotDerivable
from .semiring import SEMIRINGS, get_semiring, semiring_provenance


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _load_query(args: argparse.Namespace) -> Tuple[DatalogQuery, Database]:
    program = parse_program(_read(args.program))
    database = Database(parse_database(_read(args.database)))
    answer = args.answer
    if answer is None:
        intensional = sorted(program.idb)
        if len(intensional) != 1:
            raise SystemExit(
                f"--answer required: program has intensional predicates {intensional}"
            )
        answer = intensional[0]
    return DatalogQuery(program, answer), database


def parse_tuple(text: str) -> Tuple:
    """Parse ``a,b,3`` into ``("a", "b", 3)``."""
    parts = [part.strip() for part in text.split(",")] if text else []
    values: List = []
    for part in parts:
        if part.lstrip("-").isdigit():
            values.append(int(part))
        else:
            values.append(part)
    return tuple(values)


def _cmd_eval(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    result = sorted(answers(query, database))
    for tup in result:
        inner = ", ".join(str(t) for t in tup)
        print(f"{query.answer_predicate}({inner})")
    print(f"% {len(result)} answers", file=sys.stderr)
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    tup = parse_tuple(args.tuple)
    if args.order == "size":
        from .core.minimal import members_by_size

        count = 0
        for member, size in members_by_size(query, database, tup, limit=args.limit):
            facts = " ".join(sorted(f"{fact}." for fact in member))
            print(f"member {count} (size {size}): {facts}")
            count += 1
        if count == 0:
            print("% tuple is not an answer: empty why-provenance", file=sys.stderr)
            return 1
        print(f"% {count} members (smallest first)", file=sys.stderr)
        return 0
    try:
        enumerator = WhyProvenanceEnumerator(query, database, tup)
    except FactNotDerivable:
        print("% tuple is not an answer: empty why-provenance", file=sys.stderr)
        return 1
    count = 0
    for record in enumerator.enumerate(limit=args.limit, timeout_seconds=args.timeout):
        facts = " ".join(sorted(f"{fact}." for fact in record.support))
        print(f"member {record.index}: {facts}")
        count += 1
    print(
        f"% {count} members "
        f"(closure {enumerator.closure_seconds:.3f}s, "
        f"formula {enumerator.formula_seconds:.3f}s)",
        file=sys.stderr,
    )
    return 0


def _print_fact_result(result, answer_predicate: str) -> bool:
    """Print one batch result; return ``True`` if it counts as a failure."""
    inner = ", ".join(str(t) for t in result.tuple_value)
    label = f"{answer_predicate}({inner})"
    if result.error is not None:
        print(f"{label}: invalid tuple ({result.error})")
        return True
    if not result.is_answer:
        print(f"{label}: not an answer")
        return True
    print(f"{label}: {len(result.members)} members")
    for index, member in enumerate(result.members):
        facts = " ".join(sorted(f"{fact}." for fact in member))
        print(f"  member {index}: {facts}")
    return False


def _serve_batch(session: ProvenanceSession, tuples, args: argparse.Namespace) -> int:
    """Serve one batch through *session*; return the number of failures."""
    answer_predicate = session.query.answer_predicate
    failures = 0
    if args.workers == 1:
        # Serial: stream each tuple's members as they are enumerated
        # (the same per-fact routine the workers run, printed eagerly)
        # instead of materializing the whole batch before the first line.
        from .core.parallel import explain_fact

        for index, tup in enumerate(tuples):
            result = explain_fact(
                session, tup, index=index,
                limit=args.limit, timeout_seconds=args.timeout,
            )
            failures += _print_fact_result(result, answer_predicate)
        stats = session.stats
        print(
            f"% {len(tuples)} tuples served by {stats.evaluations} evaluation(s), "
            f"{stats.gri_builds} GRI build(s), {stats.closure_builds} closure(s)",
            file=sys.stderr,
        )
        return failures
    batch = session.explain_batch(
        tuples,
        workers=args.workers,  # 0 = one per core (explainer convention)
        limit=args.limit,
        timeout_seconds=args.timeout,
        chunk_size=args.chunk_size,
    )
    for result in batch.results:
        failures += _print_fact_result(result, answer_predicate)
    if batch.parallel:
        print(
            f"% {len(tuples)} tuples sharded over {batch.workers} worker(s) "
            f"(chunk size {batch.chunk_size}, snapshot {batch.snapshot_bytes} bytes, "
            f"{batch.total_seconds:.3f}s)",
            file=sys.stderr,
        )
    else:
        stats = session.stats
        if batch.fallback_reason is not None:
            print(f"% serial fallback: {batch.fallback_reason}", file=sys.stderr)
        print(
            f"% {len(tuples)} tuples served by {stats.evaluations} evaluation(s), "
            f"{stats.gri_builds} GRI build(s), {stats.closure_builds} closure(s)",
            file=sys.stderr,
        )
    return failures


def _watch_loop(session: ProvenanceSession, tuples, args: argparse.Namespace) -> int:
    """The ``batch --watch`` read-update-reserve loop; returns failures.

    Reads delta lines from stdin — the shared textual delta format of
    :func:`~repro.datalog.io.parse_delta_line`, the same one the service
    daemon's ``update`` requests carry: ``+fact.`` stages an insertion,
    ``-fact.`` a deletion (several facts per line are allowed). A blank
    line commits the staged delta through
    :meth:`~repro.core.session.ProvenanceSession.update` — incremental
    maintenance, not re-evaluation — and re-serves the batch; end of
    input commits any remaining staged facts and exits. Unparsable lines
    are reported on stderr and skipped.
    """
    from .datalog.database import Delta
    from .datalog.io import parse_delta_line

    failures = 0
    inserted: List = []
    deleted: List = []

    def commit() -> int:
        nonlocal inserted, deleted
        if not inserted and not deleted:
            return 0
        try:
            delta = Delta(inserted=frozenset(inserted), deleted=frozenset(deleted))
        except ValueError as exc:
            print(f"% update rejected: {exc}", file=sys.stderr)
            inserted, deleted = [], []
            return 0
        inserted, deleted = [], []
        try:
            # update() validates (schema, types) before touching the
            # database, so a rejection leaves the session untouched and
            # the watch loop alive.
            receipt = session.update(delta)
        except ValueError as exc:
            print(f"% update rejected: {exc}", file=sys.stderr)
            return 0
        print(
            f"% update v{receipt.version}: {len(receipt.effective.inserted)} inserted, "
            f"{len(receipt.effective.deleted)} deleted; "
            f"{receipt.dirty_fact_count()} model facts changed, "
            f"{receipt.invalidated_closures} closure(s) invalidated, "
            f"{receipt.retained_closures} retained ({receipt.seconds:.3f}s)",
            file=sys.stderr,
        )
        targets = session.answers() if args.all_answers else tuples
        return _serve_batch(session, targets, args)

    for raw in sys.stdin:
        try:
            parsed = parse_delta_line(raw)
        except ValueError as exc:
            print(f"% ignored watch line ({exc}): {raw.strip()}", file=sys.stderr)
            continue
        if parsed is None:
            failures += commit()
            continue
        sign, facts = parsed
        (inserted if sign == "+" else deleted).extend(facts)
    failures += commit()
    return failures


def _cmd_batch(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    session = ProvenanceSession(query, database)
    if args.all_answers:
        tuples = session.answers()
    else:
        tuples = [parse_tuple(part) for part in args.tuples.split(";") if part.strip()]
    failures = _serve_batch(session, tuples, args)
    if args.watch:
        failures += _watch_loop(session, tuples, args)
    return 1 if failures else 0


def _cmd_decide(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    tup = parse_tuple(args.tuple)
    subset = parse_database(_read(args.subset))
    verdict = decide_membership(query, database, tup, subset, args.tree_class)
    print("MEMBER" if verdict else "NOT-MEMBER")
    return 0 if verdict else 1


def _cmd_dimacs(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    tup = parse_tuple(args.tuple)
    try:
        encoding = encode_why_provenance(
            query, database, tup, acyclicity=args.acyclicity
        )
    except FactNotDerivable:
        print("% tuple is not an answer: no formula", file=sys.stderr)
        return 1
    sys.stdout.write(encoding.cnf.to_dimacs())
    projection = " ".join(str(v) for v in encoding.projection_variables())
    print(f"c projection {projection}", file=sys.stderr)
    return 0


def _format_member(member) -> str:
    return " ".join(sorted(f"{fact}." for fact in member))


def _cmd_minimal(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    tup = parse_tuple(args.tuple)
    smallest = smallest_member(query, database, tup)
    if smallest is None:
        print("% tuple is not an answer: empty why-provenance", file=sys.stderr)
        return 1
    print(f"smallest ({len(smallest)} facts): {_format_member(smallest)}")
    members = minimal_members(query, database, tup, limit=args.limit)
    for index, member in enumerate(members):
        print(f"minimal {index}: {_format_member(member)}")
    print(f"% {len(members)} subset-minimal members", file=sys.stderr)
    return 0


def _cmd_semiring(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    tup = parse_tuple(args.tuple)
    semiring = get_semiring(args.semiring)
    value = semiring_provenance(query, database, tup, semiring)
    if args.semiring in ("why", "min-why"):
        for index, member in enumerate(
            sorted(value, key=lambda m: (len(m), sorted(map(str, m))))
        ):
            print(f"member {index}: {_format_member(member)}")
        print(f"% {len(value)} members", file=sys.stderr)
    elif args.semiring == "lineage":
        rendered = "0" if value is None else " ".join(sorted(f"{f}." for f in value))
        print(rendered)
    else:
        print(value)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    query, database = _load_query(args)
    tup = parse_tuple(args.tuple)
    tree = explain_answer(query, database, tup)
    if tree is None:
        print("% tuple is not an answer: nothing to explain", file=sys.stderr)
        return 1
    print(tree.pretty())
    print(
        f"% depth {tree.depth()}, support size {len(tree.support())}",
        file=sys.stderr,
    )
    return 0


def _parse_seed_range(text: str) -> List[int]:
    """Parse ``--seeds``: ``"A:B"`` is the half-open range, ``"N"`` is ``[N]``."""
    if ":" in text:
        lo_text, _, hi_text = text.partition(":")
        try:
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise SystemExit(f"bad --seeds {text!r}; expected N or LO:HI")
        if hi <= lo:
            raise SystemExit(f"bad --seeds {text!r}; need LO < HI")
        return list(range(lo, hi))
    try:
        return [int(text)]
    except ValueError:
        raise SystemExit(f"bad --seeds {text!r}; expected N or LO:HI")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from .scenarios.synthetic import FAMILIES, generate_instance
    from .testing.oracle import OracleConfig, run_oracle, shrink

    if args.smoke:
        # CI preset: a small fresh seed band inside a fixed wall budget.
        # Explicit flags still win — --smoke only fills what was not given.
        if args.seeds is None:
            args.seeds = "0:4"
        if args.size is None:
            args.size = 12
        if args.deltas is None:
            args.deltas = 1
        if args.time_budget is None:
            args.time_budget = 55.0
    seeds = _parse_seed_range(args.seeds if args.seeds is not None else "0:8")
    size = args.size if args.size is not None else 16
    delta_rounds = args.deltas if args.deltas is not None else 2
    if args.family == "all":
        families = list(FAMILIES)
    elif args.family in FAMILIES:
        families = [args.family]
    else:
        raise SystemExit(
            f"unknown --family {args.family!r}; known: all, {', '.join(FAMILIES)}"
        )
    paths = tuple(part.strip() for part in args.paths.split(",") if part.strip())
    try:
        config = OracleConfig(
            paths=paths,
            limit=args.limit,
            tuples_per_state=args.tuples,
            workers=args.workers,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    started = time.monotonic()
    deadline = None if args.time_budget is None else started + args.time_budget
    runs: List[dict] = []
    failures = 0
    budget_exhausted = False
    for family in families:
        for seed in seeds:
            if deadline is not None and time.monotonic() >= deadline:
                budget_exhausted = True
                break
            record = {"family": family, "seed": seed, "size": size}
            try:
                instance = generate_instance(
                    family, size=size, seed=seed, delta_rounds=delta_rounds
                )
                report = run_oracle(instance, config)
            except Exception as exc:  # an oracle crash is a finding, not an abort
                failures += 1
                record.update(
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                )
                runs.append(record)
                print(f"{family} seed {seed}: CRASHED ({exc})", file=sys.stderr)
                continue
            record.update(
                {
                    "ok": report.ok,
                    "states": report.states,
                    "seconds": round(report.seconds, 3),
                }
            )
            if report.ok:
                if args.verbose:
                    print(f"{family} seed {seed}: ok ({report.seconds:.2f}s)")
            else:
                failures += 1
                print(f"{family} seed {seed}: {report.summary()}", file=sys.stderr)
                record["divergences"] = [
                    {
                        "state": d.state,
                        "paths": [d.path_a, d.path_b],
                        "a": d.text_a,
                        "b": d.text_b,
                    }
                    for d in report.divergences
                ]
                repro_command = (
                    f"python -m repro fuzz --family {family} "
                    f"--seeds {seed} --size {size} --deltas {delta_rounds} "
                    f"--paths {','.join(config.paths)} --limit {config.limit} "
                    f"--tuples {config.tuples_per_state} "
                    f"--workers {config.workers}"
                )
                record["repro"] = repro_command
                if not args.no_shrink:
                    shrunk = shrink(instance, config)
                    print(f"  {shrunk.describe()}", file=sys.stderr)
                    minimal = shrunk.instance
                    record["shrunk"] = {
                        "summary": shrunk.describe(),
                        "program": minimal.program_text(),
                        "database": minimal.database_text(),
                        "deltas": minimal.delta_lines(),
                        "answer": minimal.query.answer_predicate,
                    }
                    print("  minimal program:", file=sys.stderr)
                    for line in minimal.program_text().splitlines():
                        print(f"    {line}", file=sys.stderr)
                    print(
                        f"  minimal database ({len(minimal.database)} facts): "
                        f"{minimal.database_text()}",
                        file=sys.stderr,
                    )
                    for index, lines in enumerate(minimal.delta_lines()):
                        print(f"  delta {index}: {' '.join(lines)}", file=sys.stderr)
            runs.append(record)
        if budget_exhausted:
            break

    elapsed = time.monotonic() - started
    completed = len(runs)
    planned = len(families) * len(seeds)
    summary = (
        f"% fuzz: {completed}/{planned} run(s), {failures} failure(s), "
        f"{elapsed:.1f}s"
        + (" (time budget exhausted)" if budget_exhausted else "")
    )
    print(summary, file=sys.stderr)
    if args.json is not None:
        payload = {
            "fuzz": {
                "families": families,
                "seeds": seeds,
                "size": size,
                "delta_rounds": delta_rounds,
                "paths": list(config.paths),
                "limit": config.limit,
                "tuples_per_state": config.tuples_per_state,
                "workers": config.workers,
                "time_budget": args.time_budget,
            },
            "completed": completed,
            "planned": planned,
            "failures": failures,
            "budget_exhausted": budget_exhausted,
            "elapsed_seconds": round(elapsed, 3),
            "ok": failures == 0,
            "runs": runs,
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text)
            print(f"% fuzz report written to {args.json}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _cmd_serve_sharded(args)
    from .service.registry import SessionRegistry
    from .service.server import ProvenanceService, TCPServiceServer, serve_stdio

    store = None
    if args.state_dir and not args.no_persist:
        from .service.store import SnapshotStore

        store = SnapshotStore(args.state_dir)
    registry = SessionRegistry(
        max_sessions=args.max_sessions,
        max_bytes=args.max_bytes if args.max_bytes > 0 else None,
        method=args.method,
        acyclicity=args.acyclicity,
        store=store,
    )
    service = ProvenanceService(
        registry=registry,
        threads=args.threads,
        batch_workers=args.batch_workers,
        parallel_threshold=args.parallel_threshold,
        max_batch_tuples=args.max_batch,
    )
    if args.stdio:
        try:
            return serve_stdio(service)
        finally:
            service.close()
    server = TCPServiceServer(service, host=args.host, port=args.port)
    # Stderr, flushed: scripts binding port 0 read the ephemeral port here
    # (the shard supervisor discovers its workers' ports the same way).
    print(
        f"% repro service listening on {server.host}:{server.port}",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``serve --workers N`` (N > 1): the multi-process sharded daemon."""
    from .service.shard import ShardedServiceServer

    if args.stdio:
        print("% --stdio serves one client in-process; use --workers 1", file=sys.stderr)
        return 2
    state_dir = args.state_dir if args.state_dir and not args.no_persist else None
    server = ShardedServiceServer(
        args.workers,
        host=args.host,
        port=args.port,
        state_dir=state_dir,
        worker_threads=args.threads,
        batch_workers=args.batch_workers,
        parallel_threshold=args.parallel_threshold,
        max_batch=args.max_batch,
        max_sessions=args.max_sessions,
        max_bytes=args.max_bytes,  # workers map 0 to unbounded themselves
        method=args.method,
        acyclicity=args.acyclicity,
    )
    try:
        server.start()
        # The same stderr contract as the single-process daemon, so
        # scripts (and the supervisor itself, one level down) need only
        # one port-discovery recipe.
        print(
            f"% repro service listening on {server.host}:{server.port} "
            f"({args.workers} workers)",
            file=sys.stderr,
            flush=True,
        )
        # Exit when a client's shutdown request lands, like the
        # single-process daemon does; poll so Ctrl-C stays responsive.
        while not server.stopped.wait(timeout=1.0):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, parse_address
    from .service.protocol import ServiceError

    host, port = parse_address(args.connect)
    stream = sys.stdin if args.requests in (None, "-") else open(args.requests)
    failures = 0
    with ServiceClient(host=host, port=port) as client:
        for raw in stream:
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                print(f"% bad request line ({exc}): {line}", file=sys.stderr)
                failures += 1
                continue
            try:
                response = client.request(payload)
            except (ServiceError, OSError) as exc:
                # The daemon went away mid-script (e.g. a request after
                # a shutdown): diagnose and stop, don't traceback.
                print(f"% request failed ({exc}): {line}", file=sys.stderr)
                failures += 1
                break
            print(json.dumps(response, sort_keys=True), flush=True)
            if not response.get("ok"):
                failures += 1
    if stream is not sys.stdin:
        stream.close()
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Why-provenance for Datalog queries via SAT.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_tuple: bool = True) -> None:
        p.add_argument("program", help="Datalog program file")
        p.add_argument("database", help="database file (facts)")
        p.add_argument("--answer", help="answer predicate (default: the only idb one)")
        if with_tuple:
            p.add_argument("--tuple", required=True, help="answer tuple, e.g. a,b")

    p_eval = sub.add_parser("eval", help="compute Q(D)")
    common(p_eval, with_tuple=False)
    p_eval.set_defaults(func=_cmd_eval)

    p_why = sub.add_parser("why", help="enumerate whyUN(t, D, Q)")
    common(p_why)
    p_why.add_argument("--limit", type=int, default=None, help="max members")
    p_why.add_argument("--timeout", type=float, default=None, help="seconds")
    p_why.add_argument(
        "--order",
        choices=["discovery", "size"],
        default="discovery",
        help="member order: solver discovery order, or smallest first",
    )
    p_why.set_defaults(func=_cmd_why)

    p_batch = sub.add_parser(
        "batch",
        help="enumerate whyUN for many tuples with one shared evaluation",
    )
    common(p_batch, with_tuple=False)
    targets = p_batch.add_mutually_exclusive_group(required=True)
    targets.add_argument(
        "--tuples", help="semicolon-separated answer tuples, e.g. 'a,b;b,c'"
    )
    targets.add_argument(
        "--all-answers",
        action="store_true",
        help="enumerate the why-provenance of every answer tuple",
    )
    p_batch.add_argument("--limit", type=int, default=None, help="max members per tuple")
    p_batch.add_argument("--timeout", type=float, default=None, help="seconds per tuple")
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 shards tuples across a pool after one "
        "shared evaluation, 0 means one per core (default: 1, serial)",
    )
    p_batch.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="tuples per parallel work unit (default: ~4 chunks per worker)",
    )
    p_batch.add_argument(
        "--watch",
        action="store_true",
        help="after serving, read '+fact.'/'-fact.' delta lines from stdin; "
        "a blank line (or EOF) applies them via incremental maintenance "
        "and re-serves the batch",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_decide = sub.add_parser("decide", help="decide membership of a subset")
    common(p_decide)
    p_decide.add_argument("--subset", required=True, help="candidate subset file")
    p_decide.add_argument(
        "--tree-class",
        choices=TREE_CLASSES,
        default="unambiguous",
        help="proof-tree class (default: unambiguous)",
    )
    p_decide.set_defaults(func=_cmd_decide)

    p_dimacs = sub.add_parser("dimacs", help="export phi(t, D, Q) as DIMACS")
    common(p_dimacs)
    p_dimacs.add_argument(
        "--acyclicity",
        choices=["vertex-elimination", "transitive-closure"],
        default="vertex-elimination",
    )
    p_dimacs.set_defaults(func=_cmd_dimacs)

    p_minimal = sub.add_parser(
        "minimal", help="smallest and subset-minimal members of whyUN"
    )
    common(p_minimal)
    p_minimal.add_argument("--limit", type=int, default=None, help="max members")
    p_minimal.set_defaults(func=_cmd_minimal)

    p_semiring = sub.add_parser("semiring", help="semiring provenance of a tuple")
    common(p_semiring)
    p_semiring.add_argument(
        "--semiring",
        choices=sorted(SEMIRINGS),
        default="why",
        help="which semiring to evaluate in (default: why)",
    )
    p_semiring.set_defaults(func=_cmd_semiring)

    p_explain = sub.add_parser(
        "explain", help="print one minimal-depth proof tree (single witness)"
    )
    common(p_explain)
    p_explain.set_defaults(func=_cmd_explain)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz the stack over synthetic workload families",
        description="Generate seeded synthetic (program, database, delta) "
        "instances and run each through every execution path — cold/warm "
        "sessions, the forked batch pool, incremental maintenance, and the "
        "service daemon over TCP — asserting byte-identical answers, "
        "witnesses, and witness order. On divergence the instance is "
        "shrunk to a minimal failing repro. See docs/TESTING.md.",
    )
    p_fuzz.add_argument(
        "--seeds",
        default=None,
        help="seed band LO:HI (half-open) or one seed N (default: 0:8)",
    )
    from .scenarios.synthetic import FAMILIES as _families

    p_fuzz.add_argument(
        "--family",
        default="all",
        help=f"workload family ({', '.join(_families)}) or 'all' (default)",
    )
    p_fuzz.add_argument(
        "--size", type=int, default=None, help="family size parameter (default: 16)"
    )
    p_fuzz.add_argument(
        "--deltas",
        type=int,
        default=None,
        help="update rounds replayed per instance (default: 2)",
    )
    p_fuzz.add_argument(
        "--paths",
        default="cold,warm,parallel,incremental,service",
        help="comma-separated execution paths to diff (first is the "
        "reference); 'restart' adds the crash/restart durability path, "
        "'sharded' the multi-process daemon (--workers 2)",
    )
    p_fuzz.add_argument(
        "--limit", type=int, default=4, help="witnesses per tuple (default: 4)"
    )
    p_fuzz.add_argument(
        "--tuples",
        type=int,
        default=3,
        help="answer tuples sampled per database state (default: 3)",
    )
    p_fuzz.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the parallel path (default: 2)",
    )
    p_fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock seconds; remaining seeds are skipped once spent",
    )
    p_fuzz.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write a machine-readable report ('-' for stdout)",
    )
    p_fuzz.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: small instances, seeds 0:4, 1 delta, 55s budget "
        "(explicit flags override)",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences without minimizing the failing instance",
    )
    p_fuzz.add_argument(
        "--verbose", action="store_true", help="print every passing run too"
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    from .core.parallel import PARALLEL_BATCH_THRESHOLD
    from .service.registry import DEFAULT_MAX_BYTES, DEFAULT_MAX_SESSIONS
    from .service.server import DEFAULT_DISPATCH_THREADS, DEFAULT_MAX_BATCH_TUPLES

    p_serve = sub.add_parser(
        "serve",
        help="run the provenance service daemon (NDJSON over TCP or stdio)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port",
        type=int,
        default=7463,
        help="TCP port (0 = ephemeral, printed on stderr; default: 7463)",
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve one client over stdin/stdout instead of TCP",
    )
    p_serve.add_argument(
        "--max-sessions",
        type=int,
        default=DEFAULT_MAX_SESSIONS,
        help="live sessions kept warm before LRU eviction "
        f"(default: {DEFAULT_MAX_SESSIONS})",
    )
    p_serve.add_argument(
        "--max-bytes",
        type=int,
        default=DEFAULT_MAX_BYTES,
        help="byte budget across live sessions, 0 = unbounded "
        f"(default: {DEFAULT_MAX_BYTES // (1024 * 1024)} MiB)",
    )
    p_serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable warm-state directory: admissions write crash-safe "
        "snapshots, updates append to a fsync'd delta WAL, evictions "
        "demote to disk, and a restarted daemon rehydrates sessions "
        "instead of re-evaluating (default: no persistence)",
    )
    p_serve.add_argument(
        "--no-persist",
        action="store_true",
        help="serve purely in-memory even when --state-dir is given "
        "(the directory is neither read nor written)",
    )
    p_serve.add_argument(
        "--threads",
        type=int,
        default=DEFAULT_DISPATCH_THREADS,
        help="request dispatcher threads "
        f"(default: {DEFAULT_DISPATCH_THREADS})",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard worker processes: 1 (default) serves single-process, "
        "N > 1 starts the sharded daemon — an async front-end routing "
        "sessions to N supervised worker processes by content digest",
    )
    p_serve.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        help="forked processes per worker for large batch requests "
        "(default: 1, serial; 0 = one per core)",
    )
    p_serve.add_argument(
        "--method",
        choices=["seminaive", "naive"],
        default="seminaive",
        help="evaluation method baked into sessions and their digests "
        "(default: seminaive)",
    )
    p_serve.add_argument(
        "--acyclicity",
        choices=["vertex-elimination", "transitive-closure"],
        default="vertex-elimination",
        help="acyclicity encoding baked into sessions and their digests "
        "(default: vertex-elimination)",
    )
    p_serve.add_argument(
        "--parallel-threshold",
        type=int,
        default=PARALLEL_BATCH_THRESHOLD,
        help="batch size at which --workers kicks in "
        f"(default: {PARALLEL_BATCH_THRESHOLD})",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH_TUPLES,
        help="max tuples per batch request, larger ones are rejected "
        f"(default: {DEFAULT_MAX_BATCH_TUPLES})",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="send NDJSON requests to a running service daemon",
    )
    p_client.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="daemon address, e.g. localhost:7463",
    )
    p_client.add_argument(
        "requests",
        nargs="?",
        default=None,
        help="file of request lines (default: stdin)",
    )
    p_client.set_defaults(func=_cmd_client)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
