"""The live-session registry: content-addressed admission with LRU eviction.

The daemon's working set is a map ``content digest -> ProvenanceSession``.
The digest is computed over the *canonicalized* ``(program, database,
answer, method, acyclicity)`` quintuple — rules and facts are parsed and
re-rendered in sorted order before hashing — so two clients sending the
same query in different rule order, fact order, or whitespace share one
warm session instead of evaluating twice.

Lifecycle of an entry:

* **admission** — a miss parses the texts, builds the session, and pays
  the one-time evaluation *up front* (so the first real request is
  already warm and the entry's byte cost is measurable). The evaluation
  runs outside the registry lock; a per-digest in-flight marker makes
  concurrent clients asking for the same new digest wait for the one
  evaluation and hit the finished entry, while traffic on other digests
  proceeds untouched.
* **warm hit** — a request addressing a live digest moves the entry to
  the most-recently-used end and bumps its hit counter. The digest is
  the session's *admission address*, not a running checksum: ``update``
  requests advance the session in place under it (every client sees the
  maintained state — the design goal), so after updates a warm hit on
  the original texts returns the updated session, signalled by its
  non-zero version.
* **eviction** — after every admission (and every cost refresh following
  an ``update``), least-recently-used entries are dropped while the
  registry exceeds ``max_sessions`` or the byte budget. The newest entry
  is never evicted by the byte budget, so one oversized session still
  serves rather than thrashing. Eviction drops the registry's reference;
  requests already holding the entry finish normally. Without a store,
  the next request for that digest gets ``unknown-session`` — clients
  re-admit by re-sending the texts.
* **demotion / rehydration** — with a :class:`~repro.service.store.
  SnapshotStore` attached, eviction *demotes*: the entry's snapshot is
  durably written (and its WAL compacted) instead of the warm state
  being discarded, and both admission paths — inline texts *and* a bare
  digest — check the store before evaluating, rebuilding the session
  from disk via snapshot-unpickle plus WAL replay (incremental
  maintenance; ``stats.evaluations`` stays 1). Every committed
  ``update`` is appended to the session's WAL, fsync'd before the
  response is sent, so a hard daemon kill loses nothing that was
  acknowledged. Any disk-state damage degrades to a cold admission with
  a logged reason, never an error to the client.

Byte accounting uses
:meth:`~repro.core.session.ProvenanceSession.estimated_bytes` (the pickled
evaluation snapshot, cached per session version), refreshed after every
``update`` since deltas change the footprint.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.session import ProvenanceSession
from ..datalog.database import Database
from ..datalog.io import delta_to_lines
from ..datalog.parser import parse_database, parse_program
from ..datalog.program import DatalogQuery
from .protocol import ServiceError
from .store import SnapshotStore, logger as store_logger

#: Default cap on live sessions (LRU beyond this).
DEFAULT_MAX_SESSIONS = 8

#: Default byte budget across all live sessions (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class SessionEntry:
    """One admitted session plus its registry bookkeeping."""

    digest: str
    session: ProvenanceSession
    answer: str
    cost_bytes: int = 0
    hits: int = 0
    admitted_at: float = 0.0
    last_used_at: float = 0.0
    admission_seconds: float = 0.0
    #: Whether this entry was rebuilt from the durable store (snapshot +
    #: WAL replay) rather than paid for with a cold evaluation.
    rehydrated: bool = False

    @property
    def lock(self) -> "threading.RLock":
        """The per-session lock (the session's own reentrant guard)."""
        return self.session.lock

    def describe(self) -> Dict:
        """A JSON-ready summary for the ``stats`` operation.

        Tries the session lock briefly (reentrant — callers already
        holding it succeed immediately) so the reported version and fact
        count belong to one consistent state. If the session is busy —
        a long batch or an update in flight — the fields are read
        without the lock and flagged ``"busy": true`` rather than
        stalling a monitoring request behind the work.
        """
        acquired = self.lock.acquire(timeout=0.05)
        try:
            version = self.session.version
            fact_count = len(self.session.database)
        finally:
            if acquired:
                self.lock.release()
        summary = {
            "digest": self.digest,
            "answer": self.answer,
            "version": version,
            "fact_count": fact_count,
            "cost_bytes": self.cost_bytes,
            "hits": self.hits,
            "admitted_at": self.admitted_at,
            "last_used_at": self.last_used_at,
            "admission_seconds": self.admission_seconds,
            "rehydrated": self.rehydrated,
        }
        if not acquired:
            summary["busy"] = True
        return summary


def canonicalize_query(
    program_text: str,
    database_text: str,
    answer: Optional[str] = None,
) -> Tuple[DatalogQuery, Database, str]:
    """Parse wire texts into a ``(query, database, answer)`` triple.

    The answer predicate defaults to the program's only intensional
    predicate (the CLI convention). Raises :class:`ServiceError` with
    ``program-error`` for unparsable texts and ``bad-request`` for a
    missing/unknown answer predicate.
    """
    try:
        program = parse_program(program_text)
    except Exception as exc:
        raise ServiceError("program-error", f"cannot parse program: {exc}")
    try:
        database = Database(parse_database(database_text))
    except Exception as exc:
        raise ServiceError("program-error", f"cannot parse database: {exc}")
    if answer is None:
        intensional = sorted(program.idb)
        if len(intensional) != 1:
            raise ServiceError(
                "bad-request",
                f"answer required: program has intensional predicates {intensional}",
            )
        answer = intensional[0]
    try:
        query = DatalogQuery(program, answer)
    except ValueError as exc:
        raise ServiceError("bad-request", str(exc))
    return query, database, answer


def content_digest(
    query: DatalogQuery,
    database: Database,
    method: str = "seminaive",
    acyclicity: str = "vertex-elimination",
) -> str:
    """The canonical content address of a ``(program, database)`` pair.

    Rules and facts are rendered sorted, so the digest is a pure function
    of the *sets* (plus answer predicate and evaluation knobs), not of
    the wire texts that produced them.
    """
    payload = "\n".join(
        [
            method,
            acyclicity,
            query.answer_predicate,
            "\n".join(sorted(str(rule) for rule in query.program.rules)),
            "\n".join(sorted(str(fact) for fact in database)),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def routing_digest(
    program_text: str,
    database_text: str,
    answer: Optional[str] = None,
    method: str = "seminaive",
    acyclicity: str = "vertex-elimination",
) -> str:
    """The digest the given wire texts admit under: canonicalize + hash.

    The sharded front-end routes inline-text requests with this — it has
    no registry of its own, but must compute *exactly* the address the
    owning worker's registry will admit under, so the same ``method`` /
    ``acyclicity`` knobs the workers were spawned with have to be passed
    here. Raises the same canonical errors as admission would
    (``program-error`` / ``bad-request``), which is what makes routing
    failures byte-identical to single-process failures.
    """
    query, database, _ = canonicalize_query(program_text, database_text, answer)
    return content_digest(query, database, method, acyclicity)


class SessionRegistry:
    """Content-addressed LRU registry of live provenance sessions.

    Parameters
    ----------
    max_sessions:
        Hard cap on live entries (at least 1); LRU beyond it.
    max_bytes:
        Byte budget across all entries, ``None`` for unbounded. The
        most-recently-admitted entry is exempt (a single session larger
        than the whole budget still serves).
    method / acyclicity:
        Evaluation knobs baked into every admitted session *and* into the
        content digest, so registries with different knobs never share
        addresses.
    store:
        A :class:`~repro.service.store.SnapshotStore` making warm state
        durable: admissions persist a snapshot, updates append to a
        fsync'd delta WAL, evictions demote to disk, and misses (in this
        process or after a restart) rehydrate instead of re-evaluating.
        ``None`` (the default) keeps the registry purely in-memory.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
        method: str = "seminaive",
        acyclicity: str = "vertex-elimination",
        store: Optional[SnapshotStore] = None,
    ):
        self.max_sessions = max(1, max_sessions)
        self.max_bytes = max_bytes
        self.method = method
        self.acyclicity = acyclicity
        self.store = store
        self.admissions = 0
        self.hits = 0
        self.evictions = 0
        self.demotions = 0
        self.demotion_failures = 0
        self.rehydrations = 0
        self.persist_failures = 0
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: digest -> event for admissions in flight: lets concurrent
        #: requests for the same new digest wait for one evaluation
        #: while everything else proceeds under a free registry lock.
        self._admitting: Dict[str, threading.Event] = {}

    # -- addressing ----------------------------------------------------------

    def digest_for(
        self,
        program_text: str,
        database_text: str,
        answer: Optional[str] = None,
    ) -> str:
        """The digest the given wire texts would be admitted under."""
        return routing_digest(
            program_text, database_text, answer, self.method, self.acyclicity
        )

    # -- admission / lookup --------------------------------------------------

    def acquire(
        self,
        program_text: str,
        database_text: str,
        answer: Optional[str] = None,
    ) -> Tuple[SessionEntry, bool]:
        """Admit-or-reuse the session for the given wire texts.

        Returns ``(entry, admitted)`` — ``admitted`` is ``True`` for an
        admission (a registry miss served by evaluation *or* by store
        rehydration — ``entry.rehydrated`` tells them apart), ``False``
        for a warm hit. The evaluation itself runs *outside* the
        registry lock (warm hits on other digests never wait behind an
        admission); requests racing to admit the same new digest wait on
        a per-digest event and hit the finished entry, so each content
        digest still evaluates at most once.
        """
        query, database, answer = canonicalize_query(
            program_text, database_text, answer
        )
        digest = content_digest(query, database, self.method, self.acyclicity)
        hit = self._await_admission_slot(digest)
        if hit is not None:
            return hit, False
        try:
            entry = self._rehydrate_entry(digest)
            if entry is None:
                entry = self._evaluate_entry(query, database, answer, digest)
            self._install(entry)
            return entry, True
        finally:
            with self._lock:
                event = self._admitting.pop(digest)
            event.set()

    def _await_admission_slot(self, digest: str) -> Optional[SessionEntry]:
        """Claim the right to admit *digest*, or return the live entry.

        Returns the entry on a warm hit (LRU-touched, hit-counted);
        ``None`` means this thread holds the per-digest admission slot
        and *must* release it (pop + set the event) when done.
        """
        while True:
            with self._lock:
                entry = self._entries.get(digest)
                if entry is not None:
                    self.hits += 1
                    self._touch(entry)
                    return entry
                pending = self._admitting.get(digest)
                if pending is None:
                    self._admitting[digest] = threading.Event()
                    return None  # this request performs the admission
            # Another request is admitting this digest: wait for it,
            # then re-check (its admission may also have failed —
            # in that case this request retries the admission itself).
            pending.wait()

    def _evaluate_entry(
        self,
        query: DatalogQuery,
        database: Database,
        answer: str,
        digest: str,
    ) -> SessionEntry:
        """Cold admission: build the session, pay the evaluation, persist."""
        started = time.perf_counter()
        try:
            session = ProvenanceSession(
                query,
                database,
                method=self.method,
                acyclicity=self.acyclicity,
            )
        except ValueError as exc:
            raise ServiceError("bad-request", str(exc))
        session.evaluation  # cold admission pays the evaluation up front
        cost = session.estimated_bytes()
        self._persist_admission(digest, session)
        now = time.time()
        return SessionEntry(
            digest=digest,
            session=session,
            answer=answer,
            cost_bytes=cost,
            admitted_at=now,
            last_used_at=now,
            admission_seconds=time.perf_counter() - started,
        )

    def _rehydrate_entry(self, digest: str) -> Optional[SessionEntry]:
        """Rebuild *digest* from the durable store, or ``None`` on a miss.

        A miss is silent here (the store logs and counts its reason);
        the caller falls back to cold evaluation — the "never an error
        to the client" half of the recovery contract.
        """
        if self.store is None:
            return None
        started = time.perf_counter()
        try:
            session = self.store.rehydrate(
                digest, method=self.method, acyclicity=self.acyclicity
            )
        except Exception:
            # The store's own contract is to degrade, not raise; treat a
            # bug there as one more reason to fall back to evaluation.
            store_logger.exception("rehydration crashed for %s", digest)
            session = None
        if session is None:
            return None
        cost = session.estimated_bytes()
        now = time.time()
        with self._lock:
            self.rehydrations += 1
        return SessionEntry(
            digest=digest,
            session=session,
            answer=session.query.answer_predicate,
            cost_bytes=cost,
            admitted_at=now,
            last_used_at=now,
            admission_seconds=time.perf_counter() - started,
            rehydrated=True,
        )

    def _install(self, entry: SessionEntry) -> None:
        """Put a finished admission live and apply the budgets."""
        with self._lock:
            self._entries[entry.digest] = entry
            self.admissions += 1
            evicted = self._evict_over_budget()
        self._demote_entries(evicted)

    def _lookup_locked(self, digest: str) -> SessionEntry:
        entry = self._entries.get(digest)
        if entry is None:
            raise ServiceError(
                "unknown-session",
                f"no live session {digest!r} (never admitted, or evicted); "
                "re-send the program and database texts to re-admit",
            )
        return entry

    def get(self, digest: str) -> SessionEntry:
        """The live entry under *digest*, rehydrating from the store.

        Without a store (or on a store miss) an evicted or unknown
        digest raises ``unknown-session`` and the client re-admits by
        re-sending the texts. With a store, a demoted digest is
        transparently rebuilt from its snapshot + WAL — eviction becomes
        a tier change instead of a contract break.
        """
        if self.store is None:
            with self._lock:
                entry = self._lookup_locked(digest)
                self.hits += 1
                self._touch(entry)
                return entry
        hit = self._await_admission_slot(digest)
        if hit is not None:
            return hit
        try:
            entry = self._rehydrate_entry(digest)
            if entry is None:
                with self._lock:
                    self._lookup_locked(digest)  # raises unknown-session
            self._install(entry)
            return entry
        finally:
            with self._lock:
                event = self._admitting.pop(digest)
            event.set()

    def peek(self, digest: str) -> SessionEntry:
        """Like :meth:`get`, but without LRU-touching or hit accounting.

        For introspection (the ``stats`` operation): monitoring must not
        perturb the eviction order or the hit-rate it reports.
        """
        with self._lock:
            return self._lookup_locked(digest)

    def refresh_cost(self, entry: SessionEntry) -> None:
        """Re-measure an entry after an update and re-apply the budget.

        The measurement (snapshot pickling) holds the *session* lock —
        a concurrent update mid-maintenance must not be pickled and
        cached under its new version — but not the registry lock, which
        is only taken for the accounting and any resulting eviction.
        """
        with entry.lock:
            cost = entry.session.estimated_bytes()
        evicted: List[SessionEntry] = []
        with self._lock:
            entry.cost_bytes = cost
            if entry.digest in self._entries:
                evicted = self._evict_over_budget()
        self._demote_entries(evicted)

    def evict(self, digest: str) -> bool:
        """Drop one entry by digest; returns whether it was live.

        With a store attached the entry is demoted (snapshot + WAL
        compaction) on the way out, like any budget eviction.
        """
        with self._lock:
            entry = self._entries.pop(digest, None)
            if entry is not None:
                self.evictions += 1
        if entry is not None:
            self._demote_entries([entry])
        return entry is not None

    # -- accounting ----------------------------------------------------------

    def _touch(self, entry: SessionEntry) -> None:
        self._entries.move_to_end(entry.digest)
        entry.hits += 1
        entry.last_used_at = time.time()

    def _evict_over_budget(self) -> List[SessionEntry]:
        """Pop LRU entries past the budgets; returns them for demotion.

        Runs under the registry lock. The popped entries are *returned*
        rather than demoted here: demotion pickles each session under
        its own lock, and session-lock-inside-registry-lock is the
        reverse of the ``refresh_cost`` order (a deadlock).
        """
        evicted: List[SessionEntry] = []
        while len(self._entries) > self.max_sessions:
            evicted.append(self._entries.popitem(last=False)[1])
            self.evictions += 1
        if self.max_bytes is not None:
            while (
                len(self._entries) > 1
                and self._total_bytes_locked() > self.max_bytes
            ):
                evicted.append(self._entries.popitem(last=False)[1])
                self.evictions += 1
        return evicted

    # -- durability ----------------------------------------------------------

    def _persist_admission(self, digest: str, session: ProvenanceSession) -> None:
        """Durably store a freshly-evaluated session (best-effort).

        Failure (disk full, permissions) must not fail the admission —
        the daemon keeps serving from memory, counts the failure, and
        the digest simply is not restart-warm.
        """
        if self.store is None:
            return
        try:
            blob = session.snapshot_bytes()
            self.store.put_snapshot(digest, session.version, blob)
            self.store.reset_wal(digest)
        except Exception:
            with self._lock:
                self.persist_failures += 1
            store_logger.exception("could not persist admission for %s", digest)

    def _demote_entries(self, entries: List[SessionEntry]) -> None:
        """Demote evicted entries to disk instead of discarding them.

        Each demotion holds the entry's *session* lock across the
        snapshot write **and** the WAL reset: an in-flight request that
        still holds the (now unregistered) entry could otherwise commit
        a WAL record between the two, and the reset would silently drop
        an acknowledged update. Under the session lock the compaction is
        atomic with respect to appends, and crash-ordering inside it is
        handled by the store (snapshot replaced before WAL reset).
        """
        if self.store is None or not entries:
            return
        for entry in entries:
            try:
                with entry.lock:
                    blob = entry.session.snapshot_bytes()
                    self.store.put_snapshot(
                        entry.digest, entry.session.version, blob
                    )
                    self.store.reset_wal(entry.digest)
                with self._lock:
                    self.demotions += 1
            except Exception:
                with self._lock:
                    self.demotion_failures += 1
                store_logger.exception("could not demote %s", entry.digest)

    def record_update(self, entry: SessionEntry, receipt) -> None:
        """Append one committed ``update`` to the entry's WAL, fsync'd.

        Called by the server *while still holding the session lock* and
        before the response is sent, so WAL order matches version order
        and an acknowledged update is always on disk. No-ops are not
        logged (they did not advance the version). If the append fails,
        the digest's on-disk state is invalidated outright: recovery
        then degrades to a cold admission instead of rehydrating a state
        older than one the client saw acknowledged.
        """
        if self.store is None or receipt.effective.is_empty():
            return
        try:
            self.store.append_wal(
                entry.digest, receipt.version, delta_to_lines(receipt.effective)
            )
        except Exception:
            with self._lock:
                self.persist_failures += 1
            store_logger.exception(
                "WAL append failed for %s; invalidating its durable state",
                entry.digest,
            )
            try:
                self.store.invalidate(entry.digest)
            except Exception:
                store_logger.exception("could not invalidate %s", entry.digest)

    def _total_bytes_locked(self) -> int:
        return sum(entry.cost_bytes for entry in self._entries.values())

    def total_bytes(self) -> int:
        """Current byte accounting across all live entries."""
        with self._lock:
            return self._total_bytes_locked()

    def entries(self) -> List[SessionEntry]:
        """Live entries, least-recently-used first."""
        with self._lock:
            return list(self._entries.values())

    def stats(self) -> Dict:
        """A JSON-ready snapshot of the registry for the ``stats`` op.

        Per-session summaries are taken *after* releasing the registry
        lock — ``describe`` needs each session's lock, and an update
        request holds a session lock while calling :meth:`refresh_cost`
        (session lock → registry lock), so taking them in the opposite
        order here would be a lock-order inversion.
        """
        with self._lock:
            entries = list(self._entries.values())
            snapshot = {
                "session_count": len(entries),
                "max_sessions": self.max_sessions,
                "max_bytes": self.max_bytes,
                "bytes_in_use": sum(e.cost_bytes for e in entries),
                "admissions": self.admissions,
                "hits": self.hits,
                "evictions": self.evictions,
                "demotions": self.demotions,
                "demotion_failures": self.demotion_failures,
                "rehydrations": self.rehydrations,
                "persist_failures": self.persist_failures,
                "method": self.method,
                "acyclicity": self.acyclicity,
            }
        snapshot["sessions"] = [entry.describe() for entry in entries]
        snapshot["store"] = None if self.store is None else self.store.stats()
        return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SessionRegistry(sessions={len(self)}/{self.max_sessions}, "
            f"bytes={self.total_bytes()})"
        )
