"""The live-session registry: content-addressed admission with LRU eviction.

The daemon's working set is a map ``content digest -> ProvenanceSession``.
The digest is computed over the *canonicalized* ``(program, database,
answer, method, acyclicity)`` quintuple — rules and facts are parsed and
re-rendered in sorted order before hashing — so two clients sending the
same query in different rule order, fact order, or whitespace share one
warm session instead of evaluating twice.

Lifecycle of an entry:

* **admission** — a miss parses the texts, builds the session, and pays
  the one-time evaluation *up front* (so the first real request is
  already warm and the entry's byte cost is measurable). The evaluation
  runs outside the registry lock; a per-digest in-flight marker makes
  concurrent clients asking for the same new digest wait for the one
  evaluation and hit the finished entry, while traffic on other digests
  proceeds untouched.
* **warm hit** — a request addressing a live digest moves the entry to
  the most-recently-used end and bumps its hit counter. The digest is
  the session's *admission address*, not a running checksum: ``update``
  requests advance the session in place under it (every client sees the
  maintained state — the design goal), so after updates a warm hit on
  the original texts returns the updated session, signalled by its
  non-zero version.
* **eviction** — after every admission (and every cost refresh following
  an ``update``), least-recently-used entries are dropped while the
  registry exceeds ``max_sessions`` or the byte budget. The newest entry
  is never evicted by the byte budget, so one oversized session still
  serves rather than thrashing. Eviction drops the registry's reference;
  requests already holding the entry finish normally, and the next
  request for that digest gets ``unknown-session`` — clients re-admit by
  re-sending the texts.

Byte accounting uses
:meth:`~repro.core.session.ProvenanceSession.estimated_bytes` (the pickled
evaluation snapshot, cached per session version), refreshed after every
``update`` since deltas change the footprint.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.session import ProvenanceSession
from ..datalog.database import Database
from ..datalog.parser import parse_database, parse_program
from ..datalog.program import DatalogQuery
from .protocol import ServiceError

#: Default cap on live sessions (LRU beyond this).
DEFAULT_MAX_SESSIONS = 8

#: Default byte budget across all live sessions (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class SessionEntry:
    """One admitted session plus its registry bookkeeping."""

    digest: str
    session: ProvenanceSession
    answer: str
    cost_bytes: int = 0
    hits: int = 0
    admitted_at: float = 0.0
    last_used_at: float = 0.0
    admission_seconds: float = 0.0

    @property
    def lock(self) -> "threading.RLock":
        """The per-session lock (the session's own reentrant guard)."""
        return self.session.lock

    def describe(self) -> Dict:
        """A JSON-ready summary for the ``stats`` operation.

        Tries the session lock briefly (reentrant — callers already
        holding it succeed immediately) so the reported version and fact
        count belong to one consistent state. If the session is busy —
        a long batch or an update in flight — the fields are read
        without the lock and flagged ``"busy": true`` rather than
        stalling a monitoring request behind the work.
        """
        acquired = self.lock.acquire(timeout=0.05)
        try:
            version = self.session.version
            fact_count = len(self.session.database)
        finally:
            if acquired:
                self.lock.release()
        summary = {
            "digest": self.digest,
            "answer": self.answer,
            "version": version,
            "fact_count": fact_count,
            "cost_bytes": self.cost_bytes,
            "hits": self.hits,
            "admitted_at": self.admitted_at,
            "last_used_at": self.last_used_at,
            "admission_seconds": self.admission_seconds,
        }
        if not acquired:
            summary["busy"] = True
        return summary


def canonicalize_query(
    program_text: str,
    database_text: str,
    answer: Optional[str] = None,
) -> Tuple[DatalogQuery, Database, str]:
    """Parse wire texts into a ``(query, database, answer)`` triple.

    The answer predicate defaults to the program's only intensional
    predicate (the CLI convention). Raises :class:`ServiceError` with
    ``program-error`` for unparsable texts and ``bad-request`` for a
    missing/unknown answer predicate.
    """
    try:
        program = parse_program(program_text)
    except Exception as exc:
        raise ServiceError("program-error", f"cannot parse program: {exc}")
    try:
        database = Database(parse_database(database_text))
    except Exception as exc:
        raise ServiceError("program-error", f"cannot parse database: {exc}")
    if answer is None:
        intensional = sorted(program.idb)
        if len(intensional) != 1:
            raise ServiceError(
                "bad-request",
                f"answer required: program has intensional predicates {intensional}",
            )
        answer = intensional[0]
    try:
        query = DatalogQuery(program, answer)
    except ValueError as exc:
        raise ServiceError("bad-request", str(exc))
    return query, database, answer


def content_digest(
    query: DatalogQuery,
    database: Database,
    method: str = "seminaive",
    acyclicity: str = "vertex-elimination",
) -> str:
    """The canonical content address of a ``(program, database)`` pair.

    Rules and facts are rendered sorted, so the digest is a pure function
    of the *sets* (plus answer predicate and evaluation knobs), not of
    the wire texts that produced them.
    """
    payload = "\n".join(
        [
            method,
            acyclicity,
            query.answer_predicate,
            "\n".join(sorted(str(rule) for rule in query.program.rules)),
            "\n".join(sorted(str(fact) for fact in database)),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class SessionRegistry:
    """Content-addressed LRU registry of live provenance sessions.

    Parameters
    ----------
    max_sessions:
        Hard cap on live entries (at least 1); LRU beyond it.
    max_bytes:
        Byte budget across all entries, ``None`` for unbounded. The
        most-recently-admitted entry is exempt (a single session larger
        than the whole budget still serves).
    method / acyclicity:
        Evaluation knobs baked into every admitted session *and* into the
        content digest, so registries with different knobs never share
        addresses.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
        method: str = "seminaive",
        acyclicity: str = "vertex-elimination",
    ):
        self.max_sessions = max(1, max_sessions)
        self.max_bytes = max_bytes
        self.method = method
        self.acyclicity = acyclicity
        self.admissions = 0
        self.hits = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: digest -> event for admissions in flight: lets concurrent
        #: requests for the same new digest wait for one evaluation
        #: while everything else proceeds under a free registry lock.
        self._admitting: Dict[str, threading.Event] = {}

    # -- addressing ----------------------------------------------------------

    def digest_for(
        self,
        program_text: str,
        database_text: str,
        answer: Optional[str] = None,
    ) -> str:
        """The digest the given wire texts would be admitted under."""
        query, database, _ = canonicalize_query(program_text, database_text, answer)
        return content_digest(query, database, self.method, self.acyclicity)

    # -- admission / lookup --------------------------------------------------

    def acquire(
        self,
        program_text: str,
        database_text: str,
        answer: Optional[str] = None,
    ) -> Tuple[SessionEntry, bool]:
        """Admit-or-reuse the session for the given wire texts.

        Returns ``(entry, admitted)`` — ``admitted`` is ``True`` for a
        cold admission (evaluation paid here), ``False`` for a warm hit.
        The evaluation itself runs *outside* the registry lock (warm
        hits on other digests never wait behind an admission); requests
        racing to admit the same new digest wait on a per-digest event
        and hit the finished entry, so each content digest still
        evaluates at most once.
        """
        query, database, answer = canonicalize_query(
            program_text, database_text, answer
        )
        digest = content_digest(query, database, self.method, self.acyclicity)
        while True:
            with self._lock:
                entry = self._entries.get(digest)
                if entry is not None:
                    self.hits += 1
                    self._touch(entry)
                    return entry, False
                pending = self._admitting.get(digest)
                if pending is None:
                    self._admitting[digest] = threading.Event()
                    break  # this request performs the admission
            # Another request is evaluating this digest: wait for it,
            # then re-check (its admission may also have failed —
            # in that case this request retries the admission itself).
            pending.wait()
        try:
            started = time.perf_counter()
            try:
                session = ProvenanceSession(
                    query,
                    database,
                    method=self.method,
                    acyclicity=self.acyclicity,
                )
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc))
            session.evaluation  # cold admission pays the evaluation up front
            cost = session.estimated_bytes()
            now = time.time()
            entry = SessionEntry(
                digest=digest,
                session=session,
                answer=answer,
                cost_bytes=cost,
                admitted_at=now,
                last_used_at=now,
                admission_seconds=time.perf_counter() - started,
            )
            with self._lock:
                self._entries[digest] = entry
                self.admissions += 1
                self._evict_over_budget()
            return entry, True
        finally:
            with self._lock:
                event = self._admitting.pop(digest)
            event.set()

    def _lookup_locked(self, digest: str) -> SessionEntry:
        entry = self._entries.get(digest)
        if entry is None:
            raise ServiceError(
                "unknown-session",
                f"no live session {digest!r} (never admitted, or evicted); "
                "re-send the program and database texts to re-admit",
            )
        return entry

    def get(self, digest: str) -> SessionEntry:
        """The live entry under *digest* (``unknown-session`` if evicted)."""
        with self._lock:
            entry = self._lookup_locked(digest)
            self.hits += 1
            self._touch(entry)
            return entry

    def peek(self, digest: str) -> SessionEntry:
        """Like :meth:`get`, but without LRU-touching or hit accounting.

        For introspection (the ``stats`` operation): monitoring must not
        perturb the eviction order or the hit-rate it reports.
        """
        with self._lock:
            return self._lookup_locked(digest)

    def refresh_cost(self, entry: SessionEntry) -> None:
        """Re-measure an entry after an update and re-apply the budget.

        The measurement (snapshot pickling) holds the *session* lock —
        a concurrent update mid-maintenance must not be pickled and
        cached under its new version — but not the registry lock, which
        is only taken for the accounting and any resulting eviction.
        """
        with entry.lock:
            cost = entry.session.estimated_bytes()
        with self._lock:
            entry.cost_bytes = cost
            if entry.digest in self._entries:
                self._evict_over_budget()

    def evict(self, digest: str) -> bool:
        """Drop one entry by digest; returns whether it was live."""
        with self._lock:
            entry = self._entries.pop(digest, None)
            if entry is not None:
                self.evictions += 1
            return entry is not None

    # -- accounting ----------------------------------------------------------

    def _touch(self, entry: SessionEntry) -> None:
        self._entries.move_to_end(entry.digest)
        entry.hits += 1
        entry.last_used_at = time.time()

    def _evict_over_budget(self) -> None:
        while len(self._entries) > self.max_sessions:
            self._entries.popitem(last=False)
            self.evictions += 1
        if self.max_bytes is None:
            return
        while len(self._entries) > 1 and self._total_bytes_locked() > self.max_bytes:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _total_bytes_locked(self) -> int:
        return sum(entry.cost_bytes for entry in self._entries.values())

    def total_bytes(self) -> int:
        """Current byte accounting across all live entries."""
        with self._lock:
            return self._total_bytes_locked()

    def entries(self) -> List[SessionEntry]:
        """Live entries, least-recently-used first."""
        with self._lock:
            return list(self._entries.values())

    def stats(self) -> Dict:
        """A JSON-ready snapshot of the registry for the ``stats`` op.

        Per-session summaries are taken *after* releasing the registry
        lock — ``describe`` needs each session's lock, and an update
        request holds a session lock while calling :meth:`refresh_cost`
        (session lock → registry lock), so taking them in the opposite
        order here would be a lock-order inversion.
        """
        with self._lock:
            entries = list(self._entries.values())
            snapshot = {
                "session_count": len(entries),
                "max_sessions": self.max_sessions,
                "max_bytes": self.max_bytes,
                "bytes_in_use": sum(e.cost_bytes for e in entries),
                "admissions": self.admissions,
                "hits": self.hits,
                "evictions": self.evictions,
                "method": self.method,
                "acyclicity": self.acyclicity,
            }
        snapshot["sessions"] = [entry.describe() for entry in entries]
        return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SessionRegistry(sessions={len(self)}/{self.max_sessions}, "
            f"bytes={self.total_bytes()})"
        )
