"""The durable warm-state tier: crash-safe snapshots plus a delta WAL.

The daemon's economics are "pay evaluation once, serve explanations
warm" — but a warm :class:`~repro.core.session.ProvenanceSession` lives
in process memory, so every restart re-pays the ~2s cold admission that
dwarfs a ~30ms warm hit. This module makes warm state survive the
process:

* :class:`SnapshotStore` — a content-addressed on-disk store mapping a
  registry digest to one **snapshot file** (a zlib-compressed pickled
  :class:`~repro.core.parallel.EvaluationSnapshot`, integrity-checked by
  length and SHA-256) and one per-session append-only **delta WAL**
  (one checksummed NDJSON record per committed ``update``, fsync'd
  before the response is sent).
* :meth:`SnapshotStore.rehydrate` — rebuild a live session from disk:
  unpickle the snapshot, then replay the WAL *suffix* (records whose
  version stamps extend the snapshot) through
  :meth:`~repro.core.session.ProvenanceSession.update` — incremental
  maintenance, never re-evaluation, so a rehydrated session still
  reports ``stats.evaluations == 1``.

Crash safety
------------

Every write is structured so that a crash at *any* instruction boundary
leaves the store serving either the previous consistent state or a clean
miss — never a torn state, never a silently wrong answer:

* snapshots are written to a unique temp file, fsync'd, then atomically
  :func:`os.replace`'d into place (readers only ever see the old file or
  the complete new one), and the directory entry is fsync'd;
* WAL records are one line each, ``crc32 <space> payload-json``; a torn
  tail (partial line, bad checksum, unparsable JSON) is truncated at the
  last complete record on recovery;
* a snapshot that is missing, short, or checksum-failing degrades to a
  **miss** (the registry falls back to cold evaluation);
* a WAL whose version stamps do not contiguously extend the snapshot
  (a gap — some committed state is unreachable) degrades to a miss
  rather than silently serving a stale state. Records *covered* by the
  snapshot (version ``<=`` the snapshot's) are skipped: that is the
  normal state right after a demotion compaction.

Write ordering makes demotion compaction safe: the fresh snapshot is
replaced into place **before** the WAL is reset, so a crash between the
two leaves a newer snapshot plus a fully-covered WAL (correct), never a
reset WAL guarding an old snapshot (stale).

Multi-process sharing
---------------------

A sharded daemon (``serve --workers N``) points every worker at the
*same* ``--state-dir``. That is safe without file locking because the
router's consistent-hash ring gives each content digest exactly one
owning worker at a time — a single writer per digest directory — and
every cross-digest operation here is already atomic (temp file +
``os.replace``; ``makedirs(exist_ok=True)``). The store doubles as the
restart handoff: when the supervisor respawns a crashed worker, the
replacement rehydrates the digests it owns from disk instead of
re-evaluating (see :mod:`repro.service.shard` and
``tests/test_shard_chaos.py``).

Fault injection
---------------

All mutating filesystem operations go through one injectable seam
(:class:`StoreFS`), so the test harness (``tests/faultinject.py``) can
crash the store at the N-th write / fsync / replace / truncate and prove
the recovery contract for every boundary — see
``tests/test_store_faults.py`` and ``docs/PERSISTENCE.md``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import zlib
from typing import Dict, List, Optional, Tuple

from ..core.parallel import EvaluationSnapshot
from ..core.session import ProvenanceSession
from ..datalog.io import delta_from_lines

logger = logging.getLogger("repro.service.store")

#: First line of every snapshot file; a version bump here invalidates
#: old snapshots cleanly (they degrade to a miss, never misparse).
SNAPSHOT_MAGIC = b"%repro-snapshot 1\n"

#: File-name suffixes of the two per-digest artifacts.
SNAPSHOT_SUFFIX = ".snap"
WAL_SUFFIX = ".wal"


class StoreFS:
    """The filesystem seam: every mutating operation the store performs.

    The production store uses this class as-is; the fault-injection
    harness (``tests/faultinject.py``) substitutes a wrapper that raises
    ``SimulatedCrash`` at a chosen operation index, optionally applying
    a torn (prefix-only) write first. Read operations are deliberately
    *not* routed through the seam — a crash only matters at a write
    boundary, and recovery paths must read whatever the crash left.
    """

    def open(self, path: str, mode: str):
        """Open *path* (binary modes only in the store)."""
        return open(path, mode)

    def write(self, handle, data: bytes) -> None:
        """Write *data* to an open handle."""
        handle.write(data)

    def fsync(self, handle) -> None:
        """Flush and fsync an open handle (the durability point)."""
        handle.flush()
        os.fsync(handle.fileno())

    def fsync_path(self, path: str) -> None:
        """Fsync a directory entry (after :func:`os.replace`), best-effort.

        Some platforms refuse to open directories; durability of the
        rename itself is then up to the filesystem, which is the
        standard portable compromise.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def replace(self, source: str, destination: str) -> None:
        """Atomically rename *source* over *destination*."""
        os.replace(source, destination)

    def truncate(self, path: str, length: int) -> None:
        """Truncate *path* to *length* bytes (torn-WAL-tail repair)."""
        os.truncate(path, length)

    def remove(self, path: str) -> None:
        """Delete *path* (missing is fine — removal is idempotent)."""
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def makedirs(self, path: str) -> None:
        """Create *path* and parents (existing is fine)."""
        os.makedirs(path, exist_ok=True)


class SnapshotStore:
    """Digest-addressed snapshots plus per-session delta WALs on disk.

    Parameters
    ----------
    root:
        The state directory (created on first use). Layout::

            <root>/snapshots/<digest>.snap
            <root>/wal/<digest>.wal

    fs:
        The filesystem seam (:class:`StoreFS`); tests inject a crashing
        wrapper here.
    compress_level:
        zlib level for snapshot bodies (snapshots compress ~5-10x — the
        instance trace is highly repetitive).

    Thread safety: one store-wide lock serializes mutations. Callers
    that must keep the WAL ordered against session versions (the
    registry) additionally hold the session lock around
    :meth:`append_wal` and around the demotion compaction — see
    ``registry.py``.
    """

    def __init__(
        self,
        root: str,
        fs: Optional[StoreFS] = None,
        compress_level: int = 6,
    ):
        self.root = root
        self.fs = fs if fs is not None else StoreFS()
        self.compress_level = compress_level
        self._lock = threading.Lock()
        self._tmp_counter = 0
        self.snapshot_writes = 0
        self.wal_appends = 0
        self.rehydrations = 0
        #: ``reason -> count`` for every rehydration that degraded to a
        #: miss; the observable half of "logged reason, never an
        #: exception to the client".
        self.miss_reasons: Dict[str, int] = {}

    # -- paths ---------------------------------------------------------------

    def snapshot_path(self, digest: str) -> str:
        """The snapshot file for *digest*."""
        return os.path.join(self.root, "snapshots", digest + SNAPSHOT_SUFFIX)

    def wal_path(self, digest: str) -> str:
        """The WAL file for *digest*."""
        return os.path.join(self.root, "wal", digest + WAL_SUFFIX)

    def _ensure_layout(self) -> None:
        self.fs.makedirs(os.path.join(self.root, "snapshots"))
        self.fs.makedirs(os.path.join(self.root, "wal"))

    def _tmp_path(self, path: str) -> str:
        """A collision-free temp name next to *path* (same filesystem).

        Unique per (process, store, call) so concurrent writers of one
        digest — the double-demotion race — never share a temp file;
        both finish with an atomic replace and the last one wins.
        """
        with self._lock:
            self._tmp_counter += 1
            counter = self._tmp_counter
        return f"{path}.{os.getpid()}.{counter}.tmp"

    # -- snapshot writes -----------------------------------------------------

    def put_snapshot(self, digest: str, version: int, blob: bytes) -> int:
        """Durably store *blob* (pickled snapshot bytes) under *digest*.

        Temp-file + fsync + atomic replace + directory fsync: a reader
        (or a post-crash recovery) sees either the previous snapshot or
        the complete new one. Returns the on-disk byte size.
        """
        self._ensure_layout()
        body = zlib.compress(blob, self.compress_level)
        header = {
            "digest": digest,
            "version": version,
            "length": len(body),
            "sha256": hashlib.sha256(body).hexdigest(),
            "compression": "zlib",
        }
        header_line = (
            json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        path = self.snapshot_path(digest)
        tmp = self._tmp_path(path)
        handle = self.fs.open(tmp, "wb")
        try:
            self.fs.write(handle, SNAPSHOT_MAGIC + header_line + body)
            self.fs.fsync(handle)
        finally:
            handle.close()
        self.fs.replace(tmp, path)
        self.fs.fsync_path(os.path.dirname(path))
        with self._lock:
            self.snapshot_writes += 1
        return len(SNAPSHOT_MAGIC) + len(header_line) + len(body)

    def load_snapshot(self, digest: str) -> Optional[Tuple[int, bytes]]:
        """Read and verify the snapshot: ``(version, blob)`` or ``None``.

        Every failure mode — missing file, bad magic/header, short body
        (torn write), checksum mismatch, decompression error — is a
        counted, logged miss, never an exception.
        """
        path = self.snapshot_path(digest)
        try:
            with open(path, "rb") as handle:
                magic = handle.readline()
                if magic != SNAPSHOT_MAGIC:
                    return self._miss(digest, "snapshot-bad-magic")
                try:
                    header = json.loads(handle.readline().decode("utf-8"))
                    length = int(header["length"])
                    version = int(header["version"])
                    sha256 = header["sha256"]
                    stamped = header["digest"]
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    return self._miss(digest, "snapshot-bad-header")
                body = handle.read()
        except FileNotFoundError:
            return self._miss(digest, "snapshot-missing")
        except OSError:
            return self._miss(digest, "snapshot-unreadable")
        if stamped != digest:
            return self._miss(digest, "snapshot-wrong-digest")
        if len(body) != length:
            return self._miss(digest, "snapshot-torn")
        if hashlib.sha256(body).hexdigest() != sha256:
            return self._miss(digest, "snapshot-checksum")
        try:
            blob = zlib.decompress(body)
        except zlib.error:
            return self._miss(digest, "snapshot-undecompressable")
        return version, blob

    # -- WAL writes ----------------------------------------------------------

    def append_wal(self, digest: str, version: int, lines: List[str]) -> None:
        """Append one committed delta, fsync'd before this call returns.

        The record is one line — ``crc32(payload) <space> payload`` with
        the payload a compact JSON object ``{"lines": [...], "v": N}`` —
        so a torn append is detectable (missing newline, short line, or
        checksum mismatch) and truncatable without touching earlier
        records.
        """
        self._ensure_layout()
        record = self._encode_wal_record(version, lines)
        path = self.wal_path(digest)
        handle = self.fs.open(path, "ab")
        try:
            self.fs.write(handle, record)
            self.fs.fsync(handle)
        finally:
            handle.close()
        with self._lock:
            self.wal_appends += 1

    @staticmethod
    def _encode_wal_record(version: int, lines: List[str]) -> bytes:
        payload = json.dumps(
            {"lines": list(lines), "v": version},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return b"%08x %s\n" % (crc, payload)

    def reset_wal(self, digest: str) -> None:
        """Atomically replace the WAL with an empty one (compaction).

        Only called *after* a successful :meth:`put_snapshot` at the
        session's current version, so a crash before the replace leaves
        a WAL that the new snapshot fully covers (its records are
        skipped on rehydration) — correct either way.
        """
        self._ensure_layout()
        path = self.wal_path(digest)
        tmp = self._tmp_path(path)
        handle = self.fs.open(tmp, "wb")
        try:
            self.fs.fsync(handle)
        finally:
            handle.close()
        self.fs.replace(tmp, path)
        self.fs.fsync_path(os.path.dirname(path))

    def load_wal(self, digest: str) -> Tuple[List[Tuple[int, List[str]]], int, bool]:
        """Salvage the WAL: ``(records, valid_bytes, torn_tail)``.

        Records are ``(version, delta_lines)`` in file order, up to and
        excluding the first damaged line; ``valid_bytes`` is the file
        offset of that damage (callers repair by truncating there), and
        ``torn_tail`` says whether anything was dropped.
        """
        path = self.wal_path(digest)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return [], 0, False
        except OSError:
            return [], 0, False
        records: List[Tuple[int, List[str]]] = []
        offset = 0
        torn = False
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                torn = True  # partial final line: the classic torn append
                break
            line = raw[offset : newline]
            parsed = self._decode_wal_line(line)
            if parsed is None:
                # A damaged line poisons the framing of everything after
                # it; salvage stops here and the tail is truncated.
                torn = True
                break
            records.append(parsed)
            offset = newline + 1
        return records, offset, torn

    @staticmethod
    def _decode_wal_line(line: bytes) -> Optional[Tuple[int, List[str]]]:
        try:
            crc_text, payload = line.split(b" ", 1)
            if int(crc_text, 16) != (zlib.crc32(payload) & 0xFFFFFFFF):
                return None
            record = json.loads(payload.decode("utf-8"))
            version = record["v"]
            lines = record["lines"]
            if not isinstance(version, int) or not isinstance(lines, list):
                return None
            if not all(isinstance(entry, str) for entry in lines):
                return None
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None
        return version, lines

    def repair_wal(self, digest: str, valid_bytes: int) -> None:
        """Truncate the WAL at the last complete record.

        Called during rehydration when :meth:`load_wal` reported a torn
        tail, so subsequent appends start on a clean line boundary.
        """
        path = self.wal_path(digest)
        try:
            self.fs.truncate(path, valid_bytes)
        except OSError:
            # Repair is best-effort: a store that cannot repair serves
            # this rehydration correctly anyway (the salvaged records
            # were already read); the next one re-salvages.
            logger.warning("could not repair torn WAL tail for %s", digest)

    def invalidate(self, digest: str) -> None:
        """Drop both artifacts of *digest* (best-effort).

        Used when durability for a digest can no longer be guaranteed —
        e.g. a WAL append failed after the in-memory update was applied.
        A later rehydration then degrades to a clean cold admission
        instead of silently serving a state older than one the client
        saw acknowledged.
        """
        for path in (self.snapshot_path(digest), self.wal_path(digest)):
            try:
                self.fs.remove(path)
            except OSError:
                logger.warning("could not invalidate %s", path)

    # -- rehydration ---------------------------------------------------------

    def rehydrate(
        self,
        digest: str,
        method: Optional[str] = None,
        acyclicity: Optional[str] = None,
    ) -> Optional[ProvenanceSession]:
        """Rebuild the live session for *digest*, or ``None`` on a miss.

        Unpickles the verified snapshot, restores a session around it
        (marking the one evaluation as already paid —
        ``stats.evaluations`` reports 1), then replays the WAL suffix
        through :meth:`~repro.core.session.ProvenanceSession.update`:
        records covered by the snapshot are skipped, the remainder must
        extend it contiguously (version stamps ``S+1, S+2, ...``) or the
        whole digest degrades to a miss. ``method`` / ``acyclicity``
        guard against serving a snapshot built under different
        evaluation knobs (possible only if state directories are mixed
        across differently-configured registries).
        """
        loaded = self.load_snapshot(digest)
        if loaded is None:
            return None
        snapshot_version, blob = loaded
        try:
            snapshot = EvaluationSnapshot.from_bytes(blob)
        except Exception:
            return self._miss(digest, "snapshot-unpicklable")
        if method is not None and snapshot.method != method:
            return self._miss(digest, "snapshot-knob-mismatch")
        if acyclicity is not None and snapshot.acyclicity != acyclicity:
            return self._miss(digest, "snapshot-knob-mismatch")
        records, valid_bytes, torn = self.load_wal(digest)
        if torn:
            logger.warning(
                "truncating torn WAL tail for %s at byte %d", digest, valid_bytes
            )
            self.repair_wal(digest, valid_bytes)
        try:
            session = snapshot.restore()
        except Exception:
            return self._miss(digest, "snapshot-restore-failed")
        session.mark_rehydrated()
        expected = snapshot_version + 1
        for version, lines in records:
            if version < expected:
                continue  # covered by the snapshot (post-demotion WAL)
            if version > expected:
                # A gap: some committed state is unreachable. Serving the
                # snapshot alone could be *stale* relative to an
                # acknowledged update, so the digest degrades to a miss.
                return self._miss(digest, "wal-version-gap")
            try:
                delta = delta_from_lines(lines)
                receipt = session.update(delta)
            except Exception:
                return self._miss(digest, "wal-replay-failed")
            if receipt.version != version or session.version != version:
                return self._miss(digest, "wal-version-mismatch")
            expected = version + 1
        with self._lock:
            self.rehydrations += 1
        return session

    def _miss(self, digest: str, reason: str) -> None:
        with self._lock:
            self.miss_reasons[reason] = self.miss_reasons.get(reason, 0) + 1
        # A digest that was simply never stored is the normal first-
        # admission case, not a degradation worth warning about.
        level = logging.DEBUG if reason == "snapshot-missing" else logging.WARNING
        logger.log(
            level,
            "rehydration miss for %s (%s); falling back to cold admission",
            digest,
            reason,
        )
        return None

    # -- introspection -------------------------------------------------------

    def stored_digests(self) -> List[str]:
        """Digests with a snapshot on disk, sorted."""
        directory = os.path.join(self.root, "snapshots")
        try:
            entries = os.listdir(directory)
        except OSError:
            return []
        return sorted(
            entry[: -len(SNAPSHOT_SUFFIX)]
            for entry in entries
            if entry.endswith(SNAPSHOT_SUFFIX)
        )

    def disk_bytes(self) -> int:
        """Total bytes of snapshots plus WALs currently on disk."""
        total = 0
        for sub in ("snapshots", "wal"):
            directory = os.path.join(self.root, sub)
            try:
                entries = os.listdir(directory)
            except OSError:
                continue
            for entry in entries:
                try:
                    total += os.path.getsize(os.path.join(directory, entry))
                except OSError:
                    pass
        return total

    def stats(self) -> Dict:
        """A JSON-ready summary for the service ``stats`` operation."""
        with self._lock:
            miss_reasons = dict(self.miss_reasons)
            snapshot_writes = self.snapshot_writes
            wal_appends = self.wal_appends
            rehydrations = self.rehydrations
        return {
            "root": self.root,
            "stored_digests": len(self.stored_digests()),
            "disk_bytes": self.disk_bytes(),
            "snapshot_writes": snapshot_writes,
            "wal_appends": wal_appends,
            "rehydrations": rehydrations,
            "miss_reasons": miss_reasons,
        }

    def __repr__(self) -> str:
        return f"SnapshotStore(root={self.root!r})"
