"""The sharded service: an async router over single-process daemon workers.

One process cannot scale solver-heavy traffic past the GIL, so the
sharded daemon (``python -m repro serve --workers N``) splits the
registry across N *worker processes*, each an unmodified copy of the
proven single-process daemon (:mod:`repro.service.server`), and puts an
asyncio NDJSON front-end in front of them:

* **routing** — every session-addressed request is owned by exactly one
  worker, chosen by consistent hashing (:class:`HashRing`) over the
  session's content digest. Inline-text requests are canonicalized to
  the digest their admission would produce (:func:`~repro.service.
  registry.routing_digest` with the same ``method``/``acyclicity`` knobs
  the workers were spawned with), so texts and digests land on the same
  shard. A digest's warm state therefore lives on exactly one worker —
  the single-writer property that also makes a shared ``--state-dir``
  safe across the pool.
* **byte identity** — request lines are forwarded to the owning worker
  *verbatim* and its response lines returned verbatim (each client
  connection keeps one downstream connection per shard, and a worker
  connection serves strictly one-in-flight in order, so no id rewriting
  is ever needed). Whatever bytes the single-process daemon would have
  produced, the sharded one produces.
* **supervision** — :class:`WorkerSupervisor` spawns the workers,
  discovers each ephemeral port from the daemon's own ``listening on``
  stderr line, and restarts any worker that dies (exponential backoff,
  generation-counted). With a ``--state-dir``, a restarted worker
  rehydrates its digests from the snapshot store + WAL, so ``kill -9``
  costs a restart, not a re-evaluation.
* **failure semantics** — a request caught on a dying worker is retried
  transparently once the replacement is up, *except* ``update`` after
  its bytes were sent (the commit status is unknowable; replaying could
  double-apply a delta): that one surfaces as a well-formed
  ``worker-failure`` error. Connect-phase failures (nothing sent yet)
  are retryable for every op, ``update`` included.

The front-end answers ``ping`` itself, aggregates no-session ``stats``
across the pool (adding a ``sharding`` table — the single-process daemon
reports ``"sharding": null`` there), injects a ``shard`` block into
session-addressed ``stats``, and broadcasts ``shutdown``. Everything
else crosses to exactly one worker. ``docs/SERVICE.md`` documents the
client-visible contract.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ServiceError,
    decode_request,
    encode,
    error_response,
    ok_response,
    session_address,
    unknown_op_message,
)
from .registry import routing_digest

#: Virtual nodes per worker slot. More replicas = smoother balance at
#: the cost of a larger (still tiny) sorted point table.
DEFAULT_REPLICAS = 64

#: Byte limit for one NDJSON line on either side of the router. The
#: asyncio default (64 KiB) is far too small for inline databases and
#: 10k-tuple batch requests; 64 MiB comfortably covers the server-side
#: batch cap.
STREAM_LIMIT = 2 ** 26

#: Transparent-retry attempts per request before surfacing
#: ``worker-failure`` (each attempt waits for a fresh worker generation).
MAX_FORWARD_ATTEMPTS = 3

#: The stderr line every daemon prints once bound — the port-discovery
#: contract between supervisor and worker.
_LISTENING_RE = re.compile(r"listening on ([0-9.]+):(\d+)")


class HashRing:
    """Consistent hashing of content digests onto stable worker slots.

    Each slot contributes ``replicas`` points on a 64-bit ring (the
    first 8 bytes of sha256 over ``"slot#replica"``); a digest is owned
    by the slot whose point follows the digest's own hash. Slot points
    depend only on the slot *name*, never on how many other slots exist,
    which is the minimal-disruption property: resizing N→N±1 only moves
    the digests whose successor point belongs to the added/removed slot
    (~1/N of them), and a worker *restart* (same slot name) moves
    nothing at all.
    """

    def __init__(self, slots, replicas: int = DEFAULT_REPLICAS):
        self.slots: Tuple[str, ...] = tuple(slots)
        if not self.slots:
            raise ValueError("a hash ring needs at least one slot")
        if len(set(self.slots)) != len(self.slots):
            raise ValueError(f"duplicate slot names in {self.slots!r}")
        self.replicas = max(1, replicas)
        points = [
            (self._point(f"{slot}#{replica}"), slot)
            for slot in self.slots
            for replica in range(self.replicas)
        ]
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    @staticmethod
    def _point(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
        )

    def lookup(self, digest: str) -> str:
        """The slot owning *digest* (pure function of digest + slot set)."""
        index = bisect.bisect_right(self._keys, self._point(digest))
        return self._points[index % len(self._points)][1]


def worker_slots(count: int) -> List[str]:
    """The stable slot names of an N-worker pool (``shard-0``…)."""
    return [f"shard-{index}" for index in range(max(1, count))]


class WorkerHandle:
    """One worker slot: its live process, port, and restart bookkeeping.

    ``generation`` increments on every (re)spawn; forwarding code pins
    the generation it connected under, so a retry after a failure can
    insist on *a newer process* rather than racing the supervisor and
    reconnecting to the corpse's port.
    """

    def __init__(self, slot: str):
        self.slot = slot
        self.lock = threading.Lock()
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.generation = 0
        self.restarts = 0
        self.consecutive_failures = 0
        self.started_at = 0.0
        self.ready = threading.Event()
        #: Last worker stderr lines, for diagnostics when one misbehaves.
        self.recent_stderr: deque = deque(maxlen=50)

    def describe(self) -> Dict:
        """A JSON-ready row for the aggregate ``stats`` sharding table."""
        with self.lock:
            proc = self.proc
            return {
                "slot": self.slot,
                "pid": None if proc is None else proc.pid,
                "port": self.port,
                "generation": self.generation,
                "restarts": self.restarts,
                "alive": proc is not None and proc.poll() is None,
            }

    def wait_ready(
        self,
        timeout: float,
        after_generation: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Block until a live, bound worker is up; returns (generation, port).

        With ``after_generation``, only a *newer* generation counts —
        the retry path uses this so "the worker I just watched die" can
        never satisfy the wait. Raises ``worker-failure`` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self.lock:
                generation = self.generation
                port = self.port
                alive = self.proc is not None and self.proc.poll() is None
                is_ready = self.ready.is_set()
            if (
                is_ready
                and alive
                and port is not None
                and (after_generation is None or generation > after_generation)
            ):
                return generation, port
            if time.monotonic() >= deadline:
                tail = "; ".join(list(self.recent_stderr)[-3:])
                raise ServiceError(
                    "worker-failure",
                    f"worker {self.slot} did not come up within {timeout:.1f}s"
                    + (f" (stderr: {tail})" if tail else ""),
                )
            time.sleep(0.01)


class WorkerSupervisor:
    """Spawns and babysits the worker pool.

    Each worker is the single-process daemon run as a subprocess
    (``python -m repro serve --port 0 --workers 1 …``), its ephemeral
    port read from the ``listening on`` stderr line. A monitor thread
    restarts dead workers with exponential backoff (reset once a worker
    survives :attr:`STABLE_SECONDS`); :meth:`quiesce` stops the
    restarting without killing anyone, which is how a broadcast
    ``shutdown`` lets workers exit for good.
    """

    #: A worker alive this long is considered stable (backoff resets).
    STABLE_SECONDS = 5.0

    def __init__(
        self,
        count: int,
        *,
        state_dir: Optional[str] = None,
        worker_threads: Optional[int] = None,
        batch_workers: int = 1,
        parallel_threshold: Optional[int] = None,
        max_batch: Optional[int] = None,
        max_sessions: Optional[int] = None,
        max_bytes: Optional[int] = None,
        method: str = "seminaive",
        acyclicity: str = "vertex-elimination",
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        self.slots = worker_slots(count)
        self.handles: Dict[str, WorkerHandle] = {
            slot: WorkerHandle(slot) for slot in self.slots
        }
        self.state_dir = state_dir
        self.worker_threads = worker_threads
        self.batch_workers = batch_workers
        self.parallel_threshold = parallel_threshold
        self.max_batch = max_batch
        self.max_sessions = max_sessions
        self.max_bytes = max_bytes
        self.method = method
        self.acyclicity = acyclicity
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None

    # -- process plumbing -----------------------------------------------------

    def _command(self) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            "1",
            "--batch-workers",
            str(self.batch_workers),
            "--method",
            self.method,
            "--acyclicity",
            self.acyclicity,
        ]
        if self.worker_threads is not None:
            command += ["--threads", str(self.worker_threads)]
        if self.parallel_threshold is not None:
            command += ["--parallel-threshold", str(self.parallel_threshold)]
        if self.max_batch is not None:
            command += ["--max-batch", str(self.max_batch)]
        if self.max_sessions is not None:
            command += ["--max-sessions", str(self.max_sessions)]
        if self.max_bytes is not None:
            command += ["--max-bytes", str(self.max_bytes)]
        if self.state_dir is not None:
            # All workers share one store: safe because the ring gives
            # each digest exactly one owner (single-writer-per-digest).
            command += ["--state-dir", self.state_dir]
        return command

    @staticmethod
    def _environment() -> Dict[str, str]:
        # The spawned interpreter must find this exact package even when
        # the parent was launched with PYTHONPATH (the repo's own mode).
        from .. import __file__ as package_init

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(package_init)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        return env

    def _spawn(self, handle: WorkerHandle) -> None:
        proc = subprocess.Popen(
            self._command(),
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=self._environment(),
            text=True,
            encoding="utf-8",
        )
        with handle.lock:
            handle.proc = proc
            handle.port = None
            handle.started_at = time.monotonic()
        reader = threading.Thread(
            target=self._read_stderr,
            args=(handle, proc),
            name=f"repro-shard-stderr-{handle.slot}",
            daemon=True,
        )
        reader.start()

    def _read_stderr(self, handle: WorkerHandle, proc: subprocess.Popen) -> None:
        """Drain one worker's stderr; the bound-port line flips it ready."""
        try:
            for raw in proc.stderr:
                line = raw.rstrip()
                handle.recent_stderr.append(line)
                match = _LISTENING_RE.search(line)
                if match:
                    with handle.lock:
                        if handle.proc is proc:  # not a stale generation
                            handle.port = int(match.group(2))
                            handle.ready.set()
        except ValueError:
            pass  # pipe closed during teardown

    def _respawn(self, handle: WorkerHandle) -> None:
        with handle.lock:
            handle.generation += 1
            handle.restarts += 1
            handle.ready.clear()
            handle.port = None
        self._spawn(handle)

    def _monitor(self) -> None:
        while not self._stop.is_set():
            for handle in self.handles.values():
                with handle.lock:
                    proc = handle.proc
                    started_at = handle.started_at
                if proc is None:
                    continue
                if proc.poll() is None:
                    if (
                        handle.consecutive_failures
                        and time.monotonic() - started_at > self.STABLE_SECONDS
                    ):
                        handle.consecutive_failures = 0
                    continue
                # Dead worker: clear readiness immediately (forwarders
                # stop connecting to the corpse), back off, respawn.
                with handle.lock:
                    handle.ready.clear()
                delay = min(
                    self.backoff_cap,
                    self.backoff_base
                    * (2 ** min(handle.consecutive_failures, 10)),
                )
                handle.consecutive_failures += 1
                if self._stop.wait(delay):
                    return
                self._respawn(handle)
            if self._stop.wait(0.02):
                return

    # -- lifecycle ------------------------------------------------------------

    def start(self, timeout: float = 60.0) -> None:
        """Spawn every worker and wait until all are bound and live."""
        for handle in self.handles.values():
            self._spawn(handle)
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-shard-monitor", daemon=True
        )
        self._monitor_thread.start()
        try:
            for handle in self.handles.values():
                handle.wait_ready(timeout)
        except ServiceError:
            self.stop()
            raise

    def quiesce(self) -> None:
        """Stop restarting dead workers (they may now exit for good)."""
        self._stop.set()

    def stop(self) -> None:
        """Quiesce, then terminate any still-running workers."""
        self.quiesce()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
        procs = []
        for handle in self.handles.values():
            with handle.lock:
                proc = handle.proc
            if proc is not None and proc.poll() is None:
                proc.terminate()
                procs.append(proc)
        deadline = time.monotonic() + 5.0
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)


class ShardedServiceServer:
    """The async NDJSON front-end over a supervised worker pool.

    Runs its own asyncio loop on a background thread (callers stay
    synchronous — the CLI, tests, and :func:`~repro.service.client.
    local_sharded_service` all use it the same way). Each accepted
    client connection is served strictly in request order, matching the
    single-process daemon's per-connection ordering contract; different
    connections proceed concurrently, each with its own downstream
    connection per shard.
    """

    def __init__(
        self,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        state_dir: Optional[str] = None,
        worker_threads: Optional[int] = None,
        batch_workers: int = 1,
        parallel_threshold: Optional[int] = None,
        max_batch: Optional[int] = None,
        max_sessions: Optional[int] = None,
        max_bytes: Optional[int] = None,
        method: str = "seminaive",
        acyclicity: str = "vertex-elimination",
        replicas: int = DEFAULT_REPLICAS,
        spawn_timeout: float = 60.0,
    ):
        if workers < 1:
            raise ValueError("a sharded service needs at least 1 worker")
        self.method = method
        self.acyclicity = acyclicity
        self.spawn_timeout = spawn_timeout
        self.supervisor = WorkerSupervisor(
            workers,
            state_dir=state_dir,
            worker_threads=worker_threads,
            batch_workers=batch_workers,
            parallel_threshold=parallel_threshold,
            max_batch=max_batch,
            max_sessions=max_sessions,
            max_bytes=max_bytes,
            method=method,
            acyclicity=acyclicity,
        )
        self.ring = HashRing(self.supervisor.slots, replicas=replicas)
        self.started_at = time.time()
        self._requested_host = host
        self._requested_port = port
        self._bound: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = False
        self._closed = False
        #: Set once a client's ``shutdown`` request has been honored —
        #: what a foreground host (``repro serve --workers N``) waits on
        #: to exit, mirroring the single-process daemon's behavior.
        self.stopped = threading.Event()
        self._local_requests = 0
        self._counter_lock = threading.Lock()
        # Blocking work the event loop must not absorb: canonicalizing
        # inline texts into routing digests, and waiting for a worker
        # generation during restarts.
        self._route_pool = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-shard-route"
        )

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        """The bound front-end host."""
        return self._bound[0] if self._bound else self._requested_host

    @property
    def port(self) -> int:
        """The bound front-end port (after :meth:`start`)."""
        return self._bound[1] if self._bound else self._requested_port

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the workers, then bind and serve on a background loop."""
        self.supervisor.start(timeout=self.spawn_timeout)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-shard-router", daemon=True
        )
        self._loop_thread.start()
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._start_server(), self._loop
            )
            future.result(timeout=30.0)
        except Exception:
            self.close()
            raise

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _start_server(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._requested_host,
            self._requested_port,
            limit=STREAM_LIMIT,
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])

    def close(self) -> None:
        """Stop accepting, stop the loop, stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(
                    self._close_server(), self._loop
                ).result(timeout=5.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
        if self._loop is not None and not self._loop.is_running():
            self._loop.close()
        self._route_pool.shutdown(wait=False)
        self.supervisor.stop()

    async def _close_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- serving --------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        """One client connection: strictly ordered request/response."""
        conns: Dict[str, Tuple[int, asyncio.StreamReader, asyncio.StreamWriter]] = {}
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # A line past STREAM_LIMIT cannot be reframed; the
                    # stream is unusable from here.
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                response = await self._handle_request_line(line, conns)
                try:
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if self._shutdown:
                    break
        finally:
            for _, _, downstream in conns.values():
                downstream.close()
            writer.close()

    async def _handle_request_line(self, line: str, conns) -> str:
        with self._counter_lock:
            self._local_requests += 1
        try:
            request = decode_request(line)
        except ServiceError as exc:
            return encode(exc.as_response(None))
        request_id = request.get("id")
        op = request.get("op")
        try:
            if not isinstance(op, str) or op not in OPS:
                raise ServiceError("unknown-op", unknown_op_message(op))
            if op == "ping":
                return encode(self._local_ping(request_id))
            if op == "shutdown":
                return encode(await self._broadcast_shutdown(request_id))
            if op == "stats" and request.get("session") is None:
                return encode(await self._aggregate_stats(request_id))
            digest = await self._route(request)
            return await self._forward(request, line, digest, conns)
        except ServiceError as exc:
            return encode(exc.as_response(request_id))
        except Exception as exc:  # a router bug: still answer in-protocol
            return encode(
                error_response(
                    request_id, "internal-error", f"{type(exc).__name__}: {exc}"
                )
            )

    async def _route(self, request: Dict) -> str:
        """The content digest a request addresses (its routing key)."""
        digest, texts = session_address(request)
        if digest is not None:
            return digest
        program, database, answer = texts
        loop = asyncio.get_running_loop()
        # Canonicalization parses both texts — CPU work that must not
        # stall every other connection on the loop.
        return await loop.run_in_executor(
            self._route_pool,
            routing_digest,
            program,
            database,
            answer,
            self.method,
            self.acyclicity,
        )

    async def _forward(self, request: Dict, line: str, digest: str, conns) -> str:
        """Send the raw line to the owning worker; return its raw response.

        Retry policy: a connect-phase failure (no bytes reached the
        worker) retries for every op; a failure after the bytes were
        sent retries only idempotent ops — an ``update`` whose commit
        status is unknowable surfaces ``worker-failure`` instead of
        risking a double-applied delta. Every retry insists on a worker
        generation newer than the one that failed.
        """
        slot = self.ring.lookup(digest)
        handle = self.supervisor.handles[slot]
        op = request.get("op")
        idempotent = op != "update"
        loop = asyncio.get_running_loop()
        failed_generation: Optional[int] = None
        last_error: Optional[BaseException] = None
        for _ in range(MAX_FORWARD_ATTEMPTS):
            generation, port = await loop.run_in_executor(
                self._route_pool,
                handle.wait_ready,
                self.spawn_timeout,
                failed_generation,
            )
            sent = False
            try:
                conn = conns.get(slot)
                if conn is not None and conn[0] != generation:
                    conn[2].close()
                    conn = None
                if conn is None:
                    downstream = await asyncio.open_connection(
                        "127.0.0.1", port, limit=STREAM_LIMIT
                    )
                    conn = (generation, downstream[0], downstream[1])
                    conns[slot] = conn
                _, down_reader, down_writer = conn
                down_writer.write(line.encode("utf-8") + b"\n")
                sent = True
                await down_writer.drain()
                raw = await down_reader.readline()
                if not raw:
                    raise ConnectionResetError("worker closed the connection")
            except (OSError, asyncio.IncompleteReadError) as exc:
                stale = conns.pop(slot, None)
                if stale is not None:
                    stale[2].close()
                failed_generation = generation
                last_error = exc
                if sent and not idempotent:
                    break
                continue
            response = raw.decode("utf-8").rstrip("\n")
            if op == "stats":
                return self._annotate_session_stats(response, handle)
            return response
        raise ServiceError(
            "worker-failure",
            f"worker {slot} failed while serving op {op!r} ({last_error}); "
            + (
                "the request was retried against its replacement without success"
                if idempotent
                else "the update's commit status is unknown — re-check the "
                "session version before re-sending"
            ),
        )

    def _annotate_session_stats(self, response_line: str, handle: WorkerHandle) -> str:
        """Inject the owning worker's identity into a session stats reply."""
        try:
            response = json.loads(response_line)
        except ValueError:  # pragma: no cover - workers emit valid JSON
            return response_line
        if response.get("ok") and isinstance(response.get("result"), dict):
            response["result"]["shard"] = handle.describe()
            return encode(response)
        return response_line

    # -- locally-served operations --------------------------------------------

    def _local_ping(self, request_id) -> Dict:
        result = {
            "pong": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
        }
        return ok_response(request_id, "ping", result)

    async def _broadcast_shutdown(self, request_id) -> Dict:
        """Quiesce the supervisor, then ask every worker to stop."""
        self.supervisor.quiesce()
        for slot in self.ring.slots:
            handle = self.supervisor.handles[slot]
            with handle.lock:
                port = handle.port
                alive = handle.proc is not None and handle.proc.poll() is None
            if port is None or not alive:
                continue
            try:
                await self._oneshot(port, {"id": 0, "op": "shutdown"})
            except OSError:
                pass  # already gone — which is what shutdown wants
        self._shutdown = True
        self.stopped.set()
        return ok_response(request_id, "shutdown", {"stopping": True})

    async def _oneshot(self, port: int, payload: Dict) -> Dict:
        """One request over a fresh short-lived worker connection."""
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port, limit=STREAM_LIMIT
        )
        try:
            writer.write((encode(payload) + "\n").encode("utf-8"))
            await writer.drain()
            raw = await reader.readline()
        finally:
            writer.close()
        if not raw:
            raise ConnectionResetError("worker closed the connection")
        return json.loads(raw.decode("utf-8"))

    async def _aggregate_stats(self, request_id) -> Dict:
        """Pool-wide ``stats``: summed counters plus the sharding table.

        A worker that is down (or mid-restart) contributes its handle
        row with an ``error`` instead of failing the whole request —
        monitoring must work *especially* while a shard is unhealthy.
        """
        summed = {
            "session_count": 0,
            "bytes_in_use": 0,
            "admissions": 0,
            "hits": 0,
            "evictions": 0,
            "demotions": 0,
            "demotion_failures": 0,
            "rehydrations": 0,
            "persist_failures": 0,
            "max_sessions": 0,
        }
        max_bytes_values: List[Optional[int]] = []
        sessions: List[Dict] = []
        stores: List[Dict] = []
        requests_served = 0
        per_worker: List[Dict] = []
        loop = asyncio.get_running_loop()
        for slot in self.ring.slots:
            handle = self.supervisor.handles[slot]
            row = handle.describe()
            try:
                generation, port = await loop.run_in_executor(
                    self._route_pool, handle.wait_ready, 2.0, None
                )
                response = await self._oneshot(port, {"id": 0, "op": "stats"})
                if not response.get("ok"):
                    raise ConnectionResetError(
                        response.get("error", {}).get("message", "stats failed")
                    )
            except (ServiceError, OSError, ValueError) as exc:
                row["error"] = str(exc)
                per_worker.append(row)
                continue
            result = response["result"]
            for key in summed:
                summed[key] += result.get(key) or 0
            max_bytes_values.append(result.get("max_bytes"))
            sessions.extend(result.get("sessions") or [])
            if result.get("store"):
                stores.append(result["store"])
            requests_served += result.get("requests_served") or 0
            row["requests_served"] = result.get("requests_served")
            row["session_count"] = result.get("session_count")
            per_worker.append(row)
        with self._counter_lock:
            local = self._local_requests
        result = dict(summed)
        result["max_bytes"] = (
            None
            if any(value is None for value in max_bytes_values)
            or not max_bytes_values
            else sum(max_bytes_values)
        )
        result["sessions"] = sessions
        result["store"] = self._merge_stores(stores)
        result["method"] = self.method
        result["acyclicity"] = self.acyclicity
        result["protocol"] = PROTOCOL_VERSION
        result["uptime_seconds"] = time.time() - self.started_at
        result["requests_served"] = requests_served + local
        result["sharding"] = {
            "workers": len(self.ring.slots),
            "replicas": self.ring.replicas,
            "router_requests": local,
            "per_worker": per_worker,
        }
        return ok_response(request_id, "stats", result)

    @staticmethod
    def _merge_stores(stores: List[Dict]) -> Optional[Dict]:
        """Sum the workers' store counters key-wise (None when storeless)."""
        if not stores:
            return None
        merged: Dict = {}
        for store in stores:
            for key, value in store.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    merged.setdefault(key, value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return merged
