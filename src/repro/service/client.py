"""A synchronous client for the provenance service daemon.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over a
TCP connection: one request line out, one response line in. It is
deliberately thin — every method is a shaped :meth:`call` — so the wire
traffic it generates is exactly what ``docs/SERVICE.md`` documents and
what ``python -m repro client`` scripts by hand.

Thread use: a client holds one connection and serializes calls on it
(send + receive under an internal lock). Concurrent load wants one
client *per thread* — connections are cheap, and the daemon's
per-session locks do the real coordination server-side.

:func:`local_service` is the one-liner for tests, the harness round-trip
and the benchmarks: spin a real daemon on an ephemeral localhost port in
a background thread, yield a connected client, tear everything down::

    with local_service() as client:
        opened = client.open(program_text, database_text, "tc")
        response = client.why(opened["session"], ("a", "c"), limit=10)
        members = response["result"]["members"]
"""

from __future__ import annotations

import json
import socket
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

from .protocol import ServiceError, encode
from .registry import SessionRegistry
from .server import ProvenanceService, TCPServiceServer


class ServiceClient:
    """One NDJSON connection to a provenance service daemon.

    Raises :class:`~repro.service.protocol.ServiceError` (with the
    server's error code) when a call comes back ``ok: false``, and with
    code ``connection-closed`` when the server disappears mid-call.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = None,
    ):
        """Connect to a daemon. ``timeout`` bounds each socket operation.

        The default is no timeout: provenance requests legitimately run
        for minutes (a cold ``open`` evaluates the database, a ``batch``
        can enumerate thousands of witnesses), and a timeout firing
        mid-response would desynchronize the NDJSON stream. When a
        timeout is set and fires, the client marks itself broken and
        refuses further use — reconnect rather than resynchronize.
        """
        #: The ``(host, port)`` this client connected to — handy for
        #: opening sibling connections (one client per thread).
        self.address: Tuple[str, int] = (host, port)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._wfile = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._lock = threading.Lock()
        self._next_id = 0
        self._broken = False

    # -- plumbing -------------------------------------------------------------

    def request(self, payload: Dict) -> Dict:
        """Send one raw request object, return the raw response object.

        Assigns an ``id`` when the payload has none, and asserts the
        response echoes it (calls are serialized, so the next line is
        always this request's answer).
        """
        with self._lock:
            if self._broken:
                raise ServiceError(
                    "connection-closed",
                    "connection is broken (earlier timeout or I/O error); "
                    "reconnect with a fresh client",
                )
            if "id" not in payload:
                self._next_id += 1
                payload = {**payload, "id": self._next_id}
            try:
                self._wfile.write(encode(payload) + "\n")
                self._wfile.flush()
                line = self._rfile.readline()
            except OSError as exc:
                # A timeout or I/O error mid-exchange leaves the stream
                # unsynchronized (the response may still arrive later):
                # poison the connection instead of mispairing replies.
                self._broken = True
                raise ServiceError("connection-closed", f"socket error: {exc}")
        if not line:
            self._broken = True
            raise ServiceError("connection-closed", "server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            # A truncated/garbled line means the stream can no longer be
            # trusted to frame responses: poison the connection.
            self._broken = True
            raise ServiceError(
                "connection-closed", f"unreadable response line ({exc})"
            )
        if response.get("id") != payload["id"]:
            self._broken = True
            raise ServiceError(
                "connection-closed",
                f"response id {response.get('id')!r} does not match "
                f"request id {payload['id']!r}",
            )
        return response

    def call(self, op: str, **fields) -> Dict:
        """One operation; ``None``-valued fields are omitted from the wire."""
        payload = {"op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        response = self.request(payload)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "internal-error"),
                error.get("message", "unknown error"),
            )
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        for closer in (self._wfile.close, self._rfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shaped operations ----------------------------------------------------

    def ping(self) -> Dict:
        """Liveness + protocol version."""
        return self.call("ping")

    def open(
        self,
        program_text: str,
        database_text: str,
        answer: Optional[str] = None,
    ) -> Dict:
        """Admit-or-reuse a session; the response carries its digest."""
        return self.call(
            "open", program=program_text, database=database_text, answer=answer
        )

    def answers(
        self,
        session: str,
        sample: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Dict:
        """The sorted answer tuples of ``Q(D)``.

        With ``sample``, the daemon applies the harness's seeded
        sampling kernel server-side and ships only that many tuples
        (the full count still comes back as ``result["total"]``).
        """
        return self.call("answers", session=session, sample=sample, seed=seed)

    def why(
        self,
        session: str,
        tup: Sequence,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Members of ``whyUN(t, D, Q)`` in discovery order."""
        return self.call(
            "why", session=session, tuple=list(tup), limit=limit, timeout=timeout
        )

    def decide(
        self,
        session: str,
        tup: Sequence,
        subset: Sequence[str],
        tree_class: Optional[str] = None,
    ) -> Dict:
        """Membership of a candidate subset (facts as ``"fact."`` strings)."""
        return self.call(
            "decide",
            session=session,
            tuple=list(tup),
            subset=list(subset),
            tree_class=tree_class,
        )

    def smallest(self, session: str, tup: Sequence) -> Dict:
        """A cardinality-minimum member of ``whyUN(t, D, Q)``."""
        return self.call("smallest", session=session, tuple=list(tup))

    def minimal(
        self, session: str, tup: Sequence, limit: Optional[int] = None
    ) -> Dict:
        """Subset-minimal members of ``whyUN(t, D, Q)``."""
        return self.call("minimal", session=session, tuple=list(tup), limit=limit)

    def batch(
        self,
        session: str,
        tuples: Optional[Sequence[Sequence]] = None,
        all_answers: bool = False,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict:
        """Explain many tuples with one request (``all_answers`` or a list)."""
        return self.call(
            "batch",
            session=session,
            tuples=None if tuples is None else [list(t) for t in tuples],
            all_answers=all_answers or None,
            limit=limit,
            timeout=timeout,
            workers=workers,
            chunk_size=chunk_size,
        )

    def update(
        self,
        session: str,
        lines: Optional[Sequence[str]] = None,
        insert: Optional[Sequence[str]] = None,
        delete: Optional[Sequence[str]] = None,
    ) -> Dict:
        """Apply a delta through incremental maintenance, never re-evaluation."""
        return self.call(
            "update",
            session=session,
            lines=None if lines is None else list(lines),
            insert=None if insert is None else list(insert),
            delete=None if delete is None else list(delete),
        )

    def stats(self, session: Optional[str] = None) -> Dict:
        """Registry-wide counters, plus one session's detail when given."""
        return self.call("stats", session=session)

    def shutdown_server(self) -> Dict:
        """Ask the daemon to stop accepting connections."""
        return self.call("shutdown")


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port`` (host defaults to localhost when omitted)."""
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad service address {address!r}; expected host:port")
    return host or "127.0.0.1", port


@contextmanager
def local_service(
    registry: Optional[SessionRegistry] = None,
    threads: Optional[int] = None,
    batch_workers: int = 1,
    parallel_threshold: Optional[int] = None,
    state_dir: Optional[str] = None,
) -> Iterator[ServiceClient]:
    """A real daemon on an ephemeral localhost port, as a context manager.

    Starts :class:`~repro.service.server.TCPServiceServer` in a
    background thread, yields a connected :class:`ServiceClient`, and
    tears the whole stack down on exit. Every request genuinely crosses
    the TCP wire — this is the fixture behind the byte-identity tests,
    ``run_database(service=True)`` and the throughput benchmark.

    ``state_dir`` attaches a durable warm-state tier
    (:class:`~repro.service.store.SnapshotStore`) to a default registry,
    the in-process equivalent of ``python -m repro serve --state-dir``;
    ignored when an explicit ``registry`` is passed (configure its
    ``store`` directly instead).
    """
    if registry is None and state_dir is not None:
        from .store import SnapshotStore

        registry = SessionRegistry(store=SnapshotStore(state_dir))
    kwargs = {"registry": registry, "threads": threads, "batch_workers": batch_workers}
    if parallel_threshold is not None:
        kwargs["parallel_threshold"] = parallel_threshold
    service = ProvenanceService(**kwargs)
    server = None
    client = None
    try:
        server = TCPServiceServer(service)
        server.serve_in_thread()
        client = ServiceClient(host=server.host, port=server.port)
        yield client
    finally:
        # Tear down whatever got built, even when startup failed midway
        # (a refused connection must not leak the accept thread, the
        # bound socket, or the dispatcher executor).
        if client is not None:
            client.close()
        if server is not None:
            server.shutdown()
            server.server_close()
        service.close()


@contextmanager
def local_sharded_service(
    workers: int = 2,
    *,
    state_dir: Optional[str] = None,
    worker_threads: Optional[int] = None,
    batch_workers: int = 1,
    parallel_threshold: Optional[int] = None,
    max_batch: Optional[int] = None,
    max_sessions: Optional[int] = None,
    max_bytes: Optional[int] = None,
    method: str = "seminaive",
    acyclicity: str = "vertex-elimination",
    spawn_timeout: float = 60.0,
) -> Iterator[ServiceClient]:
    """A sharded daemon (*workers* real processes) behind one client.

    The multi-process sibling of :func:`local_service`: starts a
    :class:`~repro.service.shard.ShardedServiceServer` — an async NDJSON
    front-end routing by content digest to ``workers`` supervised
    single-process daemons — yields a connected :class:`ServiceClient`,
    and tears the whole pool down on exit. Same wire protocol, same
    bytes (the byte-identity tests run the same assertions through
    both); ``state_dir`` is shared by the pool, safe because consistent
    hashing gives every digest exactly one owning worker.
    """
    from .shard import ShardedServiceServer

    server = ShardedServiceServer(
        workers,
        state_dir=state_dir,
        worker_threads=worker_threads,
        batch_workers=batch_workers,
        parallel_threshold=parallel_threshold,
        max_batch=max_batch,
        max_sessions=max_sessions,
        max_bytes=max_bytes,
        method=method,
        acyclicity=acyclicity,
        spawn_timeout=spawn_timeout,
    )
    client = None
    try:
        server.start()
        client = ServiceClient(host=server.host, port=server.port)
        yield client
    finally:
        if client is not None:
            client.close()
        server.close()
