"""The provenance service daemon: request dispatcher plus transports.

:class:`ProvenanceService` is the transport-independent heart: it owns a
:class:`~repro.service.registry.SessionRegistry` and a bounded thread
dispatcher, and turns one request object into one response object. The
two transports are thin framing shells around it:

* :class:`TCPServiceServer` — a threading TCP server speaking
  newline-delimited JSON; one reader thread per connection, every request
  dispatched through the shared thread pool, so concurrent clients
  genuinely execute concurrently (bounded by ``threads``) while requests
  *within* one connection keep their order.
* :func:`serve_stdio` — the same protocol over stdin/stdout for
  single-client scripting and tests (``python -m repro serve --stdio``).

Concurrency contract
--------------------

Every session-touching operation runs under that session's reentrant
lock (:attr:`ProvenanceSession.lock`), so concurrent requests against one
warm session serialize their cache fills instead of racing, while
requests against *different* sessions proceed in parallel. Responses are
stamped with the session ``version`` read inside the lock: a client
interleaving ``update`` and read traffic can attribute every answer to
the exact database state that produced it. Large ``batch`` requests
reuse the version-stamped parallel snapshot path
(:meth:`ProvenanceSession.explain_batch` with workers) — the fork moment
itself is serialized process-wide by :data:`repro.core.parallel._FORK_LOCK`.
"""

from __future__ import annotations

import socketserver
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, TextIO, Tuple

from ..core.decision import TREE_CLASSES
from ..core.parallel import PARALLEL_BATCH_THRESHOLD
from ..datalog.database import Delta
from ..datalog.io import delta_from_lines
from ..datalog.parser import parse_database
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ServiceError,
    decode_request,
    encode,
    error_response,
    ok_response,
    render_member,
    render_members,
    session_address,
    tuple_from_json,
    unknown_op_message,
)
from .registry import SessionEntry, SessionRegistry

#: Default size of the shared request dispatcher.
DEFAULT_DISPATCH_THREADS = 8

#: Default cap on tuples in one ``batch`` request. A batch holds the
#: session lock for its whole run, so an unbounded request is a
#: denial-of-service on every other client of that session; oversized
#: batches are rejected with ``bad-request`` and the client splits them.
DEFAULT_MAX_BATCH_TUPLES = 10_000


def _preload_handler_modules() -> None:
    """Import everything the handlers and forked workers load lazily.

    A daemon forks batch pools from a *threaded* process; a child forked
    while another dispatcher thread holds the interpreter's import lock
    would deadlock inside its own first import. Importing every lazy
    handler dependency once, before serving begins, removes that window.
    Runs at service construction (not module import) so merely importing
    this module — e.g. the CLI reading a default constant — stays cheap.
    """
    from ..core import decision  # noqa: F401
    from ..core import enumerator  # noqa: F401
    from ..core import incremental  # noqa: F401
    from ..core import minimal  # noqa: F401
    from ..core import parallel  # noqa: F401
    from ..harness import runner  # noqa: F401


def _answer_count(session) -> int:
    """``|Q(D)|`` without materializing and sorting the answer list."""
    return len(session.model.relation(session.query.answer_predicate))


def _require_tuple(request: Dict):
    """The request's ``tuple`` field as a Python tuple (``bad-request``)."""
    if "tuple" not in request:
        raise ServiceError("bad-request", "request needs a 'tuple' field")
    return tuple_from_json(request["tuple"])


def _optional_number(request: Dict, name: str):
    """A numeric field or ``None`` (``bad-request`` on wrong type)."""
    value = request.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError("bad-request", f"{name!r} must be a number")
    return value


def _parse_fact_texts(texts, label: str) -> List:
    """Parse a JSON array of ``"fact."`` strings (``bad-request``)."""
    if not isinstance(texts, (list, tuple)):
        raise ServiceError("bad-request", f"{label!r} must be a JSON array")
    facts: List = []
    for text in texts:
        if not isinstance(text, str):
            raise ServiceError("bad-request", f"{label!r} entries must be strings")
        try:
            facts.extend(parse_database(text))
        except Exception as exc:
            raise ServiceError("bad-request", f"bad fact in {label!r} ({exc}): {text}")
    return facts


class ProvenanceService:
    """Transport-independent dispatcher over a session registry.

    Parameters
    ----------
    registry:
        The session registry to serve from (a default-budget one is
        created when omitted).
    threads:
        Size of the shared dispatcher pool — the bound on concurrently
        executing requests across all connections.
    batch_workers:
        Worker processes for ``batch`` requests that do not pin their own
        ``workers`` field and meet the parallel threshold (``1`` keeps
        every batch serial in-process; ``0`` means one per core).
    parallel_threshold:
        Minimum batch size that fans out across the worker pool.
    max_batch_tuples:
        Upper bound on tuples one ``batch`` request may carry (inline or
        via ``all_answers``); larger requests are rejected with
        ``bad-request`` before any work is done.
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        threads: Optional[int] = None,
        batch_workers: int = 1,
        parallel_threshold: int = PARALLEL_BATCH_THRESHOLD,
        max_batch_tuples: int = DEFAULT_MAX_BATCH_TUPLES,
    ):
        _preload_handler_modules()
        self.registry = registry if registry is not None else SessionRegistry()
        self.batch_workers = batch_workers
        self.parallel_threshold = max(1, parallel_threshold)
        self.max_batch_tuples = max(1, max_batch_tuples)
        self.started_at = time.time()
        self.requests_served = 0
        self._counter_lock = threading.Lock()
        self._shutdown = threading.Event()
        # None means default; an explicit value is clamped to >= 1 so
        # --threads 0 never silently becomes the 8-thread default.
        if threads is None:
            threads = DEFAULT_DISPATCH_THREADS
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, threads),
            thread_name_prefix="repro-service",
        )

    # -- dispatch -------------------------------------------------------------

    @property
    def shutdown_requested(self) -> bool:
        """Whether a ``shutdown`` request has been served."""
        return self._shutdown.is_set()

    def submit_line(self, line: str) -> "Future[str]":
        """Dispatch one request line on the shared thread pool."""
        return self._executor.submit(self.handle_line, line)

    def handle_line(self, line: str) -> str:
        """One request line in, one response line out (never raises)."""
        try:
            request = decode_request(line)
        except ServiceError as exc:
            return encode(exc.as_response(None))
        return encode(self.handle_request(request))

    def handle_request(self, request: Dict) -> Dict:
        """One request object in, one response object out (never raises)."""
        request_id = request.get("id")
        op = request.get("op")
        try:
            if not isinstance(op, str) or op not in self._HANDLERS:
                raise ServiceError("unknown-op", unknown_op_message(op))
            response = getattr(self, "_op_" + op)(request)
        except ServiceError as exc:
            response = exc.as_response(request_id)
        except Exception as exc:  # a bug, not a client error: still answer
            response = error_response(
                request_id, "internal-error", f"{type(exc).__name__}: {exc}"
            )
        with self._counter_lock:
            self.requests_served += 1
        return response

    def close(self) -> None:
        """Stop the dispatcher (in-flight requests finish)."""
        self._executor.shutdown(wait=False)

    # -- session resolution ----------------------------------------------------

    def _entry_for(self, request: Dict) -> Tuple[SessionEntry, bool]:
        """Resolve the session a request addresses (digest or inline texts)."""
        digest, texts = session_address(request)
        if digest is not None:
            return self.registry.get(digest), False
        program, database, answer = texts
        return self.registry.acquire(program, database, answer)

    # -- operations ------------------------------------------------------------

    def _op_ping(self, request: Dict) -> Dict:
        result = {
            "pong": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
        }
        return ok_response(request.get("id"), "ping", result)

    def _op_shutdown(self, request: Dict) -> Dict:
        self._shutdown.set()
        return ok_response(request.get("id"), "shutdown", {"stopping": True})

    def _op_open(self, request: Dict) -> Dict:
        entry, admitted = self._entry_for(request)
        with entry.lock:
            result = {
                "admitted": admitted,
                "rehydrated": entry.rehydrated,
                "answer": entry.answer,
                "answers": _answer_count(entry.session),
                "fact_count": len(entry.session.database),
                "cost_bytes": entry.cost_bytes,
                "admission_seconds": entry.admission_seconds,
            }
            version = entry.session.version
        return ok_response(
            request.get("id"), "open", result, session=entry.digest, version=version
        )

    def _op_answers(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        sample = _optional_number(request, "sample")
        seed = _optional_number(request, "seed")
        with entry.lock:
            answers = entry.session.answers()
            total = len(answers)
            if sample is not None:
                # Server-side sampling with the harness's own seeded
                # kernel: experiments get their handful of tuples
                # without shipping the whole answer relation.
                from ..harness.runner import sample_from_answers

                answers = sample_from_answers(
                    answers,
                    count=int(sample),
                    seed=7 if seed is None else int(seed),
                )
            payload = [list(tup) for tup in answers]
            version = entry.session.version
        return ok_response(
            request.get("id"),
            "answers",
            {"answers": payload, "total": total},
            session=entry.digest,
            version=version,
        )

    def _op_why(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        tup = _require_tuple(request)
        limit = _optional_number(request, "limit")
        timeout = _optional_number(request, "timeout")
        with entry.lock:
            session = entry.session
            try:
                is_answer = session.is_answer(tup)
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc))
            members = session.why(
                tup,
                limit=None if limit is None else int(limit),
                timeout_seconds=timeout,
            )
            result = {
                "is_answer": is_answer,
                "members": render_members(members),
            }
            version = session.version
        return ok_response(
            request.get("id"), "why", result, session=entry.digest, version=version
        )

    def _op_decide(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        tup = _require_tuple(request)
        if "subset" not in request:
            raise ServiceError("bad-request", "request needs a 'subset' field")
        subset = _parse_fact_texts(request["subset"], "subset")
        tree_class = request.get("tree_class", "unambiguous")
        if tree_class not in TREE_CLASSES:
            raise ServiceError(
                "bad-request",
                f"unknown tree_class {tree_class!r}; known: {', '.join(TREE_CLASSES)}",
            )
        with entry.lock:
            try:
                verdict = entry.session.decide(tup, subset, tree_class=tree_class)
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc))
            version = entry.session.version
        return ok_response(
            request.get("id"),
            "decide",
            {"member": verdict, "tree_class": tree_class},
            session=entry.digest,
            version=version,
        )

    def _op_smallest(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        tup = _require_tuple(request)
        with entry.lock:
            try:
                member = entry.session.smallest_member(tup)
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc))
            result = {
                "is_answer": member is not None,
                "member": None if member is None else render_member(member),
            }
            version = entry.session.version
        return ok_response(
            request.get("id"), "smallest", result, session=entry.digest, version=version
        )

    def _op_minimal(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        tup = _require_tuple(request)
        limit = _optional_number(request, "limit")
        with entry.lock:
            try:
                members = entry.session.minimal_members(
                    tup, limit=None if limit is None else int(limit)
                )
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc))
            result = {
                "is_answer": bool(members),
                "members": render_members(members),
            }
            version = entry.session.version
        return ok_response(
            request.get("id"), "minimal", result, session=entry.digest, version=version
        )

    def _op_batch(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        limit = _optional_number(request, "limit")
        timeout = _optional_number(request, "timeout")
        chunk_size = _optional_number(request, "chunk_size")
        with entry.lock:
            session = entry.session
            if request.get("all_answers"):
                tuples = session.answers()
                if len(tuples) > self.max_batch_tuples:
                    raise ServiceError(
                        "bad-request",
                        f"batch of {len(tuples)} tuples exceeds the server cap "
                        f"of {self.max_batch_tuples}; split the request",
                    )
            else:
                raw = request.get("tuples")
                if not isinstance(raw, (list, tuple)):
                    raise ServiceError(
                        "bad-request",
                        "batch needs 'tuples' (array of arrays) or 'all_answers'",
                    )
                if len(raw) > self.max_batch_tuples:
                    raise ServiceError(
                        "bad-request",
                        f"batch of {len(raw)} tuples exceeds the server cap "
                        f"of {self.max_batch_tuples}; split the request",
                    )
                tuples = [tuple_from_json(values) for values in raw]
            workers = _optional_number(request, "workers")
            if workers is None:
                workers = (
                    self.batch_workers
                    if len(tuples) >= self.parallel_threshold
                    else 1
                )
            batch = session.explain_batch(
                tuples,
                workers=int(workers),
                limit=None if limit is None else int(limit),
                timeout_seconds=timeout,
                chunk_size=None if chunk_size is None else int(chunk_size),
            )
            result = {
                "workers": batch.workers,
                "parallel": batch.parallel,
                "fallback_reason": batch.fallback_reason,
                "chunk_size": batch.chunk_size,
                "snapshot_bytes": batch.snapshot_bytes,
                "total_seconds": batch.total_seconds,
                "results": [
                    {
                        "tuple": list(r.tuple_value),
                        "is_answer": r.is_answer,
                        "error": r.error,
                        "members": render_members(r.members),
                        "closure_seconds": r.closure_seconds,
                        "formula_seconds": r.formula_seconds,
                        "delays": r.delays,
                        "exhausted": r.exhausted,
                        "seconds": r.seconds,
                    }
                    for r in batch.results
                ],
            }
            version = session.version
        return ok_response(
            request.get("id"), "batch", result, session=entry.digest, version=version
        )

    def _op_update(self, request: Dict) -> Dict:
        entry, _ = self._entry_for(request)
        lines = request.get("lines", [])
        if not isinstance(lines, (list, tuple)):
            raise ServiceError("bad-request", "'lines' must be a JSON array")
        if not all(isinstance(line, str) for line in lines):
            raise ServiceError("bad-request", "'lines' entries must be strings")
        try:
            delta = delta_from_lines(lines)
        except ValueError as exc:
            raise ServiceError("bad-request", str(exc))
        if "insert" in request or "delete" in request:
            inserted = list(delta.inserted) + _parse_fact_texts(
                request.get("insert", []), "insert"
            )
            deleted = list(delta.deleted) + _parse_fact_texts(
                request.get("delete", []), "delete"
            )
            try:
                delta = Delta(inserted=frozenset(inserted), deleted=frozenset(deleted))
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc))
        if delta.is_empty():
            raise ServiceError(
                "bad-request", "update needs 'lines', 'insert', or 'delete' facts"
            )
        with entry.lock:
            session = entry.session
            try:
                receipt = session.update(delta)
            except ValueError as exc:  # schema/type validation rejects cleanly
                raise ServiceError("bad-request", str(exc))
            # Durability point: the committed delta reaches the fsync'd
            # WAL under the session lock (order = version order) and
            # before the response below is sent. No-op if no store.
            self.registry.record_update(entry, receipt)
            result = {
                "version": receipt.version,
                "inserted": len(receipt.effective.inserted),
                "deleted": len(receipt.effective.deleted),
                "changed_facts": receipt.dirty_fact_count(),
                "invalidated_closures": receipt.invalidated_closures,
                "retained_closures": receipt.retained_closures,
                "seconds": receipt.seconds,
                "fact_count": len(session.database),
                "answers": _answer_count(session),
            }
            version = session.version
        self.registry.refresh_cost(entry)
        return ok_response(
            request.get("id"), "update", result, session=entry.digest, version=version
        )

    def _op_stats(self, request: Dict) -> Dict:
        result = self.registry.stats()
        result["protocol"] = PROTOCOL_VERSION
        result["uptime_seconds"] = time.time() - self.started_at
        # A single-process daemon has no shard layer; the sharded
        # front-end replaces this with its worker table, so clients can
        # always read result["sharding"] to tell the two apart.
        result["sharding"] = None
        with self._counter_lock:
            result["requests_served"] = self.requests_served
        digest = request.get("session")
        session_field = None
        version = None
        if digest is not None:
            if not isinstance(digest, str):
                raise ServiceError("bad-request", "'session' must be a string digest")
            # peek, not get: monitoring must not LRU-touch the entry or
            # inflate the hit counters it is reporting.
            entry = self.registry.peek(digest)
            described = entry.describe()
            result["session"] = described
            result["session_stats"] = entry.session.stats.as_dict()
            version = described["version"]
            session_field = entry.digest
        return ok_response(
            request.get("id"), "stats", result, session=session_field, version=version
        )

    #: One handler per protocol operation — derived from the protocol's
    #: own op list so the two can never drift apart (each ``op`` must
    #: have a matching ``_op_<name>`` method).
    _HANDLERS = frozenset(OPS)


# -- transports ---------------------------------------------------------------


class _ServiceHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, dispatch, write response lines."""

    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        service: ProvenanceService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            response = service.submit_line(line).result()
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if service.shutdown_requested:
                self.server.initiate_shutdown()  # type: ignore[attr-defined]
                return


class TCPServiceServer(socketserver.ThreadingTCPServer):
    """NDJSON-over-TCP transport: one reader thread per connection.

    Bind to port ``0`` for an ephemeral port (read it back from
    :attr:`port` — the CLI prints it on stderr). ``serve_in_thread``
    starts the accept loop on a daemon thread and returns it, the shape
    the tests, the harness round-trip, and :func:`local_service` use.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: ProvenanceService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        super().__init__((host, port), _ServiceHandler)

    @property
    def host(self) -> str:
        """The bound host address."""
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful after binding to port 0)."""
        return self.server_address[1]

    def serve_in_thread(self) -> threading.Thread:
        """Run the accept loop on a daemon thread; returns the thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-service-accept", daemon=True
        )
        thread.start()
        return thread

    def initiate_shutdown(self) -> None:
        """Stop the accept loop from a handler thread (non-blocking)."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve_stdio(
    service: ProvenanceService,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """The stdio transport: NDJSON requests in, NDJSON responses out.

    Single-client by construction (there is one stdin), requests handled
    strictly in order. Returns a process exit status: 0 on a clean end of
    input or ``shutdown`` request.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        print(service.handle_line(line), file=stdout, flush=True)
        if service.shutdown_requested:
            break
    return 0
