"""The provenance service wire protocol: newline-delimited JSON.

One request object per line, one response object per line — the lowest
common denominator that every language, ``netcat``, and a shell pipe can
speak, and the same framing whether the transport is a TCP socket or the
daemon's stdin/stdout. The full field-by-field reference with worked
examples lives in ``docs/SERVICE.md``; this module is the single source
of truth for the envelope shapes.

Requests
--------

Every request is a JSON object with an ``op`` (one of :data:`OPS`) and an
optional ``id`` the server echoes back, so clients can pipeline requests
and match responses out of order. Session-addressed operations carry
either a ``session`` content digest (from a previous response) or inline
``program`` / ``database`` Datalog texts (plus optional ``answer``),
which admit-or-reuse the session on the spot.

Responses
---------

Success::

    {"id": 7, "ok": true, "op": "why",
     "session": "6b3f…", "version": 2, "result": {…}}

``session`` / ``version`` appear on every session-addressed response:
``version`` is the session's update counter *at the time the request was
served* (read under the per-session lock), so a client interleaving
``update`` and read requests can tell exactly which database state each
answer reflects.

Failure::

    {"id": 7, "ok": false,
     "error": {"code": "unknown-session", "message": "…"}}

with ``code`` one of :data:`ERROR_CODES`.

Values on the wire
------------------

Answer tuples are JSON arrays of constants (strings and integers — the
two constant types the Datalog parser produces, both JSON-native).
Witnesses (members of ``whyUN``) are arrays of ``"fact."`` strings,
each member sorted internally; the *member list* keeps the solver's
discovery order, which is part of the byte-identity contract with
in-process sessions.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

#: Bumped on any incompatible envelope change; served by ``ping``/``stats``.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.
OPS = (
    "answers",
    "batch",
    "decide",
    "minimal",
    "open",
    "ping",
    "shutdown",
    "smallest",
    "stats",
    "update",
    "why",
)

#: Machine-readable failure codes. ``parse-error`` is a malformed request
#: line (not valid JSON), ``program-error`` a Datalog text that does not
#: parse, ``bad-request`` a structurally valid request with bad fields,
#: ``unknown-session`` a digest the registry no longer holds (evicted or
#: never admitted — re-send the texts to re-admit), ``worker-failure`` a
#: sharded daemon's worker process dying while this request was on it
#: (the supervisor restarts the worker; idempotent requests are retried
#: transparently, so clients normally only see this for an ``update``
#: whose commit status is unknowable), ``connection-closed`` is raised
#: client-side when the server goes away mid-call.
ERROR_CODES = (
    "bad-request",
    "connection-closed",
    "internal-error",
    "parse-error",
    "program-error",
    "unknown-op",
    "unknown-session",
    "worker-failure",
)


class ServiceError(Exception):
    """A protocol-level failure carrying a machine-readable code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message

    def as_response(self, request_id=None) -> Dict:
        """The failure as a wire response object."""
        return error_response(request_id, self.code, self.message)


def unknown_op_message(op) -> str:
    """The canonical ``unknown-op`` message for *op*.

    Shared by the single-process dispatcher and the sharded front-end so
    an unroutable request draws a byte-identical error from either.
    """
    known = ", ".join(sorted(OPS))
    return f"unknown op {op!r}; known: {known}"


def session_address(request: Dict):
    """How a request addresses its session: digest or inline texts.

    Returns ``(digest, None)`` when the request carries a ``session``
    digest, or ``(None, (program, database, answer))`` when it carries
    inline texts, raising the canonical ``bad-request``
    :class:`ServiceError` otherwise. This is the single source of truth
    for session addressing — the in-process dispatcher resolves the
    result against its registry, the sharded front-end uses it to pick
    the owning worker — so both reject malformed addressing with
    byte-identical errors.
    """
    digest = request.get("session")
    if digest is not None:
        if not isinstance(digest, str):
            raise ServiceError("bad-request", "'session' must be a string digest")
        return digest, None
    program = request.get("program")
    database = request.get("database")
    if not isinstance(program, str) or not isinstance(database, str):
        raise ServiceError(
            "bad-request",
            "request needs either a 'session' digest or inline "
            "'program' and 'database' texts",
        )
    answer = request.get("answer")
    if answer is not None and not isinstance(answer, str):
        raise ServiceError("bad-request", "'answer' must be a string")
    return None, (program, database, answer)


def decode_request(line: str) -> Dict:
    """Parse one request line into a dict (raises ``parse-error``)."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError("parse-error", f"request is not valid JSON: {exc}")
    if not isinstance(request, dict):
        raise ServiceError("parse-error", "request must be a JSON object")
    return request


def encode(message: Dict) -> str:
    """One wire line (no trailing newline): compact, key-sorted JSON.

    Key sorting makes equal responses textually equal — the property the
    byte-identity tests and client-side caching lean on.
    """
    return json.dumps(message, separators=(",", ":"), sort_keys=True)


def ok_response(
    request_id,
    op: str,
    result: Dict,
    session: Optional[str] = None,
    version: Optional[int] = None,
) -> Dict:
    """A success envelope around *result*."""
    response: Dict = {"id": request_id, "ok": True, "op": op, "result": result}
    if session is not None:
        response["session"] = session
    if version is not None:
        response["version"] = version
    return response


def error_response(request_id, code: str, message: str) -> Dict:
    """A failure envelope with a :data:`ERROR_CODES` code."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def render_member(member: Iterable) -> List[str]:
    """One witness as its sorted list of ``"fact."`` strings.

    Mirrors the CLI's member rendering exactly, so wire output and
    ``python -m repro batch`` output agree character for character.
    """
    return sorted(f"{fact}." for fact in member)


def render_members(members: Iterable[Iterable]) -> List[List[str]]:
    """A member list in discovery order, each member rendered sorted."""
    return [render_member(member) for member in members]


def tuple_from_json(values) -> Tuple:
    """An answer tuple from its JSON array form (``bad-request`` if not).

    Elements must be constants — strings or numbers, the types the
    Datalog parser produces — so a malformed tuple (nested arrays,
    objects, booleans, nulls) is a client error, never an unhashable
    value deep inside the pipeline.
    """
    if not isinstance(values, (list, tuple)):
        raise ServiceError("bad-request", "tuple must be a JSON array of constants")
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (str, int, float)):
            raise ServiceError(
                "bad-request",
                "tuple elements must be string or numeric constants, "
                f"got {value!r}",
            )
    return tuple(values)
