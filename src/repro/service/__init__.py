"""The provenance service daemon: live sessions behind a wire protocol.

The paper's pipeline — evaluate once, answer many provenance requests —
is the shape of a long-lived server, and this package is that server.
It turns the three session-era subsystems
(:class:`~repro.core.session.ProvenanceSession` warm caches,
:mod:`repro.core.parallel` batch sharding, :mod:`repro.core.incremental`
view maintenance) into one serving stack:

* :mod:`repro.service.registry` — live sessions keyed by a
  ``(program, database)`` content digest, LRU-evicted under a session
  count cap and a byte budget;
* :mod:`repro.service.protocol` — the newline-delimited JSON wire
  format (requests ``why`` / ``decide`` / ``smallest`` / ``minimal`` /
  ``batch`` / ``update`` / ``stats`` and friends);
* :mod:`repro.service.server` — the dispatcher plus TCP and stdio
  transports (``python -m repro serve``);
* :mod:`repro.service.shard` — the multi-process tier
  (``python -m repro serve --workers N``): an async NDJSON front-end
  routing sessions to supervised worker processes by consistent-hashed
  content digest, byte-identical to the single-process daemon;
* :mod:`repro.service.client` — the synchronous client
  (``python -m repro client``) and the :func:`local_service` /
  :func:`local_sharded_service` fixtures.

See ``docs/SERVICE.md`` for the protocol reference and a worked
walkthrough.
"""

from .client import (
    ServiceClient,
    local_service,
    local_sharded_service,
    parse_address,
)
from .protocol import OPS, PROTOCOL_VERSION, ServiceError
from .registry import SessionEntry, SessionRegistry, content_digest, routing_digest
from .server import ProvenanceService, TCPServiceServer, serve_stdio
from .shard import HashRing, ShardedServiceServer, WorkerSupervisor, worker_slots

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "HashRing",
    "ProvenanceService",
    "ServiceClient",
    "ServiceError",
    "SessionEntry",
    "SessionRegistry",
    "ShardedServiceServer",
    "TCPServiceServer",
    "WorkerSupervisor",
    "content_digest",
    "local_service",
    "local_sharded_service",
    "parse_address",
    "routing_digest",
    "serve_stdio",
    "worker_slots",
]
