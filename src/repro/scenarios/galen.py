"""The Galen scenario (Table 1, row 3): ELK-style EL saturation.

The paper's scenario implements the ELK calculus (Kazakov et al. 2014)
over portions of the Galen medical ontology and asks for all derived
``subClassOf`` pairs. The query below is a 14-rule, *non-linear recursive*
Datalog rendering of the EL completion rules:

* ``s(x, y)`` — class x is (derived to be) subsumed by class y,
* ``r(x, p, y)`` — x is subsumed by the existential ``exists p . y``.

EDB relations encode the told ontology: ``class``, ``top``, ``sub`` (told
subsumptions), ``conj`` (conjunction axioms ``y1 ⊓ y2 ⊑ z``), ``subex``
(``c ⊑ exists p . y``), ``exsub`` (``exists p . c ⊑ z``), ``subrole``,
``chain`` (role chains ``p ∘ q ⊑ t``), ``equiv``, ``dom``, ``range``.
Databases D1..D4 are seeded synthetic EL TBoxes of growing size.
"""

from __future__ import annotations

import random
from typing import List

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.program import DatalogQuery
from .base import Scenario, ScenarioDatabase, register_scenario

_PROGRAM_TEXT = """
s(X, X)    :- class(X).
s(X, T)    :- class(X), top(T).
s(X, Z)    :- s(X, Y), sub(Y, Z).
s(X, Z)    :- s(X, Y1), s(X, Y2), conj(Y1, Y2, Z).
r(X, P, Y) :- s(X, C), subex(C, P, Y).
s(X, Z)    :- r(X, P, Y), s(Y, C), exsub(P, C, Z).
r(X, Q, Y) :- r(X, P, Y), subrole(P, Q).
r(X, T, Z) :- r(X, P, Y), r(Y, Q, Z), chain(P, Q, T).
s(X, Z)    :- s(X, Y), equiv(Y, Z).
s(X, Z)    :- s(X, Y), equiv(Z, Y).
r(X, P, Z) :- r(X, P, Y), sub(Y, Z).
s(X, Z)    :- r(X, P, Y), dom(P, Z).
s(Y, Z)    :- r(X, P, Y), range(P, Z).
goal(X, Y) :- s(X, Y).
"""


def galen_query() -> DatalogQuery:
    """The 14-rule non-linear recursive EL-saturation query."""
    program = parse_program(_PROGRAM_TEXT)
    assert len(program.rules) == 14
    assert program.is_recursive() and not program.is_linear()
    return DatalogQuery(program, "goal")


def galen_like_database(num_classes: int = 40, num_roles: int = 6, seed: int = 31) -> Database:
    """A seeded synthetic EL TBox shaped like a medical ontology fragment.

    Told subsumptions form a layered DAG (taxonomy); conjunction,
    existential and role-chain axioms are sprinkled between nearby layers
    so that saturation produces genuinely recursive derivations.
    """
    rng = random.Random(seed)
    db = Database()
    classes = [f"c{i}" for i in range(num_classes)]
    roles = [f"role{i}" for i in range(num_roles)]
    db.add(Atom("top", ("thing",)))
    db.add(Atom("class", ("thing",)))
    for c in classes:
        db.add(Atom("class", (c,)))
    # Layered taxonomy: class i is told-subsumed by 1-2 classes of lower index.
    for i in range(1, num_classes):
        for _ in range(rng.randint(1, 2)):
            parent = classes[rng.randrange(0, i)]
            db.add(Atom("sub", (classes[i], parent)))
    # Conjunction axioms between siblings.
    for _ in range(max(2, num_classes // 4)):
        i = rng.randrange(1, num_classes)
        j = rng.randrange(1, num_classes)
        k = rng.randrange(0, num_classes)
        db.add(Atom("conj", (classes[i], classes[j], classes[k])))
    # Existential axioms: c ⊑ exists p . y  and  exists p . c ⊑ z.
    for _ in range(max(3, num_classes // 3)):
        db.add(
            Atom(
                "subex",
                (rng.choice(classes), rng.choice(roles), rng.choice(classes)),
            )
        )
    for _ in range(max(3, num_classes // 3)):
        db.add(
            Atom(
                "exsub",
                (rng.choice(roles), rng.choice(classes), rng.choice(classes)),
            )
        )
    # Role hierarchy and chains.
    for _ in range(max(1, num_roles // 2)):
        db.add(Atom("subrole", (rng.choice(roles), rng.choice(roles))))
    for _ in range(max(1, num_roles // 2)):
        db.add(Atom("chain", (rng.choice(roles), rng.choice(roles), rng.choice(roles))))
    # Some equivalences and domain/range axioms.
    for _ in range(max(1, num_classes // 10)):
        db.add(Atom("equiv", (rng.choice(classes), rng.choice(classes))))
    for _ in range(max(1, num_roles // 2)):
        db.add(Atom("dom", (rng.choice(roles), rng.choice(classes))))
        db.add(Atom("range", (rng.choice(roles), rng.choice(classes))))
    return db


_SIZES = {"D1": (25, 4, 31), "D2": (32, 5, 32), "D3": (42, 6, 33), "D4": (52, 6, 34)}


register_scenario(
    Scenario(
        name="Galen",
        query_factory=galen_query,
        databases=tuple(
            ScenarioDatabase(
                name=name,
                factory=(lambda p=params: galen_like_database(*p)),
                description=f"synthetic EL TBox ({params[0]} classes)",
            )
            for name, params in _SIZES.items()
        ),
        query_type="non-linear, recursive",
        num_rules=14,
        description="ELK calculus; asks for derived subClassOf pairs",
    )
)
