"""The Andersen scenario (Table 1, row 4): inclusion-based points-to.

The classical Andersen points-to analysis as 4 non-linear recursive
Datalog rules (the formulation of Fan, Mallireddy & Koutris, Datalog 2.0
2022)::

    pt(X, Y) :- addressof(X, Y).
    pt(X, Y) :- assign(X, Z), pt(Z, Y).
    pt(X, Y) :- load(X, Z), pt(Z, W), pt(W, Y).
    pt(W, Y) :- store(X, Z), pt(X, W), pt(Z, Y).

EDB facts encode program statements: ``addressof(p, v)`` for ``p = &v``,
``assign(p, q)`` for ``p = q``, ``load(p, q)`` for ``p = *q`` and
``store(p, q)`` for ``*p = q``. The paper runs five databases D1..D5 of
growing size (68K .. 6.8M statements); the seeded generator below emits
synthetic statement mixes at pure-Python scale with the same shape
(mostly copies, a sprinkle of address-taking and dereferences).
"""

from __future__ import annotations

import random
from typing import List

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.program import DatalogQuery
from .base import Scenario, ScenarioDatabase, register_scenario

_PROGRAM_TEXT = """
pt(X, Y) :- addressof(X, Y).
pt(X, Y) :- assign(X, Z), pt(Z, Y).
pt(X, Y) :- load(X, Z), pt(Z, W), pt(W, Y).
pt(W, Y) :- store(X, Z), pt(X, W), pt(Z, Y).
"""


def andersen_query() -> DatalogQuery:
    """The 4-rule non-linear recursive points-to query."""
    program = parse_program(_PROGRAM_TEXT)
    assert len(program.rules) == 4
    assert program.is_recursive() and not program.is_linear()
    return DatalogQuery(program, "pt")


def andersen_database(
    num_vars: int = 120,
    num_statements: int = 260,
    seed: int = 41,
) -> Database:
    """A synthetic pointer-statement mix.

    Statement ratios follow typical C programs: ~55% copies, ~25%
    address-of, ~10% loads, ~10% stores. Copies are biased toward earlier
    variables so that points-to chains have realistic depth without the
    quadratic blow-ups fully random graphs produce.
    """
    rng = random.Random(seed)
    db = Database()
    variables = [f"x{i}" for i in range(num_vars)]
    heap = [f"obj{i}" for i in range(max(4, num_vars // 4))]
    for _ in range(num_statements):
        roll = rng.random()
        if roll < 0.25:
            p = rng.choice(variables)
            v = rng.choice(heap)
            db.add(Atom("addressof", (p, v)))
        elif roll < 0.80:
            i = rng.randrange(num_vars)
            j = rng.randrange(max(1, i))
            db.add(Atom("assign", (variables[i], variables[j])))
        elif roll < 0.90:
            db.add(Atom("load", (rng.choice(variables), rng.choice(variables))))
        else:
            db.add(Atom("store", (rng.choice(variables), rng.choice(variables))))
    return db


_SIZES = {
    "D1": (24, 52, 41),
    "D2": (34, 75, 42),
    "D3": (46, 100, 43),
    "D4": (62, 135, 44),
    "D5": (80, 175, 45),
}


register_scenario(
    Scenario(
        name="Andersen",
        query_factory=andersen_query,
        databases=tuple(
            ScenarioDatabase(
                name=name,
                factory=(lambda p=params: andersen_database(*p)),
                description=f"synthetic pointer statements ({params[1]} stmts)",
            )
            for name, params in _SIZES.items()
        ),
        query_type="non-linear, recursive",
        num_rules=4,
        description="Andersen points-to analysis; asks which pointers point to which variables",
    )
)
