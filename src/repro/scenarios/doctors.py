"""The Doctors scenarios (Table 1, row 2): Doctors-i for i in 1..7.

Data-exchange-style queries over a single shared database of medical
records (the paper derives them from a well-known data-exchange benchmark
with existential variables replaced by fresh constants). Every variant is
a 6-rule, *linear and non-recursive* program — the setting where arbitrary
and unambiguous proof trees induce the same why-provenance, which is what
makes the Figure 5 comparison with the all-at-once baseline fair.

The seven variants chain the same base relations to different depths and
with a different number of alternative derivations per intensional
predicate; the variants with more alternatives (1, 5, 7) have larger
why-provenance families and are the "demanding" ones, mirroring the
paper's observation that Doctors-1/5/7 separate the two approaches.
"""

from __future__ import annotations

import random
from typing import List

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.program import DatalogQuery
from .base import Scenario, ScenarioDatabase, register_scenario

# One shared database for all seven variants (as in the paper).
_SHARED_DB_CACHE: List[Database] = []

_VARIANT_PROGRAMS = {
    # Demanding: alternative derivations at two levels.
    1: """
    doctor(D, H)    :- person(D, S), worksat(D, H).
    doctor(D, H)    :- oncall(D, H), person(D, S).
    treating(D, P)  :- doctor(D, H), treats(D, P).
    treating(D, P)  :- doctor(D, H), consults(D, P).
    targets(P, M)   :- treating(D, P), prescription(D, P, M).
    answer(P, M)    :- targets(P, M).
    """,
    # Simple linear chain.
    2: """
    doctor(D, H)    :- person(D, S), worksat(D, H).
    hospdoc(D, C)   :- doctor(D, H), hospital(H, C).
    treating(D, P)  :- hospdoc(D, C), treats(D, P).
    medication(P, M):- treating(D, P), prescription(D, P, M).
    covered(P, M)   :- medication(P, M), insured(P, I).
    answer(P, M)    :- covered(P, M).
    """,
    # Simple: city-level aggregation chain.
    3: """
    doctor(D, H)    :- person(D, S), worksat(D, H).
    hospdoc(D, C)   :- doctor(D, H), hospital(H, C).
    citycase(C, P)  :- hospdoc(D, C), treats(D, P).
    cityins(C, I)   :- citycase(C, P), insured(P, I).
    citylink(C, I)  :- cityins(C, I).
    answer(C, I)    :- citylink(C, I).
    """,
    # Simple: specialist chain.
    4: """
    specialist(D, S):- person(D, S), specialty(S).
    spechosp(D, H)  :- specialist(D, S), worksat(D, H).
    speccity(D, C)  :- spechosp(D, H), hospital(H, C).
    spectreat(D, P) :- speccity(D, C), treats(D, P).
    specmed(P, M)   :- spectreat(D, P), prescription(D, P, M).
    answer(P, M)    :- specmed(P, M).
    """,
    # Demanding: alternatives at the first level, longer chain.
    5: """
    contact(D, P)   :- treats(D, P), person(D, S).
    contact(D, P)   :- consults(D, P), person(D, S).
    active(D, P)    :- contact(D, P), worksat(D, H).
    treated(D, P)   :- active(D, P), prescription(D, P, M).
    medinfo(P, M)   :- treated(D, P), prescription(D, P, M).
    answer(P, M)    :- medinfo(P, M).
    """,
    # Simple: insurance verification chain.
    6: """
    insureddoc(D, I):- treats(D, P), insured(P, I).
    docplan(D, I)   :- insureddoc(D, I), person(D, S).
    planhosp(I, H)  :- docplan(D, I), worksat(D, H).
    plancity(I, C)  :- planhosp(I, H), hospital(H, C).
    planlink(I, C)  :- plancity(I, C).
    answer(I, C)    :- planlink(I, C).
    """,
    # Demanding: alternatives at all three levels (including the answer).
    7: """
    doctor(D, H)    :- person(D, S), worksat(D, H).
    doctor(D, H)    :- oncall(D, H), person(D, S).
    treating(D, P)  :- doctor(D, H), treats(D, P).
    treating(D, P)  :- doctor(D, H), consults(D, P).
    answer(P, M)    :- treating(D, P), prescription(D, P, M).
    answer(P, M)    :- treating(D, P), prescription(D, P, M), insured(P, I).
    """,
}


def doctors_query(variant: int) -> DatalogQuery:
    """The 6-rule linear non-recursive program of Doctors-``variant``."""
    if variant not in _VARIANT_PROGRAMS:
        raise ValueError(f"variant must be in 1..7, got {variant}")
    program = parse_program(_VARIANT_PROGRAMS[variant])
    assert program.is_linear() and program.is_non_recursive()
    assert len(program.rules) == 6
    return DatalogQuery(program, "answer")


def doctors_database(
    num_doctors: int = 60,
    num_patients: int = 90,
    num_hospitals: int = 12,
    seed: int = 21,
) -> Database:
    """The shared medical-records database (scaled from the paper's 100K).

    Relations: ``person(d, s)``, ``specialty(s)``, ``worksat(d, h)``,
    ``oncall(d, h)``, ``hospital(h, c)``, ``treats(d, p)``,
    ``consults(d, p)``, ``prescription(d, p, m)``, ``insured(p, i)``.
    """
    rng = random.Random(seed)
    db = Database()
    specialties = ["cardio", "neuro", "ortho", "derm", "gp"]
    cities = [f"city{i}" for i in range(max(2, num_hospitals // 3))]
    insurers = ["acme", "zenith", "umbrella"]
    drugs = [f"drug{i}" for i in range(14)]

    for s in specialties:
        db.add(Atom("specialty", (s,)))
    for h in range(num_hospitals):
        db.add(Atom("hospital", (f"h{h}", rng.choice(cities))))
    for d in range(num_doctors):
        doc = f"d{d}"
        db.add(Atom("person", (doc, rng.choice(specialties))))
        db.add(Atom("worksat", (doc, f"h{rng.randrange(num_hospitals)}")))
        if rng.random() < 0.4:
            db.add(Atom("oncall", (doc, f"h{rng.randrange(num_hospitals)}")))
    for p in range(num_patients):
        patient = f"p{p}"
        db.add(Atom("insured", (patient, rng.choice(insurers))))
        for _ in range(rng.randint(1, 3)):
            doc = f"d{rng.randrange(num_doctors)}"
            db.add(Atom("treats", (doc, patient)))
            if rng.random() < 0.7:
                db.add(Atom("prescription", (doc, patient, rng.choice(drugs))))
        if rng.random() < 0.5:
            doc = f"d{rng.randrange(num_doctors)}"
            db.add(Atom("consults", (doc, patient)))
            if rng.random() < 0.6:
                db.add(Atom("prescription", (doc, patient, rng.choice(drugs))))
    return db


def shared_database() -> Database:
    """The single database shared by all seven variants (cached)."""
    if not _SHARED_DB_CACHE:
        _SHARED_DB_CACHE.append(doctors_database())
    return _SHARED_DB_CACHE[0].copy()


for _variant in range(1, 8):
    register_scenario(
        Scenario(
            name=f"Doctors-{_variant}",
            query_factory=(lambda v=_variant: doctors_query(v)),
            databases=(
                ScenarioDatabase(
                    name="D1",
                    factory=shared_database,
                    description="shared medical-records database",
                ),
            ),
            query_type="linear, non-recursive",
            num_rules=6,
            description=f"data-exchange style query, variant {_variant}",
        )
    )
