"""Experimental scenarios of Table 1 (seeded synthetic substitutes)."""

from .andersen import andersen_database, andersen_query
from .base import (
    Scenario,
    ScenarioDatabase,
    all_scenarios,
    get_scenario,
    register_scenario,
)
from .csda import csda_database, csda_query
from .doctors import doctors_database, doctors_query
from .galen import galen_like_database, galen_query
from .transclosure import (
    bitcoin_like_database,
    facebook_like_database,
    transclosure_query,
)

__all__ = [
    "Scenario",
    "ScenarioDatabase",
    "all_scenarios",
    "andersen_database",
    "andersen_query",
    "bitcoin_like_database",
    "csda_database",
    "csda_query",
    "doctors_database",
    "doctors_query",
    "facebook_like_database",
    "galen_like_database",
    "galen_query",
    "get_scenario",
    "register_scenario",
    "transclosure_query",
]
