"""Experimental scenarios of Table 1 (seeded synthetic substitutes)."""

from .andersen import andersen_database, andersen_query
from .base import (
    Scenario,
    ScenarioDatabase,
    all_scenarios,
    get_scenario,
    register_scenario,
)
from .csda import csda_database, csda_query
from .doctors import doctors_database, doctors_query
from .galen import galen_like_database, galen_query
# NOTE: the convenience function ``synthetic.synthetic`` is deliberately
# NOT re-exported here — binding that name in the package namespace would
# shadow the ``repro.scenarios.synthetic`` submodule attribute, breaking
# ``import repro.scenarios.synthetic as syn`` consumers. Import it as
# ``from repro.scenarios.synthetic import synthetic``.
from .synthetic import (
    FAMILIES,
    SyntheticInstance,
    generate_instance,
)
from .transclosure import (
    bitcoin_like_database,
    facebook_like_database,
    transclosure_query,
)

__all__ = [
    "FAMILIES",
    "Scenario",
    "ScenarioDatabase",
    "SyntheticInstance",
    "all_scenarios",
    "andersen_database",
    "andersen_query",
    "bitcoin_like_database",
    "csda_database",
    "csda_query",
    "doctors_database",
    "doctors_query",
    "facebook_like_database",
    "galen_like_database",
    "galen_query",
    "generate_instance",
    "get_scenario",
    "register_scenario",
    "transclosure_query",
]
