"""The CSDA scenario (Table 1, row 5): context-sensitive dataflow analysis.

The paper's CSDA scenario (from Fan, Mallireddy & Koutris 2022) tracks
null references flowing through a program graph — a reachability-style
query with 2 linear recursive rules::

    null(V) :- source(V).
    null(V) :- null(U), edge(U, V).

The databases encode the dataflow graphs of httpd, PostgreSQL and the
Linux kernel (10M .. 44M facts in the paper); the seeded generator emits
layered control-flow-like graphs at pure-Python scale: long mostly-forward
chains (basic blocks) with branch/merge edges and occasional back edges
(loops).
"""

from __future__ import annotations

import random
from typing import List

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.program import DatalogQuery
from .base import Scenario, ScenarioDatabase, register_scenario

_PROGRAM_TEXT = """
null(V) :- source(V).
null(V) :- null(U), edge(U, V).
"""


def csda_query() -> DatalogQuery:
    """The 2-rule linear recursive null-flow query."""
    program = parse_program(_PROGRAM_TEXT)
    assert len(program.rules) == 2
    assert program.is_recursive() and program.is_linear()
    return DatalogQuery(program, "null")


def csda_database(
    num_nodes: int = 600,
    num_sources: int = 4,
    seed: int = 51,
) -> Database:
    """A layered program-dataflow graph with a few null sources."""
    rng = random.Random(seed)
    db = Database()
    for s in range(num_sources):
        db.add(Atom("source", (f"n{rng.randrange(num_nodes // 4)}",)))
    for u in range(num_nodes):
        # Fallthrough edge.
        if u + 1 < num_nodes:
            db.add(Atom("edge", (f"n{u}", f"n{u + 1}")))
        # Branch edge.
        if rng.random() < 0.25 and u + 2 < num_nodes:
            target = rng.randint(u + 2, min(num_nodes - 1, u + 20))
            db.add(Atom("edge", (f"n{u}", f"n{target}")))
        # Loop back edge.
        if rng.random() < 0.04 and u > 4:
            target = rng.randint(max(0, u - 15), u - 1)
            db.add(Atom("edge", (f"n{u}", f"n{target}")))
    return db


_SIZES = {
    "httpd": (450, 3, 51),
    "postgresql": (800, 4, 52),
    "linux": (1200, 5, 53),
}


register_scenario(
    Scenario(
        name="CSDA",
        query_factory=csda_query,
        databases=tuple(
            ScenarioDatabase(
                name=name,
                factory=(lambda p=params: csda_database(*p)),
                description=f"synthetic dataflow graph ({params[0]} nodes, {name}-like)",
            )
            for name, params in _SIZES.items()
        ),
        query_type="linear, recursive",
        num_rules=2,
        description="context-sensitive dataflow; asks for null references",
    )
)
