"""Scenario registry mirroring Table 1 of the paper.

A *scenario* pairs a fixed Datalog query with a family of databases. The
paper's scenarios use real datasets (Bitcoin transactions, Facebook social
circles, the Galen ontology, program encodings of httpd / PostgreSQL /
Linux); none of those are available offline, so every database here is
produced by a seeded synthetic generator with the same schema, the same
query program (hence identical rule counts and recursion classes as
Table 1), and graph shapes chosen to preserve the qualitative behaviour
the paper observes (see DESIGN.md, "Substitutions"). Sizes are scaled to
pure-Python laptop scale; each database reports its fact count so scaling
trends remain visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..datalog.database import Database
from ..datalog.program import DatalogQuery


@dataclass(frozen=True)
class ScenarioDatabase:
    """One database of a scenario family."""

    name: str
    factory: Callable[[], Database]
    description: str

    def build(self) -> Database:
        """Materialize the database (deterministic: generators are seeded)."""
        return self.factory()


@dataclass(frozen=True)
class Scenario:
    """A Table-1 row: query + database family + classification metadata."""

    name: str
    query_factory: Callable[[], DatalogQuery]
    databases: Tuple[ScenarioDatabase, ...]
    query_type: str
    num_rules: int
    description: str

    def query(self) -> DatalogQuery:
        """Build the scenario's Datalog query."""
        return self.query_factory()

    def database(self, name: str) -> Database:
        """Build the named database (raises ``KeyError`` if unknown)."""
        for db in self.databases:
            if db.name == name:
                return db.build()
        raise KeyError(f"scenario {self.name} has no database {name!r}")

    def database_names(self) -> List[str]:
        """The database names, smallest first (paper order D1..Dn)."""
        return [db.name for db in self.databases]


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the global registry (idempotent per name)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    Names of the shape ``synthetic-<family>-n<size>-s<seed>`` are not in
    the registry at all — they are generated on the fly by the synthetic
    workload families (:mod:`repro.scenarios.synthetic`), so benchmarks
    and tools can address an unbounded scenario space by name alone.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        from .synthetic import scenario_from_name

        scenario = scenario_from_name(name)
        if scenario is not None:
            return scenario
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scenario {name!r}; known: {known} "
            "(or synthetic-<family>-n<size>-s<seed>)"
        ) from None


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, in Table-1 order of registration."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def _ensure_loaded() -> None:
    # Importing the scenario modules populates the registry.
    from . import andersen, csda, doctors, galen, transclosure  # noqa: F401
