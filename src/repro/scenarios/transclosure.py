"""The TransClosure scenario (Table 1, row 1).

Transitive closure of a graph; asks for connected node pairs. Linear and
recursive, 2 rules — the textbook linear Datalog query::

    tc(x, y) :- e(x, y).
    tc(x, z) :- tc(x, y), e(y, z).

The paper pairs it with a slice of the Bitcoin transaction network
(sparse, DAG-like flows) and Facebook social circles (small dense clusters
with a few bridges — this is the database whose connectivity blows up
``phi_acyclic`` and the enumeration delays in Figure 4b). The generators
below synthesize graphs with those two shapes.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.program import DatalogQuery
from .base import Scenario, ScenarioDatabase, register_scenario

_PROGRAM_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
"""


def transclosure_query() -> DatalogQuery:
    """The 2-rule linear recursive transitive-closure query."""
    return DatalogQuery(parse_program(_PROGRAM_TEXT), "tc")


def bitcoin_like_database(
    num_nodes: int = 220,
    out_degree: int = 2,
    seed: int = 11,
) -> Database:
    """A sparse, mostly forward-layered transaction-flow graph.

    Nodes are ordered (transactions in time); each node sends value to a
    couple of later nodes, with a small fraction of back edges — low
    connectivity, shallow closure, the easy case of the scenario.
    """
    rng = random.Random(seed)
    db = Database()
    for u in range(num_nodes):
        targets = set()
        for _ in range(out_degree):
            if u + 1 < num_nodes:
                lo = u + 1
                hi = min(num_nodes - 1, u + 12)
                targets.add(rng.randint(lo, hi))
        if rng.random() < 0.03 and u > 0:
            targets.add(rng.randint(0, u - 1))
        for v in targets:
            if v != u:
                db.add(Atom("e", (f"t{u}", f"t{v}")))
    return db


def facebook_like_database(
    num_circles: int = 10,
    circle_size: int = 8,
    bridge_edges: int = 14,
    seed: int = 12,
) -> Database:
    """Densely clustered "social circles" with sparse bridges.

    Each circle is (almost) a bidirectional clique; a few random bridges
    connect circles. Cliques make the closure graph highly connected,
    which is exactly the regime where the vertex-elimination acyclicity
    encoding degrades (the paper's Figure 4b discussion).
    """
    rng = random.Random(seed)
    db = Database()
    members: List[List[str]] = []
    for c in range(num_circles):
        circle = [f"p{c}_{i}" for i in range(circle_size)]
        members.append(circle)
        for i, u in enumerate(circle):
            for v in circle[i + 1 :]:
                if rng.random() < 0.75:
                    db.add(Atom("e", (u, v)))
                    db.add(Atom("e", (v, u)))
    for _ in range(bridge_edges):
        a, b = rng.sample(range(num_circles), 2)
        u = rng.choice(members[a])
        v = rng.choice(members[b])
        db.add(Atom("e", (u, v)))
    return db


register_scenario(
    Scenario(
        name="TransClosure",
        query_factory=transclosure_query,
        databases=(
            ScenarioDatabase(
                name="bitcoin",
                factory=bitcoin_like_database,
                description="sparse transaction-flow graph (Bitcoin-like)",
            ),
            ScenarioDatabase(
                name="facebook",
                factory=facebook_like_database,
                description="dense clustered social circles (Facebook-like)",
            ),
        ),
        query_type="linear, recursive",
        num_rules=2,
        description="transitive closure of a graph; asks for connected nodes",
    )
)
