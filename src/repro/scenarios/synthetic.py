"""Seed-driven synthetic workload families (the ``repro fuzz`` substrate).

The five hand-written scenarios of Table 1 pin the paper's evaluation to a
handful of fixed programs. This module opens the scenario space: each
*family* is a deterministic, parameterized generator of ``(program,
database)`` pairs — same ``(family, size, seed)`` always yields textually
identical Datalog — so workloads exist at arbitrary scale and the test
suite gains an adversarial input source the fixed scenarios can't provide.

Families
--------

``chain``
    Chain reachability: the 2-rule linear transitive closure over a long
    path with seeded shortcut and back edges (cycles included).
``grid``
    Grid reachability: the same linear recursion over a ``w x h`` lattice
    with rightward/downward edges plus seeded diagonal skips — many
    distinct derivations per reachable pair.
``tree``
    Tree-shaped recursion with tunable depth: ancestor queries over a
    seeded ``b``-ary tree (branching drawn per seed, so depth varies from
    path-like to bushy) with a few rewired edges.
``widejoin``
    Wide-join rules with tunable fan-in: a non-recursive join chain of
    ``k`` body atoms (``k`` drawn per seed) composed once more, over
    seeded binary relations on a small constant domain.
``dag``
    Layered DAG derivations: a non-recursive cascade of ``L`` unary
    layer predicates, each derived from the previous through a shared
    edge relation with seeded fan-in — one fact, many derivations.
``mixed``
    Mixed-family composition: a chain copy and a tree copy glued by
    seeded bridge facts and a cross-family join rule, plus union rules —
    recursion through a join of two independently generated families.
``deps``
    Package dependency resolution over repodata-shaped EDB relations
    (``dep_root``, ``dep_depends``, ``dep_provides``, ``dep_conflicts``):
    package-versions depend on *capabilities*, capabilities may have
    several providers (ambiguity grows with ``size``), and the rules
    close ``dep_requires`` through the depends x provides join so the
    answer ``dep_justified(Pkg, Root)`` reads "Root's install justifies
    Pkg" — why-provenance as install justification, minimal explanations
    as minimal install justifications. Its delta sequences model
    *upgrades* (retire one package-version's edges, publish the next
    version's) instead of random fact churn.

Every generator returns a standard
:class:`~repro.scenarios.base.Scenario`, so synthetic workloads plug into
the existing harness (:func:`~repro.harness.runner.run_database`), CLI
and benchmarks unchanged; :func:`scenario_from_name` additionally lets
``get_scenario("synthetic-chain-n24-s3")`` build one on the fly.

:func:`generate_instance` is the richer entry point used by the
differential oracle (:mod:`repro.testing.oracle`): it also derives a
seeded *delta sequence* (EDB insertions and deletions) so one instance
exercises the incremental-maintenance and service-update paths.
"""

from __future__ import annotations

import math
import random
import re
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database, Delta
from ..datalog.io import database_to_text, delta_to_lines, program_to_text
from ..datalog.parser import parse_program
from ..datalog.program import DatalogQuery
from .base import Scenario, ScenarioDatabase

#: Default family size (facts scale roughly linearly with it).
DEFAULT_SIZE = 16

#: Scenario-name shape accepted by :func:`scenario_from_name`.
_NAME_PATTERN = re.compile(r"^synthetic-([a-z]+)-n(\d+)-s(\d+)$")


def _rng(family: str, size: int, seed: int, stream: str = "base") -> random.Random:
    """The deterministic generator stream for one ``(family, size, seed)``.

    Seeded with a string, which :mod:`random` hashes with SHA-512 — stable
    across processes and interpreter hash randomization, the property the
    "same seed, same text" contract rests on.
    """
    return random.Random(f"synthetic:{family}:n{size}:s{seed}:{stream}")


# -- family generators --------------------------------------------------------
#
# Each generator maps (size, rng) to (program_text, facts, answer_predicate).
# Only string constants are used: answer tuples must sort (the session,
# harness and service all sort answers for determinism), and mixed
# int/str tuples would not.


def _chain_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    program = """
    c_tc(X, Y) :- c_e(X, Y).
    c_tc(X, Z) :- c_tc(X, Y), c_e(Y, Z).
    """
    nodes = [f"n{i}" for i in range(size + 1)]
    facts = [Atom("c_e", (nodes[i], nodes[i + 1])) for i in range(size)]
    for _ in range(max(1, size // 3)):
        i = rng.randrange(size)
        j = rng.randrange(i + 1, size + 1)
        facts.append(Atom("c_e", (nodes[i], nodes[j])))
    if rng.random() < 0.5 and size >= 2:
        # One back edge makes the closure cyclic for about half the seeds.
        j = rng.randrange(1, size + 1)
        facts.append(Atom("c_e", (nodes[j], nodes[rng.randrange(j)])))
    return program, facts, "c_tc"


def _grid_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    program = """
    g_reach(X, Y) :- g_e(X, Y).
    g_reach(X, Z) :- g_reach(X, Y), g_e(Y, Z).
    """
    width = max(2, math.isqrt(size))
    height = max(2, -(-size // width))
    facts = []
    for i in range(height):
        for j in range(width):
            here = f"g{i}_{j}"
            if j + 1 < width:
                facts.append(Atom("g_e", (here, f"g{i}_{j + 1}")))
            if i + 1 < height:
                facts.append(Atom("g_e", (here, f"g{i + 1}_{j}")))
    for _ in range(max(1, size // 4)):
        i = rng.randrange(height - 1)
        j = rng.randrange(width - 1)
        facts.append(Atom("g_e", (f"g{i}_{j}", f"g{i + 1}_{j + 1}")))
    return program, facts, "g_reach"


def _tree_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    program = """
    t_anc(X, Y) :- t_par(X, Y).
    t_anc(X, Z) :- t_par(X, Y), t_anc(Y, Z).
    """
    branching = rng.choice([1, 2, 2, 3])  # path-like through bushy
    facts = []
    for child in range(1, size + 1):
        parent = (child - 1) // branching
        if rng.random() < 0.1 and child > 1:
            parent = rng.randrange(child)  # rewire: still acyclic (parent < child)
        facts.append(Atom("t_par", (f"t{parent}", f"t{child}")))
    return program, facts, "t_anc"


def _widejoin_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    fan_in = 2 + rng.randrange(3)  # 2..4 body atoms in the join rule
    variables = [f"X{i}" for i in range(fan_in + 1)]
    body = ", ".join(
        f"w_r{i}({variables[i]}, {variables[i + 1]})" for i in range(fan_in)
    )
    program = f"""
    w_j({variables[0]}, {variables[fan_in]}) :- {body}.
    w_pair(X, Z) :- w_j(X, Y), w_j(Y, Z).
    """
    domain = [f"v{i}" for i in range(max(3, size // 2))]
    facts = []
    for i in range(fan_in):
        for _ in range(max(2, size // 2)):
            a, b = rng.choice(domain), rng.choice(domain)
            facts.append(Atom(f"w_r{i}", (a, b)))
    return program, facts, "w_pair"


def _dag_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    layers = 2 + min(4, size // 6)
    width = max(2, size // layers)
    rules = ["d_l1(Y) :- d_src(X), d_e(X, Y)."]
    for level in range(2, layers + 1):
        rules.append(f"d_l{level}(Y) :- d_l{level - 1}(X), d_e(X, Y).")
    program = "\n".join(rules)
    facts = []
    for j in range(width):
        if j == 0 or rng.random() < 0.7:
            facts.append(Atom("d_src", (f"d0_{j}",)))
    for level in range(1, layers + 1):
        for j in range(width):
            # A straight-down edge keeps every column derivable end to end
            # (the scale axis needs non-empty answers); the extra random
            # fan-in is what gives one fact many distinct derivations.
            facts.append(Atom("d_e", (f"d{level - 1}_{j}", f"d{level}_{j}")))
            for _ in range(rng.randrange(2)):
                facts.append(
                    Atom("d_e", (f"d{level - 1}_{rng.randrange(width)}", f"d{level}_{j}"))
                )
    return program, facts, f"d_l{layers}"


def _mixed_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    half = max(4, size // 2)
    chain_program, chain_facts, _ = _chain_family(half, rng)
    tree_program, tree_facts, _ = _tree_family(half, rng)
    program = (
        chain_program
        + tree_program
        + """
    m_mix(X, Y) :- c_tc(X, Y).
    m_mix(X, Y) :- t_anc(X, Y).
    m_mix(X, Z) :- c_tc(X, Y), m_b(Y, W), t_anc(W, Z).
    """
    )
    facts = chain_facts + tree_facts
    for _ in range(max(2, size // 4)):
        facts.append(
            Atom("m_b", (f"n{rng.randrange(half + 1)}", f"t{rng.randrange(half + 1)}"))
        )
    return program, facts, "m_mix"


def _deps_family(size: int, rng: random.Random) -> Tuple[str, List[Atom], str]:
    # Repodata shape: package i has versions ``p{i}v{k}``, every version
    # provides its package's ``lib{i}`` capability, virtual capabilities
    # ``virt{j}`` have several providers (the ambiguity that gives one
    # installation many distinct justifications), and dependencies point
    # at capabilities — never directly at packages — so ``dep_requires``
    # must go through the depends x provides join both in the base case
    # and in every recursive step.
    program = """
    dep_requires(P, Q) :- dep_depends(P, C), dep_provides(Q, C).
    dep_requires(P, R) :- dep_requires(P, Q), dep_depends(Q, C), dep_provides(R, C).
    dep_installed(P) :- dep_root(P).
    dep_installed(Q) :- dep_installed(P), dep_requires(P, Q).
    dep_justified(P, P) :- dep_root(P).
    dep_justified(Q, P) :- dep_root(P), dep_requires(P, Q).
    dep_clash(P, Q) :- dep_installed(P), dep_conflicts(P, Q), dep_installed(Q).
    """
    npkgs = max(3, (size + 1) // 2)
    fanout = 1 + min(3, size // 8)  # dependency fan-out cap grows with size
    versions: List[Tuple[int, str]] = []  # (package index, version constant)
    facts: List[Atom] = []
    for i in range(npkgs):
        for k in range(2 if rng.random() < 0.35 else 1):
            version = f"p{i}v{k}"
            versions.append((i, version))
            facts.append(Atom("dep_provides", (version, f"lib{i}")))
    # Virtual capabilities: several providers each — provider ambiguity.
    for j in range(max(1, size // 4)):
        capability = f"virt{j}"
        for _, version in rng.sample(versions, min(2 + rng.randrange(2), len(versions))):
            facts.append(Atom("dep_provides", (version, capability)))
    virtuals = [f"virt{j}" for j in range(max(1, size // 4))]
    for i, version in versions:
        if i == 0:
            continue  # package 0 is the dependency-free base
        for _ in range(1 + rng.randrange(fanout)):
            if rng.random() < 0.3:
                capability = rng.choice(virtuals)
            else:
                capability = f"lib{rng.randrange(i)}"
            facts.append(Atom("dep_depends", (version, capability)))
    # Conflicts: co-installed versions of one package always clash, plus
    # a few seeded cross-package pairs.
    by_package: Dict[int, List[str]] = {}
    for i, version in versions:
        by_package.setdefault(i, []).append(version)
    for i, pair in by_package.items():
        if len(pair) == 2:
            facts.append(Atom("dep_conflicts", (pair[0], pair[1])))
            facts.append(Atom("dep_conflicts", (pair[1], pair[0])))
    for _ in range(max(1, size // 6)):
        (_, a), (_, b) = rng.sample(versions, 2)
        facts.append(Atom("dep_conflicts", (a, b)))
    # Roots (the explicit install set): the top packages' first versions,
    # whose dependency closures reach down through the whole repo.
    for r in range(max(1, npkgs // 6)):
        facts.append(Atom("dep_root", (f"p{npkgs - 1 - r}v0",)))
    return program, facts, "dep_justified"


#: ``family name -> generator``, in registration order (``fuzz --family all``).
FAMILIES: Dict[str, Callable[[int, random.Random], Tuple[str, List[Atom], str]]] = {
    "chain": _chain_family,
    "grid": _grid_family,
    "tree": _tree_family,
    "widejoin": _widejoin_family,
    "dag": _dag_family,
    "mixed": _mixed_family,
    "deps": _deps_family,
}

#: The default family ladder shared by the benchmarks and CI smoke steps
#: (``mixed`` is left out: it recombines chain + tree, so it adds nothing
#: on a scale axis that the constituent families do not already show).
DEFAULT_BENCH_FAMILIES: Tuple[str, ...] = (
    "chain",
    "grid",
    "tree",
    "widejoin",
    "dag",
    "deps",
)


# -- instances ----------------------------------------------------------------


@dataclass(frozen=True)
class SyntheticInstance:
    """One generated workload: query, database, and a delta sequence.

    The full input of one differential-oracle run. Frozen so shrinking
    (:func:`repro.testing.oracle.shrink`) derives reduced candidates with
    :func:`dataclasses.replace` instead of mutating a shared instance;
    the :class:`~repro.datalog.database.Database` inside is treated as
    immutable — every consumer copies before mutating.
    """

    family: str
    size: int
    seed: int
    query: DatalogQuery
    database: Database
    deltas: Tuple[Delta, ...] = ()

    @property
    def name(self) -> str:
        """The canonical scenario name (parsed by :func:`scenario_from_name`)."""
        return f"synthetic-{self.family}-n{self.size}-s{self.seed}"

    def program_text(self) -> str:
        """The program in parser syntax (the determinism contract's subject)."""
        return program_to_text(self.query.program)

    def database_text(self) -> str:
        """The database in parser syntax, facts sorted."""
        return database_to_text(self.database)

    def delta_lines(self) -> List[List[str]]:
        """Each delta as textual ``+fact.`` / ``-fact.`` lines (wire format)."""
        return [delta_to_lines(delta) for delta in self.deltas]

    def scenario(self) -> Scenario:
        """This instance as a standard harness/benchmark :class:`Scenario`.

        The factories share *this* instance's already-generated query and
        database instead of regenerating the whole instance per access
        (program parse + database build + delta derivation, once for the
        query and once per database build). The query is immutable and
        shared outright; the database factory hands out a fresh copy per
        call, preserving the copy-before-mutate contract.
        """
        program = self.query.program
        query_type = (
            ("linear, " if program.is_linear() else "non-linear, ")
            + ("recursive" if program.is_recursive() else "non-recursive")
        )
        query, database = self.query, self.database
        return Scenario(
            name=self.name,
            query_factory=lambda: query,
            databases=(
                ScenarioDatabase(
                    name="gen",
                    factory=database.copy,
                    description=f"seeded synthetic {self.family} instance "
                    f"(size {self.size}, seed {self.seed})",
                ),
            ),
            query_type=query_type,
            num_rules=len(program.rules),
            description=f"synthetic {self.family} workload family",
        )

    def with_deltas(self, deltas: Sequence[Delta]) -> "SyntheticInstance":
        """A copy of this instance carrying a different delta sequence."""
        return replace(self, deltas=tuple(deltas))


def _generate_deltas(
    family: str,
    size: int,
    seed: int,
    database: Database,
    edb: Sequence[str],
    arities: Dict[str, int],
    rounds: int,
) -> Tuple[Delta, ...]:
    """A seeded sequence of EDB deltas that stays sensible under replay.

    Each round inserts one or two facts (arguments drawn from the active
    domain plus occasionally a fresh constant) and deletes one existing
    fact, tracked against a simulated database copy so deletions always
    hit live facts and insertions are always new. Deterministic: every
    draw comes from sorted snapshots of the simulated state.

    Every round emits a non-empty delta, so the returned tuple always has
    exactly ``rounds`` entries and the sequence is *prefix-stable* in
    ``rounds`` (regenerating with fewer rounds replays the identical
    prefix — the determinism property tests assert both). Predicates and
    arities come from the program schema, not the database, so rounds
    keep emitting even after deletions drain the simulated state; the one
    genuinely impossible input — a program with no EDB predicates at all —
    raises ``ValueError`` instead of silently under-delivering.
    """
    rng = _rng(family, size, seed, stream="deltas")
    simulated = database.copy()
    predicates = sorted(edb)
    if not predicates:
        raise ValueError(
            f"cannot generate {rounds} delta round(s) for {family!r}: "
            "the program has no EDB predicates to edit"
        )
    deltas: List[Delta] = []
    for round_index in range(rounds):
        domain = sorted(map(str, simulated.active_domain()))
        live = sorted(simulated, key=str)
        inserted: List[Atom] = []
        for i in range(1 + rng.randrange(2)):
            pred = rng.choice(predicates)
            args = tuple(
                f"u{round_index}x{i}"
                if not domain or rng.random() < 0.25
                else rng.choice(domain)
                for _ in range(arities[pred])
            )
            fact = Atom(pred, args)
            if fact not in simulated and fact not in inserted:
                inserted.append(fact)
        deleted = [rng.choice(live)] if live and rng.random() < 0.8 else []
        deleted = [fact for fact in deleted if fact not in inserted]
        if not inserted and not deleted:
            if live:
                deleted = [rng.choice(live)]
            else:
                # An empty simulated state cannot collide with a fully
                # fresh fact, so the round still emits.
                pred = rng.choice(predicates)
                inserted = [
                    Atom(
                        pred,
                        tuple(f"u{round_index}f{j}" for j in range(arities[pred])),
                    )
                ]
        delta = Delta(inserted=frozenset(inserted), deleted=frozenset(deleted))
        simulated.apply(delta)
        deltas.append(delta)
    return tuple(deltas)


#: Version constants of the ``deps`` family (``p<package>v<version>``).
_DEPS_VERSION = re.compile(r"^p(\d+)v(\d+)$")


def _deps_deltas(
    family: str,
    size: int,
    seed: int,
    database: Database,
    edb: Sequence[str],
    arities: Dict[str, int],
    rounds: int,
) -> Tuple[Delta, ...]:
    """Upgrade-shaped deltas for the ``deps`` family.

    Each round is one package *upgrade*, the way a repodata snapshot
    actually changes: pick a live package-version, retire every edge that
    mentions it (its ``dep_provides`` / ``dep_depends`` / ``dep_conflicts``
    rows, its ``dep_root`` membership, conflicts pointing *at* it), and
    publish the next version — same provided capabilities (so dependents
    stay resolvable), dependencies re-drawn with seeded drift, root status
    carried over, occasionally a fresh conflict. Same emission contract
    as :func:`_generate_deltas`: exactly ``rounds`` non-empty deltas,
    prefix-stable in ``rounds``.
    """
    rng = _rng(family, size, seed, stream="deltas")
    simulated = database.copy()
    deltas: List[Delta] = []
    for round_index in range(rounds):
        facts = sorted(simulated, key=str)
        live = sorted(
            {
                fact.args[0]
                for fact in facts
                if fact.pred == "dep_provides"
                and _DEPS_VERSION.match(str(fact.args[0]))
            }
        )
        if not live:
            # A drained repo (only reachable on hand-reduced instances):
            # publish a fresh dependency-free root package, which always
            # emits and re-seeds the live set for later rounds.
            fresh = f"q{round_index}v0"
            inserted = [
                Atom("dep_provides", (fresh, f"qlib{round_index}")),
                Atom("dep_root", (fresh,)),
            ]
            delta = Delta(inserted=frozenset(inserted))
            simulated.apply(delta)
            deltas.append(delta)
            continue
        old = rng.choice(live)
        package = _DEPS_VERSION.match(old).group(1)
        # The successor version number: one past the largest ever seen
        # for this package anywhere in the simulated state.
        top = 0
        for fact in facts:
            for arg in fact.args:
                match = _DEPS_VERSION.match(str(arg))
                if match and match.group(1) == package:
                    top = max(top, int(match.group(2)))
        new = f"p{package}v{top + 1}"
        deleted = [
            fact for fact in facts if old in fact.args
        ]
        capabilities = sorted(
            {fact.args[1] for fact in facts if fact.pred == "dep_provides"}
        )
        inserted = []
        for fact in deleted:
            if fact.pred == "dep_provides":
                inserted.append(Atom("dep_provides", (new, fact.args[1])))
            elif fact.pred == "dep_root":
                inserted.append(Atom("dep_root", (new,)))
            elif fact.pred == "dep_depends":
                capability = fact.args[1]
                if rng.random() < 0.3:  # dependency drift across versions
                    capability = rng.choice(capabilities)
                inserted.append(Atom("dep_depends", (new, capability)))
            # Conflicts are not carried over: the old pairings named the
            # retired version; fresh ones are drawn below.
        if rng.random() < 0.25:
            other = rng.choice(live)
            if other != old:
                inserted.append(Atom("dep_conflicts", (new, other)))
        # ``new`` never occurred before, so every insertion is genuinely
        # fresh; dedup only against this round's own draws.
        delta = Delta(inserted=frozenset(inserted), deleted=frozenset(deleted))
        simulated.apply(delta)
        deltas.append(delta)
    return tuple(deltas)


#: Families whose deltas are *not* the generic churn of
#: :func:`_generate_deltas` — the ``deps`` family models upgrades.
DELTA_GENERATORS: Dict[
    str,
    Callable[
        [str, int, int, Database, Sequence[str], Dict[str, int], int],
        Tuple[Delta, ...],
    ],
] = {
    "deps": _deps_deltas,
}


def generate_instance(
    family: str,
    size: int = DEFAULT_SIZE,
    seed: int = 0,
    delta_rounds: int = 0,
) -> SyntheticInstance:
    """Build one deterministic instance of a workload family.

    Same ``(family, size, seed, delta_rounds)``, same instance — down to
    the program text, the database text, and the delta lines (the
    property ``tests/test_synthetic.py`` asserts). The delta sequence
    always has exactly ``delta_rounds`` entries. Raises ``KeyError`` for
    an unknown family, ``ValueError`` for a non-positive size.
    """
    try:
        generator = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(f"unknown synthetic family {family!r}; known: {known}") from None
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    program_text, facts, answer = generator(size, _rng(family, size, seed))
    program = parse_program(program_text)
    query = DatalogQuery(program, answer)
    database = Database(facts).restrict(program.edb)
    edb = sorted(program.edb)
    delta_generator = DELTA_GENERATORS.get(family, _generate_deltas)
    deltas = (
        delta_generator(
            family,
            size,
            seed,
            database,
            edb,
            {pred: program.arity(pred) for pred in edb},
            delta_rounds,
        )
        if delta_rounds
        else ()
    )
    return SyntheticInstance(
        family=family,
        size=size,
        seed=seed,
        query=query,
        database=database,
        deltas=deltas,
    )


def synthetic(
    family: str,
    size: int = DEFAULT_SIZE,
    seed: int = 0,
) -> Scenario:
    """A workload family instance as a standard :class:`Scenario`.

    The drop-in entry point for the harness and benchmarks::

        run = run_database(synthetic("grid", size=64, seed=3), "gen")
    """
    return generate_instance(family, size=size, seed=seed).scenario()


def scenario_from_name(name: str):
    """Parse ``synthetic-<family>-n<size>-s<seed>`` into a Scenario.

    Returns ``None`` when the name is not of that shape *or* names an
    instance no generator can produce (a non-positive size), so
    :func:`~repro.scenarios.base.get_scenario` falls through to its
    registry ``KeyError`` with the known-scenarios message instead of
    leaking :func:`generate_instance`'s ``ValueError``; raises
    ``KeyError`` for a well-shaped name with an unknown family.
    """
    match = _NAME_PATTERN.match(name)
    if match is None:
        return None
    family, size, seed = match.group(1), int(match.group(2)), int(match.group(3))
    if size < 1:
        return None
    return synthetic(family, size=size, seed=seed)
