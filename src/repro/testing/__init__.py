"""Cross-stack testing infrastructure (the differential oracle).

Every guarantee this library ships — parallel equals serial, maintained
equals cold, service equals in-process — is an *equivalence between
execution paths*. This package turns those equivalences into a single
runnable oracle: :mod:`repro.testing.oracle` drives one generated
workload through every path and asserts byte-identical observations,
with shrinking to a minimal failing input on divergence. The ``repro
fuzz`` CLI subcommand and the property tests are thin drivers over it.
"""

from .oracle import (
    ALL_PATHS,
    DEFAULT_PATHS,
    Divergence,
    OracleConfig,
    OracleReport,
    run_oracle,
    shrink,
)

__all__ = [
    "ALL_PATHS",
    "DEFAULT_PATHS",
    "Divergence",
    "OracleConfig",
    "OracleReport",
    "run_oracle",
    "shrink",
]
