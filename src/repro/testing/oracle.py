"""The cross-stack differential oracle: seven execution paths, one answer.

The library serves why-provenance through seven distinct machines that
are all contractually byte-identical:

* ``cold`` — a fresh :class:`~repro.core.session.ProvenanceSession` per
  database state, every tuple served through cold caches;
* ``warm`` — the same session serving every tuple **twice**, recording
  the second pass (the memoized closure/encoding path);
* ``parallel`` — :meth:`ProvenanceSession.explain_batch` with a forked
  worker pool (snapshot pickling, worker rehydration, order restoration);
* ``incremental`` — one live session reaching each database state through
  :meth:`ProvenanceSession.update` (delta-semi-naive / DRed maintenance,
  never re-evaluation);
* ``service`` — a real daemon on a TCP socket, states reached through
  wire ``update`` requests, witnesses through wire ``batch`` requests;
* ``restart`` — a daemon with a durable state dir, hard-stopped halfway
  through the delta sequence and restarted on the same directory; the
  second incarnation must rehydrate the session from its snapshot + WAL
  (never re-evaluate) and keep serving byte-identical observations;
* ``sharded`` — the multi-process daemon (``serve --workers 2``): an
  async front-end routing by consistent-hashed content digest to real
  worker subprocesses, which must be indistinguishable on the wire from
  the single-process ``service`` path.

:func:`run_oracle` drives one generated instance
(:class:`~repro.scenarios.synthetic.SyntheticInstance`) through every
path and compares *canonical observations* — one key-sorted JSON text per
database state holding the sorted answer list plus, for a seeded sample
of answer tuples, the witness lists in discovery order. Texts must match
byte for byte; any difference is a :class:`Divergence` naming the state,
the paths, and both texts.

:func:`shrink` reduces a failing instance to a minimal one — first the
delta sequence, then the database facts (ddmin), then the program rules —
re-running the oracle on every candidate, so a fuzz failure lands as a
small self-contained ``(program, database, deltas)`` repro.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.session import ProvenanceSession
from ..datalog.database import Database, Delta
from ..datalog.program import DatalogQuery, Program
from ..harness.runner import sample_from_answers
from ..scenarios.synthetic import SyntheticInstance
from ..service.protocol import render_members

#: Every execution path the oracle can drive, in reference order: the
#: first configured path is the baseline the others are diffed against.
ALL_PATHS = (
    "cold",
    "warm",
    "parallel",
    "incremental",
    "service",
    "restart",
    "sharded",
)

#: The default path set: everything but ``restart`` (two daemon
#: incarnations per instance) and ``sharded`` (a pool of worker
#: subprocesses per instance) — both earn their keep in dedicated fuzz
#: steps (``--paths cold,restart`` / ``--paths cold,sharded``) rather
#: than in every quick run.
DEFAULT_PATHS = ("cold", "warm", "parallel", "incremental", "service")


@dataclass(frozen=True)
class OracleConfig:
    """Knobs for one oracle run (shared by every path, by construction).

    ``timeout_seconds`` defaults to ``None`` on purpose: a per-tuple
    timeout can truncate enumeration at different points under different
    schedulers, which would report scheduling noise as divergence. The
    ``limit`` bounds work instead.
    """

    paths: Tuple[str, ...] = DEFAULT_PATHS
    limit: int = 4
    tuples_per_state: int = 3
    sample_seed: int = 7
    workers: int = 2
    #: Worker processes for the ``sharded`` path's daemon (>= 2, so the
    #: router genuinely routes instead of degenerating to one shard).
    shard_workers: int = 2
    timeout_seconds: Optional[float] = None
    acyclicity: str = "vertex-elimination"

    def __post_init__(self):
        unknown = [p for p in self.paths if p not in ALL_PATHS]
        if unknown:
            raise ValueError(
                f"unknown oracle paths {unknown}; known: {', '.join(ALL_PATHS)}"
            )
        if len(self.paths) < 2:
            raise ValueError("a differential oracle needs at least two paths")


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two paths at one database state."""

    state: int
    path_a: str
    path_b: str
    text_a: str
    text_b: str

    def describe(self) -> str:
        """A one-line human summary (full texts live in the report)."""
        return (
            f"state {self.state}: {self.path_a} != {self.path_b} "
            f"({len(self.text_a)} vs {len(self.text_b)} bytes)"
        )


@dataclass
class OracleReport:
    """The outcome of one differential run over one instance."""

    instance: SyntheticInstance
    paths: Tuple[str, ...]
    states: int
    observations: Dict[str, List[str]]
    divergences: List[Divergence] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every path agreed byte-for-byte at every state."""
        return not self.divergences

    def summary(self) -> str:
        """One line: instance, states, paths, verdict."""
        verdict = "ok" if self.ok else f"DIVERGED ({len(self.divergences)})"
        return (
            f"{self.instance.name}: {self.states} state(s) x "
            f"{len(self.paths)} path(s): {verdict}"
        )


# -- observation plumbing -----------------------------------------------------


def _canonical(answers: Sequence[Tuple], witnesses: List[Dict]) -> str:
    """One state's observation as compact, key-sorted JSON text.

    Byte equality of these texts is the oracle's entire comparison — the
    shape mirrors the wire protocol (answers as arrays, witnesses as
    sorted ``"fact."`` strings in discovery order) so in-process and
    service observations are directly comparable.
    """
    payload = {
        "answers": [list(tup) for tup in answers],
        "witnesses": witnesses,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _observe_session_state(
    session: ProvenanceSession, config: OracleConfig, serve_twice: bool = False
) -> str:
    """One state's observation through an in-process session (serial)."""
    answers = session.answers()
    sampled = sample_from_answers(
        answers, count=config.tuples_per_state, seed=config.sample_seed
    )
    if serve_twice:
        for tup in sampled:
            session.why(tup, limit=config.limit, timeout_seconds=config.timeout_seconds)
    witnesses = [
        {
            "tuple": list(tup),
            "members": render_members(
                session.why(
                    tup, limit=config.limit, timeout_seconds=config.timeout_seconds
                )
            ),
        }
        for tup in sampled
    ]
    return _canonical(answers, witnesses)


def _observe_batch_state(session: ProvenanceSession, config: OracleConfig) -> str:
    """One state's observation through the forked batch path."""
    answers = session.answers()
    sampled = sample_from_answers(
        answers, count=config.tuples_per_state, seed=config.sample_seed
    )
    batch = session.explain_batch(
        sampled,
        workers=config.workers,
        limit=config.limit,
        timeout_seconds=config.timeout_seconds,
    )
    witnesses = [
        {
            "tuple": list(result.tuple_value),
            "members": render_members(result.members),
        }
        for result in batch.results
    ]
    return _canonical(answers, witnesses)


def _state_databases(instance: SyntheticInstance) -> List[Database]:
    """Fresh database copies for every state: base, then after each delta."""
    states = [instance.database.copy()]
    current = instance.database.copy()
    for delta in instance.deltas:
        current.apply(delta)
        states.append(current.copy())
    return states


# -- the six paths ------------------------------------------------------------


def _run_cold(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    return [
        _observe_session_state(
            ProvenanceSession(instance.query, db, acyclicity=config.acyclicity), config
        )
        for db in _state_databases(instance)
    ]


def _run_warm(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    return [
        _observe_session_state(
            ProvenanceSession(instance.query, db, acyclicity=config.acyclicity),
            config,
            serve_twice=True,
        )
        for db in _state_databases(instance)
    ]


def _run_parallel(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    return [
        _observe_batch_state(
            ProvenanceSession(instance.query, db, acyclicity=config.acyclicity), config
        )
        for db in _state_databases(instance)
    ]


def _run_incremental(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    session = ProvenanceSession(
        instance.query, instance.database.copy(), acyclicity=config.acyclicity
    )
    texts = [_observe_session_state(session, config)]
    for delta in instance.deltas:
        session.update(delta)
        texts.append(_observe_session_state(session, config))
    if session.stats.evaluations != 1:
        # Not an assert: this must fire under ``python -O`` too. A
        # maintenance fallback to re-evaluation would make the path's
        # texts trivially correct while voiding what it claims to test.
        raise RuntimeError(
            "incremental path re-evaluated "
            f"({session.stats.evaluations} evaluations); maintenance must "
            "patch the single original evaluation"
        )
    return texts


def _observe_wire_state(client, digest: str, config: OracleConfig) -> str:
    """One state's observation through a connected service client."""
    answered = client.answers(digest)
    answers = [tuple(values) for values in answered["result"]["answers"]]
    sampled = sample_from_answers(
        answers, count=config.tuples_per_state, seed=config.sample_seed
    )
    witnesses: List[Dict] = []
    if sampled:
        batch = client.batch(
            digest,
            tuples=sampled,
            limit=config.limit,
            timeout=config.timeout_seconds,
            workers=1,
        )
        witnesses = [
            {"tuple": list(entry["tuple"]), "members": entry["members"]}
            for entry in batch["result"]["results"]
        ]
    return _canonical(answers, witnesses)


def _run_service(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    from ..service.client import local_service
    from ..service.registry import SessionRegistry

    registry = SessionRegistry(acyclicity=config.acyclicity)
    with local_service(registry=registry) as client:
        opened = client.open(
            instance.program_text(),
            instance.database_text(),
            instance.query.answer_predicate,
        )
        digest = opened["session"]
        texts = [_observe_wire_state(client, digest, config)]
        for lines in instance.delta_lines():
            client.update(digest, lines=lines)
            texts.append(_observe_wire_state(client, digest, config))
    return texts


def _run_restart(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    """The durable-tier path: crash the daemon mid-sequence, restart, resume.

    The first daemon incarnation admits the session with a
    :class:`~repro.service.store.SnapshotStore` attached and applies the
    first half of the delta sequence; it is then dropped *without* any
    demotion flush — exactly what a crash leaves behind (durability must
    come from the admission snapshot and the per-update WAL fsyncs, both
    written before each response was sent). The second incarnation, on
    the same state directory, must rehydrate rather than re-evaluate
    (``evaluations == 1``), serve the pre-stop state byte-identically,
    and then absorb the remaining deltas.
    """
    import shutil
    import tempfile

    from ..service.client import local_service
    from ..service.registry import SessionRegistry
    from ..service.store import SnapshotStore

    delta_lines = list(instance.delta_lines())
    half = (len(delta_lines) + 1) // 2
    state_dir = tempfile.mkdtemp(prefix="repro-oracle-restart-")
    try:
        registry = SessionRegistry(
            acyclicity=config.acyclicity, store=SnapshotStore(state_dir)
        )
        with local_service(registry=registry) as client:
            opened = client.open(
                instance.program_text(),
                instance.database_text(),
                instance.query.answer_predicate,
            )
            digest = opened["session"]
            texts = [_observe_wire_state(client, digest, config)]
            for lines in delta_lines[:half]:
                client.update(digest, lines=lines)
                texts.append(_observe_wire_state(client, digest, config))
        # Hard stop: the context exit above tears the daemon down without
        # demoting anything — the store holds only what was fsync'd at
        # commit time, which is the whole durability claim under test.
        del registry
        registry = SessionRegistry(
            acyclicity=config.acyclicity, store=SnapshotStore(state_dir)
        )
        with local_service(registry=registry) as client:
            opened = client.open(
                instance.program_text(),
                instance.database_text(),
                instance.query.answer_predicate,
            )
            if opened["session"] != digest:
                raise RuntimeError(
                    "restart path re-admitted under a different digest "
                    f"({opened['session']} != {digest})"
                )
            # Not asserts: these must fire under ``python -O`` too. A
            # silent cold fallback would make the texts trivially correct
            # while voiding the crash-recovery claim this path tests.
            if not opened["result"]["rehydrated"]:
                raise RuntimeError(
                    "restart path fell back to cold admission; the second "
                    "incarnation must rehydrate from the snapshot store"
                )
            stats = client.stats(session=digest)
            evaluations = stats["result"]["session_stats"]["evaluations"]
            if evaluations != 1:
                raise RuntimeError(
                    f"rehydrated session reports {evaluations} evaluations; "
                    "snapshot restore + WAL replay must keep the single "
                    "original evaluation"
                )
            resumed = _observe_wire_state(client, digest, config)
            if resumed != texts[-1]:
                raise RuntimeError(
                    "restart path lost state across the crash: the "
                    "rehydrated observation differs from the pre-stop one"
                )
            for lines in delta_lines[half:]:
                client.update(digest, lines=lines)
                texts.append(_observe_wire_state(client, digest, config))
        return texts
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def _run_sharded(instance: SyntheticInstance, config: OracleConfig) -> List[str]:
    """The multi-process path: same loop as ``service``, over the router.

    Every request crosses the async front-end, gets routed by content
    digest to one of ``config.shard_workers`` worker subprocesses, and
    must come back byte-identical to what the single-process daemon
    would have sent.
    """
    from ..service.client import local_sharded_service

    with local_sharded_service(
        workers=max(2, config.shard_workers), acyclicity=config.acyclicity
    ) as client:
        opened = client.open(
            instance.program_text(),
            instance.database_text(),
            instance.query.answer_predicate,
        )
        digest = opened["session"]
        texts = [_observe_wire_state(client, digest, config)]
        for lines in instance.delta_lines():
            client.update(digest, lines=lines)
            texts.append(_observe_wire_state(client, digest, config))
    return texts


_PATH_RUNNERS: Dict[str, Callable[[SyntheticInstance, OracleConfig], List[str]]] = {
    "cold": _run_cold,
    "warm": _run_warm,
    "parallel": _run_parallel,
    "incremental": _run_incremental,
    "service": _run_service,
    "restart": _run_restart,
    "sharded": _run_sharded,
}


def run_oracle(
    instance: SyntheticInstance, config: Optional[OracleConfig] = None
) -> OracleReport:
    """Drive *instance* through every configured path and diff observations.

    The first configured path is the reference; every other path is
    compared against it state by state, byte for byte. The report's
    :attr:`~OracleReport.ok` is the oracle's verdict; divergences carry
    both texts for debugging and shrinking.
    """
    config = config or OracleConfig()
    started = time.perf_counter()
    observations = {
        path: _PATH_RUNNERS[path](instance, config) for path in config.paths
    }
    reference = config.paths[0]
    divergences: List[Divergence] = []
    for path in config.paths[1:]:
        for state, (text_a, text_b) in enumerate(
            zip(observations[reference], observations[path])
        ):
            if text_a != text_b:
                divergences.append(
                    Divergence(
                        state=state,
                        path_a=reference,
                        path_b=path,
                        text_a=text_a,
                        text_b=text_b,
                    )
                )
        if len(observations[path]) != len(observations[reference]):
            divergences.append(
                Divergence(
                    state=min(
                        len(observations[path]), len(observations[reference])
                    ),
                    path_a=reference,
                    path_b=path,
                    text_a=f"{len(observations[reference])} states",
                    text_b=f"{len(observations[path])} states",
                )
            )
    return OracleReport(
        instance=instance,
        paths=config.paths,
        states=len(observations[reference]),
        observations=observations,
        divergences=divergences,
        seconds=time.perf_counter() - started,
    )


# -- shrinking ----------------------------------------------------------------


@dataclass
class ShrinkResult:
    """A minimized failing instance plus the work it took to find it."""

    instance: SyntheticInstance
    checks: int
    initial_shape: Tuple[int, int, int]  # (rules, facts, deltas)
    final_shape: Tuple[int, int, int]

    def describe(self) -> str:
        """One line: shape before -> after, oracle runs spent."""
        a, b = self.initial_shape, self.final_shape
        return (
            f"shrunk ({a[0]} rules, {a[1]} facts, {a[2]} deltas) -> "
            f"({b[0]} rules, {b[1]} facts, {b[2]} deltas) in {self.checks} runs"
        )


def _shape(instance: SyntheticInstance) -> Tuple[int, int, int]:
    return (
        len(instance.query.program.rules),
        len(instance.database),
        len(instance.deltas),
    )


def _rebuild(
    instance: SyntheticInstance,
    rules=None,
    facts=None,
    deltas=None,
) -> Optional[SyntheticInstance]:
    """A reduced candidate, renormalized to stay a valid oracle input.

    Dropping rules changes the extensional schema, so the database and
    every delta are re-restricted to the new ``edb`` (empty deltas are
    dropped). Returns ``None`` when the reduction is structurally invalid
    (no rules left, answer predicate no longer intensional).
    """
    try:
        program = (
            Program(rules) if rules is not None else instance.query.program
        )
        query = DatalogQuery(program, instance.query.answer_predicate)
    except ValueError:
        return None
    database = Database(
        facts if facts is not None else instance.database.facts()
    ).restrict(program.edb)
    kept_deltas: List[Delta] = []
    for delta in instance.deltas if deltas is None else deltas:
        reduced = Delta(
            inserted=frozenset(f for f in delta.inserted if f.pred in program.edb),
            deleted=frozenset(f for f in delta.deleted if f.pred in program.edb),
        )
        if reduced:
            kept_deltas.append(reduced)
    return replace(
        instance, query=query, database=database, deltas=tuple(kept_deltas)
    )


def shrink(
    instance: SyntheticInstance,
    config: Optional[OracleConfig] = None,
    max_checks: int = 80,
) -> ShrinkResult:
    """Minimize a failing instance while it keeps failing the oracle.

    Three greedy phases — delta sequence, database facts (ddmin), program
    rules — each validated by a full oracle run; a candidate on which the
    oracle *crashes* also counts as failing (a crash is a bug worth a
    minimal repro just as much as a divergence). ``max_checks`` bounds
    the total number of oracle runs.
    """
    config = config or OracleConfig()
    checks = 0

    def fails(candidate: Optional[SyntheticInstance]) -> bool:
        nonlocal checks
        if candidate is None or checks >= max_checks:
            return False
        checks += 1
        try:
            return not run_oracle(candidate, config).ok
        except Exception:
            return True

    initial = _shape(instance)

    # Phase 1: the delta sequence — try dropping it entirely, then one at
    # a time (later deltas first: a divergence at state k usually needs
    # only the first k deltas).
    if instance.deltas:
        candidate = _rebuild(instance, deltas=())
        if fails(candidate):
            instance = candidate
        else:
            index = len(instance.deltas) - 1
            while index >= 0 and checks < max_checks:
                reduced = list(instance.deltas)
                del reduced[index]
                candidate = _rebuild(instance, deltas=reduced)
                if fails(candidate):
                    instance = candidate
                index -= 1

    # Phase 2: database facts, classic ddmin over the sorted fact list.
    facts = sorted(instance.database, key=str)
    granularity = 2
    while len(facts) >= 2 and checks < max_checks:
        chunk = max(1, -(-len(facts) // granularity))
        removed_any = False
        start = 0
        while start < len(facts) and checks < max_checks:
            reduced = facts[:start] + facts[start + chunk:]
            candidate = _rebuild(instance, facts=reduced)
            if reduced and fails(candidate):
                facts = reduced
                instance = candidate
                removed_any = True
            else:
                start += chunk
        if removed_any:
            granularity = max(2, granularity - 1)
        elif chunk == 1:
            break
        else:
            granularity = min(len(facts), granularity * 2)

    # Phase 3: program rules, one at a time (later rules first so the
    # base rules that keep the answer predicate derivable survive).
    index = len(instance.query.program.rules) - 1
    while index >= 0 and checks < max_checks:
        rules = list(instance.query.program.rules)
        if len(rules) <= 1:
            break
        del rules[index]
        candidate = _rebuild(instance, rules=rules)
        if fails(candidate):
            instance = candidate
        index -= 1

    return ShrinkResult(
        instance=instance,
        checks=checks,
        initial_shape=initial,
        final_shape=_shape(instance),
    )
