"""Hardness reductions of the paper: workload generators + cross-checks."""

from .hamiltonian import (
    brute_force_hamiltonian_cycle,
    hamiltonian_database,
    hamiltonian_instance,
    hamiltonian_query,
    random_digraph,
)
from .minimal_depth import (
    minimal_depth_database,
    minimal_depth_instance,
    minimal_depth_query,
    uniform_proof_depth,
)
from .three_sat import (
    END_MARKER,
    brute_force_3sat,
    random_3cnf,
    three_sat_database,
    three_sat_instance,
    three_sat_query,
    variable_name,
)

__all__ = [
    "END_MARKER",
    "brute_force_3sat",
    "brute_force_hamiltonian_cycle",
    "hamiltonian_database",
    "hamiltonian_instance",
    "hamiltonian_query",
    "minimal_depth_database",
    "minimal_depth_instance",
    "minimal_depth_query",
    "random_3cnf",
    "random_digraph",
    "three_sat_database",
    "three_sat_instance",
    "three_sat_query",
    "uniform_proof_depth",
    "variable_name",
]
