"""The 3SAT reduction of Theorem 3 (Lemma 17).

The paper proves NP-hardness of ``Why-Provenance[LDat]`` by exhibiting a
*fixed* linear Datalog query ``Q`` and a polynomial-time mapping of a 3CNF
formula ``phi`` to a database ``D_phi`` such that

    ``phi`` is satisfiable  iff  ``D_phi in why((v1), D_phi, Q)``.

This module builds that query and database, provides a brute-force 3SAT
oracle and a seeded random-instance generator, so the equivalence can be
validated end-to-end (and doubles as an adversarial workload generator for
the deciders).

3CNF representation: a clause is a triple of non-zero ints, ``+i`` for
variable ``i`` and ``-i`` for its negation; variables are ``1..n``.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery, Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable, fresh_variable

Clause3 = Tuple[int, int, int]

#: The dummy last "variable" of the reduction (the paper's bullet).
END_MARKER = "#end"


def _v(name: str) -> Variable:
    return Variable(name)


def three_sat_query() -> DatalogQuery:
    """The fixed linear query ``Q = (Sigma, R)`` of the reduction.

    The program (sigma1 .. sigma8 of Appendix A.1)::

        R(x)         :- Var(x, z, _), Assign(x, z).
        R(x)         :- Var(x, _, z), Assign(x, z).
        Assign(x, y) :- C(x, y, _, _, _, _), Assign(x, y).
        Assign(x, y) :- C(_, _, x, y, _, _), Assign(x, y).
        Assign(x, y) :- C(_, _, _, _, x, y), Assign(x, y).
        Assign(x, z) :- Next(x, y, z, _), R(y).
        Assign(x, z) :- Next(x, y, _, z), R(y).
        R(x)         :- Last(x).

    Fresh anonymous variables stand for the paper's underscores.
    """
    x, y, z = _v("x"), _v("y"), _v("z")

    def blank() -> Variable:
        return fresh_variable("blank")

    rules = [
        Rule(Atom("R", (x,)), (Atom("Var", (x, z, blank())), Atom("Assign", (x, z)))),
        Rule(Atom("R", (x,)), (Atom("Var", (x, blank(), z)), Atom("Assign", (x, z)))),
        Rule(
            Atom("Assign", (x, y)),
            (Atom("C", (x, y, blank(), blank(), blank(), blank())), Atom("Assign", (x, y))),
        ),
        Rule(
            Atom("Assign", (x, y)),
            (Atom("C", (blank(), blank(), x, y, blank(), blank())), Atom("Assign", (x, y))),
        ),
        Rule(
            Atom("Assign", (x, y)),
            (Atom("C", (blank(), blank(), blank(), blank(), x, y)), Atom("Assign", (x, y))),
        ),
        Rule(Atom("Assign", (x, z)), (Atom("Next", (x, y, z, blank())), Atom("R", (y,)))),
        Rule(Atom("Assign", (x, z)), (Atom("Next", (x, y, blank(), z)), Atom("R", (y,)))),
        Rule(Atom("R", (x,)), (Atom("Last", (x,)),)),
    ]
    return DatalogQuery(Program(rules), "R")


def variable_name(i: int) -> str:
    """The database constant for propositional variable ``i``."""
    return f"v{i}"


def three_sat_database(clauses: Sequence[Clause3], num_vars: int) -> Database:
    """Construct ``D_phi`` (Lemma 17) for a 3CNF formula."""
    _validate_clauses(clauses, num_vars)
    db = Database()
    for i in range(1, num_vars + 1):
        db.add(Atom("Var", (variable_name(i), 0, 1)))
    for i in range(1, num_vars):
        db.add(Atom("Next", (variable_name(i), variable_name(i + 1), 0, 1)))
    db.add(Atom("Next", (variable_name(num_vars), END_MARKER, 0, 1)))
    db.add(Atom("Last", (END_MARKER,)))
    for clause in clauses:
        args: List = []
        for literal in clause:
            args.append(variable_name(abs(literal)))
            args.append(1 if literal > 0 else 0)
        db.add(Atom("C", tuple(args)))
    return db


def three_sat_instance(
    clauses: Sequence[Clause3],
    num_vars: int,
) -> Tuple[DatalogQuery, Database, Tuple]:
    """The full reduction output ``(Q, D_phi, (v1))``.

    ``phi`` is satisfiable iff ``D_phi in why((v1), D_phi, Q)``.
    """
    query = three_sat_query()
    db = three_sat_database(clauses, num_vars)
    return query, db, (variable_name(1),)


def _validate_clauses(clauses: Sequence[Clause3], num_vars: int) -> None:
    if num_vars < 1:
        raise ValueError("the reduction needs at least one variable")
    for clause in clauses:
        if len(clause) != 3:
            raise ValueError(f"clause {clause} does not have exactly 3 literals")
        for literal in clause:
            if literal == 0 or abs(literal) > num_vars:
                raise ValueError(f"literal {literal} out of range for {num_vars} variables")


def brute_force_3sat(clauses: Sequence[Clause3], num_vars: int) -> Optional[Dict[int, bool]]:
    """Exhaustive 3SAT oracle: a satisfying assignment, or ``None``.

    Exponential in *num_vars*; the cross-validation tests use small n.
    """
    _validate_clauses(clauses, num_vars)
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return assignment
    return None


def random_3cnf(
    num_vars: int,
    num_clauses: int,
    seed: int = 0,
) -> List[Clause3]:
    """A random 3CNF with distinct variables per clause (seeded)."""
    if num_vars < 3:
        raise ValueError("need at least 3 variables for distinct-variable clauses")
    rng = random.Random(seed)
    clauses: List[Clause3] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clause = tuple(
            var if rng.random() < 0.5 else -var for var in variables
        )
        clauses.append(clause)  # type: ignore[arg-type]
    return clauses
