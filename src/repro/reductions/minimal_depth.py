"""The 3SAT reduction for minimal-depth proof trees (Lemma 34).

NP-hardness of ``Why-Provenance_MD[LDat]`` (Theorem 27) adapts the 3SAT
reduction of Theorem 3 so that *every* proof tree of the goal fact has the
same depth ``n * (m + 2) + 1`` (Lemma 35) — then minimal-depth membership
coincides with plain membership and the original argument goes through.

The clause-walk rules force each per-variable segment of a proof tree to
take exactly ``m`` steps (one per clause), either consuming the clause's
``C`` fact (rules sigma3/4/5, when the chosen value satisfies the clause)
or skipping it via a ``NextC`` fact (rules sigma'/sigma'').

Note: the paper's listing of sigma7 writes ``P(y)`` in the body; no
predicate ``P`` exists anywhere in the construction, so we read it as the
evident typo for ``R(y)``, mirroring sigma6.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery, Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable, fresh_variable
from .three_sat import END_MARKER, Clause3, _validate_clauses, variable_name


def _v(name: str) -> Variable:
    return Variable(name)


def minimal_depth_query() -> DatalogQuery:
    """The fixed linear query of Lemma 34 (depth-uniform 3SAT walk)::

        R(x)             :- Var(x, y, _, z), Assign(x, y, z).
        R(x)             :- Var(x, _, y, z), Assign(x, y, z).
        Assign(x, y, z)  :- NextC(x, z, w, k, l),
                            C(x, y, _, _, _, _, z, w, k, l), Assign(x, y, w).
        Assign(x, y, z)  :- NextC(x, z, w, k, l),
                            C(_, _, x, y, _, _, z, w, k, l), Assign(x, y, w).
        Assign(x, y, z)  :- NextC(x, z, w, k, l),
                            C(_, _, _, _, x, y, z, w, k, l), Assign(x, y, w).
        Assign(x, y, z)  :- NextC(x, z, w, y, _), Assign(x, y, w).
        Assign(x, y, z)  :- NextC(x, z, w, _, y), Assign(x, y, w).
        Assign(x, z, w)  :- Next(x, y, z, _, w), R(y).
        Assign(x, z, w)  :- Next(x, y, _, z, w), R(y).
        R(x)             :- Last(x).
    """
    x, y, z, w, k, l = _v("x"), _v("y"), _v("z"), _v("w"), _v("k"), _v("l")

    def blank() -> Variable:
        return fresh_variable("blank")

    def clause_rule(position: int) -> Rule:
        # position 0, 1, 2: which literal slot of C carries (x, y).
        c_args: List = []
        for slot in range(3):
            if slot == position:
                c_args.extend((x, y))
            else:
                c_args.extend((blank(), blank()))
        c_args.extend((z, w, k, l))
        return Rule(
            Atom("Assign", (x, y, z)),
            (
                Atom("NextC", (x, z, w, k, l)),
                Atom("C", tuple(c_args)),
                Atom("Assign", (x, y, w)),
            ),
        )

    rules = [
        Rule(
            Atom("R", (x,)),
            (Atom("Var", (x, y, blank(), z)), Atom("Assign", (x, y, z))),
        ),
        Rule(
            Atom("R", (x,)),
            (Atom("Var", (x, blank(), y, z)), Atom("Assign", (x, y, z))),
        ),
        clause_rule(0),
        clause_rule(1),
        clause_rule(2),
        Rule(
            Atom("Assign", (x, y, z)),
            (Atom("NextC", (x, z, w, y, blank())), Atom("Assign", (x, y, w))),
        ),
        Rule(
            Atom("Assign", (x, y, z)),
            (Atom("NextC", (x, z, w, blank(), y)), Atom("Assign", (x, y, w))),
        ),
        Rule(
            Atom("Assign", (x, z, w)),
            (Atom("Next", (x, y, z, blank(), w)), Atom("R", (y,))),
        ),
        Rule(
            Atom("Assign", (x, z, w)),
            (Atom("Next", (x, y, blank(), z, w)), Atom("R", (y,))),
        ),
        Rule(Atom("R", (x,)), (Atom("Last", (x,)),)),
    ]
    return DatalogQuery(Program(rules), "R")


def minimal_depth_database(clauses: Sequence[Clause3], num_vars: int) -> Database:
    """Construct ``D_phi`` of Lemma 34."""
    _validate_clauses(clauses, num_vars)
    m = len(clauses)
    db = Database()
    for i in range(1, num_vars + 1):
        db.add(Atom("Var", (variable_name(i), 0, 1, 1)))
    for i in range(1, num_vars):
        db.add(Atom("Next", (variable_name(i), variable_name(i + 1), 0, 1, m + 1)))
    db.add(Atom("Next", (variable_name(num_vars), END_MARKER, 0, 1, m + 1)))
    db.add(Atom("Last", (END_MARKER,)))
    for idx, clause in enumerate(clauses, start=1):
        args: List = []
        for literal in clause:
            args.append(variable_name(abs(literal)))
            args.append(1 if literal > 0 else 0)
        args.extend((idx, idx + 1, 0, 1))
        db.add(Atom("C", tuple(args)))
    for i in range(1, num_vars + 1):
        for j in range(1, m + 1):
            db.add(Atom("NextC", (variable_name(i), j, j + 1, 0, 1)))
    return db


def minimal_depth_instance(
    clauses: Sequence[Clause3],
    num_vars: int,
) -> Tuple[DatalogQuery, Database, Tuple]:
    """The full reduction output ``(Q, D_phi, (v1))``.

    ``phi`` is satisfiable iff ``D_phi in whyMD((v1), D_phi, Q)``; by
    Lemma 35 all proof trees of ``R(v1)`` have depth ``n*(m+2)+1``, so
    plain membership coincides with minimal-depth membership here.
    """
    query = minimal_depth_query()
    db = minimal_depth_database(clauses, num_vars)
    return query, db, (variable_name(1),)


def uniform_proof_depth(num_vars: int, num_clauses: int) -> int:
    """The common depth ``n * (m + 2) + 1`` of Lemma 35."""
    return num_vars * (num_clauses + 2) + 1
