"""The Hamiltonian-cycle reduction of Theorem 19 (Lemma 24).

NP-hardness of ``Why-Provenance_NR[LDat]`` (and, via the coincidence of
non-recursive and unambiguous proof trees on linear programs, of
``Why-Provenance_UN[LDat]``, Theorem 14) is shown by a fixed linear query
``Q = (Sigma, Path)`` and a mapping of a digraph ``G`` to a database
``D_G`` with

    ``G`` has a Hamiltonian cycle
        iff  ``D_G in whyNR((v*), D_G, Q)``  for any node ``v*``.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import DatalogQuery, Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable, fresh_variable

Edge = Tuple[str, str]


def _v(name: str) -> Variable:
    return Variable(name)


def hamiltonian_query() -> DatalogQuery:
    """The fixed linear query of the reduction (Appendix B.1)::

        MarkedE(x) :- First(x).
        MarkedE(y) :- E(_, _, x, y, _), MarkedE(x).
        Path(y)    :- E(x, y, _, _, z), MarkedE(z), N(x).
        Path(y)    :- E(x, y, _, _, _), Path(x), N(x).
    """
    x, y, z = _v("x"), _v("y"), _v("z")

    def blank() -> Variable:
        return fresh_variable("blank")

    rules = [
        Rule(Atom("MarkedE", (x,)), (Atom("First", (x,)),)),
        Rule(
            Atom("MarkedE", (y,)),
            (Atom("E", (blank(), blank(), x, y, blank())), Atom("MarkedE", (x,))),
        ),
        Rule(
            Atom("Path", (y,)),
            (Atom("E", (x, y, blank(), blank(), z)), Atom("MarkedE", (z,)), Atom("N", (x,))),
        ),
        Rule(
            Atom("Path", (y,)),
            (Atom("E", (x, y, blank(), blank(), blank())), Atom("Path", (x,)), Atom("N", (x,))),
        ),
    ]
    return DatalogQuery(Program(rules), "Path")


def hamiltonian_database(nodes: Sequence[str], edges: Sequence[Edge]) -> Database:
    """Construct ``D_G``: the graph plus an ordering of its edges.

    ``E(u, v, i, i + 1, m + 1)`` stores the i-th edge ``(u, v)`` (1-based),
    ``First(1)`` seeds the edge ordering, ``N(v)`` enumerates the nodes.
    """
    node_set = set(nodes)
    for u, v in edges:
        if u not in node_set or v not in node_set:
            raise ValueError(f"edge ({u}, {v}) mentions an unknown node")
    db = Database()
    db.add(Atom("First", (1,)))
    for node in nodes:
        db.add(Atom("N", (node,)))
    m = len(edges)
    for i, (u, v) in enumerate(edges, start=1):
        db.add(Atom("E", (u, v, i, i + 1, m + 1)))
    return db


def hamiltonian_instance(
    nodes: Sequence[str],
    edges: Sequence[Edge],
    start: Optional[str] = None,
) -> Tuple[DatalogQuery, Database, Tuple]:
    """The full reduction output ``(Q, D_G, (v*))``.

    ``G`` has a Hamiltonian cycle iff ``D_G in whyNR((v*), D_G, Q)``; the
    choice of ``v*`` is immaterial (a cycle visits every node), so the
    first node is used unless *start* is given.
    """
    if not nodes:
        raise ValueError("the graph must have at least one node")
    query = hamiltonian_query()
    db = hamiltonian_database(nodes, edges)
    target = start if start is not None else nodes[0]
    return query, db, (target,)


def brute_force_hamiltonian_cycle(
    nodes: Sequence[str],
    edges: Sequence[Edge],
) -> Optional[List[str]]:
    """Exhaustive Hamiltonian-cycle oracle: a cycle as a node list, or None.

    Exponential (permutations); for cross-validation on small graphs.
    """
    if not nodes:
        return None
    edge_set: Set[Edge] = set(edges)
    first, rest = nodes[0], list(nodes[1:])
    if not rest:
        return [first] if (first, first) in edge_set else None
    for perm in itertools.permutations(rest):
        cycle = [first, *perm]
        ok = all(
            (cycle[i], cycle[(i + 1) % len(cycle)]) in edge_set
            for i in range(len(cycle))
        )
        if ok:
            return cycle
    return None


def random_digraph(
    num_nodes: int,
    edge_probability: float,
    seed: int = 0,
    ensure_cycle: bool = False,
) -> Tuple[List[str], List[Edge]]:
    """A seeded random digraph (no self-loops).

    With ``ensure_cycle=True`` a random Hamiltonian cycle is planted, which
    gives positive instances for the reduction tests.
    """
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(num_nodes)]
    edges: Set[Edge] = set()
    for u in nodes:
        for v in nodes:
            if u != v and rng.random() < edge_probability:
                edges.add((u, v))
    if ensure_cycle and num_nodes > 1:
        order = list(nodes)
        rng.shuffle(order)
        for i, u in enumerate(order):
            edges.add((u, order[(i + 1) % len(order)]))
    return nodes, sorted(edges)
